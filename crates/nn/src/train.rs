//! Deterministic data-parallel minibatch training.
//!
//! [`ShardRunner`] owns a [`WorkerPool`] and one reusable [`Tape`] per
//! shard. A gradient step splits the minibatch into shards, runs each
//! shard's forward/backward on its own tape (in parallel when the pool has
//! workers), then merges parameter gradients **in shard-index order** on
//! the calling thread.
//!
//! # Determinism
//!
//! Two properties make a step's result a pure function of the data and the
//! shard structure, independent of thread count:
//!
//! 1. Shards are contiguous ranges computed from the batch size and the
//!    `microbatch` knob alone — never from `threads`. The same batch always
//!    produces the same shards.
//! 2. Each shard's tape touches only its own buffers during the parallel
//!    region (the [`crate::params::ParamStore`] is shared read-only), and
//!    the merge `Σ shards` runs sequentially in a fixed order afterwards.
//!
//! So `threads = 1` and `threads = 8` produce byte-identical parameters.
//! Sharding a batch *does* regroup the floating-point sums relative to the
//! single-tape whole-batch formulation, which is why trainers default to
//! one shard (`microbatch = 0`) and only split when asked.

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use cosmo_exec::WorkerPool;

use crate::params::ParamStore;
use crate::tape::{Tape, Var};

/// Resolve a `threads` knob the same way `PipelineConfig` does:
/// `0` = every available core.
pub fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        WorkerPool::available_parallelism()
    } else {
        threads
    }
}

/// Split `n_items` into contiguous shards of at most `microbatch` items.
/// `microbatch = 0` (or ≥ `n_items`) keeps the whole batch in one shard —
/// the exact single-tape formulation. The split depends only on these two
/// numbers, never on thread count.
pub fn shard_ranges(n_items: usize, microbatch: usize) -> Vec<Range<usize>> {
    if n_items == 0 {
        return Vec::new();
    }
    let size = if microbatch == 0 { n_items } else { microbatch };
    (0..n_items.div_ceil(size))
        .map(|s| s * size..((s + 1) * size).min(n_items))
        .collect()
}

/// A worker pool plus per-shard reusable tapes for gradient steps.
pub struct ShardRunner {
    pool: WorkerPool,
    tapes: Vec<Tape>,
}

impl ShardRunner {
    /// Build a runner with the given thread count (`0` = all cores,
    /// `1` = run shards inline on the calling thread).
    pub fn new(threads: usize) -> Self {
        ShardRunner {
            pool: WorkerPool::new(effective_threads(threads)),
            tapes: Vec::new(),
        }
    }

    /// Worker count of the underlying pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// One gradient step over `shards.len()` shards.
    ///
    /// For each shard index `i`, `build(tape, store, i)` records the
    /// shard's forward pass and returns its scalar loss node; the shard's
    /// contribution must already be scaled so that the *sum* over shards
    /// equals the intended batch loss (e.g. scale each shard's mean by
    /// `shard_len / batch_len`). The runner then backpropagates every
    /// shard, zeroes the store's gradients, and accumulates shard
    /// gradients in shard-index order.
    ///
    /// Returns the per-shard loss values (sum them for the batch loss).
    /// Panics from shard closures are re-raised on the calling thread,
    /// first shard first.
    pub fn grad_step<F>(&mut self, store: &mut ParamStore, n_shards: usize, build: F) -> Vec<f32>
    where
        F: Fn(&mut Tape, &ParamStore, usize) -> Var + Sync,
    {
        while self.tapes.len() < n_shards {
            self.tapes.push(Tape::new());
        }
        let tapes = &mut self.tapes[..n_shards];
        let shared: &ParamStore = store;
        let mut losses = vec![0.0f32; n_shards];
        let mut panics: Vec<_> = (0..n_shards).map(|_| None).collect();
        let build = &build;
        self.pool.scope(|s| {
            for ((i, tape), (loss_slot, panic_slot)) in tapes
                .iter_mut()
                .enumerate()
                .zip(losses.iter_mut().zip(panics.iter_mut()))
            {
                s.spawn(move || {
                    // Scope::spawn swallows panics to protect the pool;
                    // capture the payload and re-raise it below instead.
                    match catch_unwind(AssertUnwindSafe(|| {
                        tape.reset();
                        let loss = build(tape, shared, i);
                        tape.backward(loss);
                        tape.value(loss).item()
                    })) {
                        Ok(l) => *loss_slot = l,
                        Err(p) => *panic_slot = Some(p),
                    }
                });
            }
        });
        for p in panics.iter_mut() {
            if let Some(payload) = p.take() {
                resume_unwind(payload);
            }
        }
        store.zero_grads();
        for tape in tapes.iter() {
            tape.accumulate_param_grads(store);
        }
        losses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn shard_ranges_cover_and_ignore_threads() {
        assert_eq!(shard_ranges(10, 0), vec![0..10]);
        assert_eq!(shard_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(shard_ranges(10, 16), vec![0..10]);
        assert_eq!(shard_ranges(0, 4), Vec::<Range<usize>>::new());
    }

    fn toy_store() -> (ParamStore, crate::params::ParamId) {
        let mut store = ParamStore::new();
        let w = store.add(
            "w",
            Tensor::from_vec(4, 2, (0..8).map(|i| 0.1 * i as f32 - 0.3).collect()),
        );
        (store, w)
    }

    /// Shard loss for rows `range` of a fixed toy regression problem,
    /// scaled so shard losses sum to the batch mean.
    fn toy_shard_loss(
        tape: &mut Tape,
        store: &ParamStore,
        w: crate::params::ParamId,
        range: Range<usize>,
        batch_len: usize,
    ) -> Var {
        let xs: Vec<f32> = (0..8 * 4)
            .map(|i| ((i * 13) % 7) as f32 * 0.25 - 0.75)
            .collect();
        let shard: Vec<f32> = xs[range.start * 4..range.end * 4].to_vec();
        let x = tape.input(Tensor::from_vec(range.len(), 4, shard));
        let wv = tape.param(store, w);
        let y = tape.matmul(x, wv);
        let sq = tape.mul(y, y);
        let mean = tape.mean_all(sq);
        tape.scale(mean, range.len() as f32 / batch_len as f32)
    }

    /// The whole point: gradients and losses must be byte-identical at
    /// every thread count, given the same shard structure.
    #[test]
    fn grad_step_is_bitwise_identical_across_thread_counts() {
        let shards = shard_ranges(8, 3);
        let mut reference: Option<(Vec<f32>, Tensor)> = None;
        let thread_grid: &[usize] = if cfg!(miri) { &[1, 4] } else { &[1, 2, 4, 8] };
        for &threads in thread_grid {
            let (mut store, w) = toy_store();
            let mut runner = ShardRunner::new(threads);
            let ranges = shards.clone();
            let losses = runner.grad_step(&mut store, ranges.len(), |tape, s, i| {
                toy_shard_loss(tape, s, w, ranges[i].clone(), 8)
            });
            let grad = store.grad(w).clone();
            match &reference {
                None => reference = Some((losses, grad)),
                Some((rl, rg)) => {
                    assert_eq!(&losses, rl, "losses diverged at threads={threads}");
                    assert_eq!(
                        grad.data(),
                        rg.data(),
                        "grads diverged at threads={threads}"
                    );
                }
            }
        }
    }

    /// One shard (`microbatch = 0`) must reproduce the plain single-tape
    /// step exactly — the default trainer path is the legacy math.
    #[test]
    fn single_shard_matches_plain_tape_bitwise() {
        let (mut store, w) = toy_store();
        let mut tape = Tape::new();
        let loss = toy_shard_loss(&mut tape, &store, w, 0..8, 8);
        tape.backward(loss);
        store.zero_grads();
        tape.accumulate_param_grads(&mut store);
        let expect_loss = tape.value(loss).item();
        let expect_grad = store.grad(w).clone();

        let (mut store2, w2) = toy_store();
        let mut runner = ShardRunner::new(4);
        let losses = runner.grad_step(&mut store2, 1, |tape, s, _| {
            toy_shard_loss(tape, s, w2, 0..8, 8)
        });
        assert_eq!(losses, vec![expect_loss]);
        assert_eq!(store2.grad(w2).data(), expect_grad.data());
    }

    /// Tapes are reused across steps; results must not drift.
    #[test]
    fn runner_reuses_tapes_without_drift() {
        let (mut store, w) = toy_store();
        let mut runner = ShardRunner::new(2);
        let shards = shard_ranges(8, 4);
        let first = runner.grad_step(&mut store, shards.len(), |tape, s, i| {
            toy_shard_loss(tape, s, w, shards[i].clone(), 8)
        });
        let first_grad = store.grad(w).clone();
        for step in 0..3 {
            let again = runner.grad_step(&mut store, shards.len(), |tape, s, i| {
                toy_shard_loss(tape, s, w, shards[i].clone(), 8)
            });
            assert_eq!(again, first, "loss drifted at step {step}");
            assert_eq!(store.grad(w).data(), first_grad.data());
        }
    }

    #[test]
    fn shard_panic_is_reraised() {
        let (mut store, w) = toy_store();
        let mut runner = ShardRunner::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            runner.grad_step(&mut store, 2, |tape, s, i| {
                if i == 1 {
                    panic!("shard failure");
                }
                toy_shard_loss(tape, s, w, 0..4, 8)
            });
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
    }
}
