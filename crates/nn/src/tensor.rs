//! Dense 2-D `f32` tensors.
//!
//! Every value in the autograd engine is a row-major 2-D matrix; scalars are
//! `[1×1]`, row vectors `[1×d]`. This is deliberately minimal: the models in
//! this reproduction (MLPs, GRUs, attention, GNN message passing) only need
//! 2-D linear algebra, and a single concrete layout keeps the hot matmul
//! loops simple enough for the compiler to vectorise.

use serde::{Deserialize, Serialize};

/// A row-major 2-D matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// All-zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from a flat row-major buffer. Panics if sizes disagree.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "tensor data length mismatch");
        Tensor { rows, cols, data }
    }

    /// Build a `1×n` row vector.
    pub fn row(data: Vec<f32>) -> Self {
        let cols = data.len();
        Tensor {
            rows: 1,
            cols,
            data,
        }
    }

    /// Build a `1×1` scalar.
    pub fn scalar(v: f32) -> Self {
        Tensor {
            rows: 1,
            cols: 1,
            data: vec![v],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat read-only view.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single element of a `1×1` tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a scalar tensor");
        self.data[0]
    }

    /// Matrix product `self · other` (`[n×k]·[k×m] → [n×m]`).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(n, m);
        // i-k-j loop order: innermost loop walks both `other` and `out`
        // contiguously, which is the cache-friendly order for row-major data.
        for i in 0..n {
            let out_row = &mut out.data[i * m..(i + 1) * m];
            for kk in 0..k {
                let a = self.data[i * k + kk];
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * m..(kk + 1) * m];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` (`[n×k]·[m×k]ᵀ → [n×m]`) without materialising the
    /// transpose; the inner loop is a contiguous dot product.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_nt shape mismatch: {:?} x {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        let (n, k, m) = (self.rows, self.cols, other.rows);
        let mut out = Tensor::zeros(n, m);
        for i in 0..n {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..m {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (x, y) in a_row.iter().zip(b_row.iter()) {
                    acc += x * y;
                }
                out.data[i * m + j] = acc;
            }
        }
        out
    }

    /// `selfᵀ · other` (`[k×n]ᵀ·[k×m] → [n×m]`).
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows,
            other.rows,
            "matmul_tn shape mismatch: {:?}ᵀ x {:?}",
            self.shape(),
            other.shape()
        );
        let (k, n, m) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(n, m);
        for kk in 0..k {
            for i in 0..n {
                let a = self.data[kk * n + i];
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * m..(kk + 1) * m];
                let out_row = &mut out.data[i * m..(i + 1) * m];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Materialised transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// `self += other` elementwise; shapes must match.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += s * other` elementwise.
    pub fn add_scaled_assign(&mut self, other: &Tensor, s: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += s * b;
        }
    }

    /// Elementwise sum into a new tensor.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Elementwise product (Hadamard) into a new tensor.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a * b)
            .collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Multiply all elements by `s` in place.
    pub fn scale_assign(&mut self, s: f32) {
        for x in self.data.iter_mut() {
            *x *= s;
        }
    }

    /// Set every element to zero (for reusable gradient buffers).
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Squared Frobenius norm.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Stack row tensors vertically; all inputs must share `cols`.
    pub fn vstack(rows: &[&Tensor]) -> Tensor {
        assert!(!rows.is_empty(), "vstack of nothing");
        let cols = rows[0].cols;
        let mut data = Vec::with_capacity(rows.iter().map(|t| t.len()).sum());
        let mut total_rows = 0;
        for t in rows {
            assert_eq!(t.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&t.data);
            total_rows += t.rows;
        }
        Tensor {
            rows: total_rows,
            cols,
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_vec(2, 2, vec![58., 64., 139., 154.]));
    }

    #[test]
    fn matmul_nt_matches_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(4, 3, vec![1., 0., 1., 2., 1., 0., 0., 3., 1., 1., 1., 1.]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn matmul_tn_matches_transpose() {
        let a = Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 4, (0..12).map(|x| x as f32).collect());
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn vstack_shapes() {
        let a = Tensor::row(vec![1., 2.]);
        let b = Tensor::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let s = Tensor::vstack(&[&a, &b]);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row_slice(2), &[5., 6.]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn hadamard_and_scale() {
        let a = Tensor::row(vec![1., 2., 3.]);
        let b = Tensor::row(vec![2., 0.5, -1.]);
        let mut h = a.hadamard(&b);
        assert_eq!(h.data(), &[2., 1., -3.]);
        h.scale_assign(2.0);
        assert_eq!(h.data(), &[4., 2., -6.]);
    }
}
