//! Dense 2-D `f32` tensors.
//!
//! Every value in the autograd engine is a row-major 2-D matrix; scalars are
//! `[1×1]`, row vectors `[1×d]`. This is deliberately minimal: the models in
//! this reproduction (MLPs, GRUs, attention, GNN message passing) only need
//! 2-D linear algebra, and a single concrete layout keeps the hot matmul
//! loops simple enough for the compiler to vectorise.

use cosmo_exec::WorkerPool;
use serde::{Deserialize, Serialize};

/// A row-major 2-D matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// All-zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from a flat row-major buffer. Panics if sizes disagree.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "tensor data length mismatch");
        Tensor { rows, cols, data }
    }

    /// Build a `1×n` row vector.
    pub fn row(data: Vec<f32>) -> Self {
        let cols = data.len();
        Tensor {
            rows: 1,
            cols,
            data,
        }
    }

    /// Build a `1×1` scalar.
    pub fn scalar(v: f32) -> Self {
        Tensor {
            rows: 1,
            cols: 1,
            data: vec![v],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat read-only view.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Consume the tensor and take its backing buffer (for buffer pools).
    #[inline]
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Flat mutable view.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single element of a `1×1` tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a scalar tensor");
        self.data[0]
    }

    /// Matrix product `self · other` (`[n×k]·[k×m] → [n×m]`).
    ///
    /// Cache-blocked, register-tiled kernel (see [`kernels`]). Every output
    /// element is accumulated in strictly increasing-`k` order — the same
    /// order as the naive i-k-j loop — so the result is bitwise identical
    /// to [`Tensor::matmul_reference`] for finite inputs, and `0 × NaN`/
    /// `0 × ∞` propagate per IEEE 754 (the old kernel's `a == 0` skip
    /// silently flushed them to `0`).
    ///
    /// Under the opt-in `fast-math` cargo feature this same entry point
    /// routes to the FMA reduction-tree kernel instead: different bytes
    /// than the default build, but bitwise identical to
    /// [`Tensor::matmul_fma_reference`] across every ISA dispatch path and
    /// thread count (see the module docs of [`kernels`]).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(n, m);
        kernels::mm_band(&self.data, &other.data, &mut out.data, k, m);
        out
    }

    /// The no-FMA blocked kernel, unconditionally — the exact computation
    /// [`Tensor::matmul`] performs at default features. Exists so a
    /// `fast-math` build can still measure (`repro -- nn-scaling`) and
    /// test the unfused tier it replaced; with the feature off this *is*
    /// `matmul`.
    pub fn matmul_unfused(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(n, m);
        kernels::mm_band_unfused(&self.data, &other.data, &mut out.data, k, m);
        out
    }

    /// Scalar oracle of the `fast-math` reduction tree: for each output
    /// element, fold `FM_KBLOCK`-sized fused-multiply-add chains in
    /// strictly increasing block order. [`Tensor::matmul`] — and every
    /// ISA/band variant behind it — must match this bitwise when the
    /// feature is on; it is the fast-math analogue of
    /// [`Tensor::matmul_reference`].
    #[cfg(feature = "fast-math")]
    pub fn matmul_fma_reference(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(n, m);
        for i in 0..n {
            for j in 0..m {
                let mut acc = 0.0f32;
                let mut k0 = 0;
                while k0 < k {
                    let ke = (k0 + kernels::FM_KBLOCK).min(k);
                    let mut part = 0.0f32;
                    for kk in k0..ke {
                        part = self.data[i * k + kk].mul_add(other.data[kk * m + j], part);
                    }
                    acc += part;
                    k0 = ke;
                }
                out.data[i * m + j] = acc;
            }
        }
        out
    }

    /// Reference scalar matmul: the seed i-k-j loop, kept as the baseline
    /// the blocked kernel is benchmarked against (`BENCH_nn.json`) and as
    /// a correctness oracle in tests. Dense — no zero skipping.
    pub fn matmul_reference(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(n, m);
        for i in 0..n {
            let out_row = &mut out.data[i * m..(i + 1) * m];
            for kk in 0..k {
                let a = self.data[i * k + kk];
                let b_row = &other.data[kk * m..(kk + 1) * m];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · other` with the output rows partitioned across `pool`.
    ///
    /// Each worker runs the identical blocked kernel over a disjoint band
    /// of output rows, so the accumulation order of every element is
    /// unchanged and the result is byte-identical to [`Tensor::matmul`]
    /// at any thread count. Small products run inline.
    pub fn matmul_par(&self, other: &Tensor, pool: &WorkerPool) -> Tensor {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        if pool.threads() == 1 || n < 2 || n * k * m < kernels::MIN_PAR_WORK {
            return self.matmul(other);
        }
        let mut out = Tensor::zeros(n, m);
        let band = n.div_ceil(pool.threads());
        let b = &other.data;
        pool.scope(|s| {
            for (a_band, out_band) in self
                .data
                .chunks(band * k)
                .zip(out.data.chunks_mut(band * m))
            {
                s.spawn(move || kernels::mm_band(a_band, b, out_band, k, m));
            }
        });
        out
    }

    /// `self · otherᵀ` (`[n×k]·[m×k]ᵀ → [n×m]`).
    ///
    /// For `n ≥ 2` the transpose is materialised once and the blocked
    /// [`Tensor::matmul`] kernel runs on it; for a single row the contiguous
    /// dot-product loop is already optimal (and the transpose would cost as
    /// much as the product). Both paths accumulate in strictly increasing-`k`
    /// order, so the result is bitwise identical to
    /// `self.matmul(&other.transpose())`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_nt shape mismatch: {:?} x {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        let (n, k, m) = (self.rows, self.cols, other.rows);
        if n >= 2 && k >= 2 {
            return self.matmul(&other.transpose());
        }
        let mut out = Tensor::zeros(n, m);
        for i in 0..n {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..m {
                let b_row = &other.data[j * k..(j + 1) * k];
                out.data[i * m + j] = kernels::nt_dot(a_row, b_row);
            }
        }
        out
    }

    /// [`Tensor::matmul_nt`] with output rows partitioned across `pool`;
    /// byte-identical to the sequential result at any thread count.
    pub fn matmul_nt_par(&self, other: &Tensor, pool: &WorkerPool) -> Tensor {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_nt shape mismatch: {:?} x {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        if self.rows >= 2 && self.cols >= 2 {
            self.matmul_par(&other.transpose(), pool)
        } else {
            self.matmul_nt(other)
        }
    }

    /// `selfᵀ · other` (`[k×n]ᵀ·[k×m] → [n×m]`).
    ///
    /// Blocked kernel with strided reads of `self`; accumulation per output
    /// element is strictly increasing-`k`, bitwise identical to
    /// `self.transpose().matmul(&other)` (and IEEE-faithful: no zero skip).
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows,
            other.rows,
            "matmul_tn shape mismatch: {:?}ᵀ x {:?}",
            self.shape(),
            other.shape()
        );
        let (k, n, m) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(n, m);
        kernels::mm_tn_band(&self.data, &other.data, &mut out.data, k, n, m, 0);
        out
    }

    /// The no-FMA blocked tier of [`Tensor::matmul_tn`], unconditionally —
    /// the companion of [`Tensor::matmul_unfused`].
    pub fn matmul_tn_unfused(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows,
            other.rows,
            "matmul_tn shape mismatch: {:?}ᵀ x {:?}",
            self.shape(),
            other.shape()
        );
        let (k, n, m) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(n, m);
        kernels::mm_tn_band_unfused(&self.data, &other.data, &mut out.data, k, n, m, 0);
        out
    }

    /// [`Tensor::matmul_tn`] with output rows (columns of `self`)
    /// partitioned across `pool`; byte-identical to the sequential result
    /// at any thread count.
    pub fn matmul_tn_par(&self, other: &Tensor, pool: &WorkerPool) -> Tensor {
        assert_eq!(
            self.rows,
            other.rows,
            "matmul_tn shape mismatch: {:?}ᵀ x {:?}",
            self.shape(),
            other.shape()
        );
        let (k, n, m) = (self.rows, self.cols, other.cols);
        if pool.threads() == 1 || n < 2 || n * k * m < kernels::MIN_PAR_WORK {
            return self.matmul_tn(other);
        }
        let mut out = Tensor::zeros(n, m);
        let band = n.div_ceil(pool.threads());
        let (a, b) = (&self.data, &other.data);
        pool.scope(|s| {
            for (bi, out_band) in out.data.chunks_mut(band * m).enumerate() {
                s.spawn(move || kernels::mm_tn_band(a, b, out_band, k, n, m, bi * band));
            }
        });
        out
    }

    /// [`Tensor::matmul`] into a caller-provided output tensor (shape
    /// `[n×m]`), overwriting it. Lets buffer pools avoid an allocation;
    /// the result is identical to the allocating variant.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.cols),
            "matmul_into output shape"
        );
        kernels::mm_band(
            &self.data,
            &other.data,
            &mut out.data,
            self.cols,
            other.cols,
        );
    }

    /// [`Tensor::matmul_nt`] into a caller-provided output tensor (shape
    /// `[n×m]`). `scratch` holds the materialised `otherᵀ` when the blocked
    /// path is taken, so repeated calls reuse its capacity.
    pub fn matmul_nt_into(&self, other: &Tensor, out: &mut Tensor, scratch: &mut Vec<f32>) {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_nt shape mismatch: {:?} x {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        let (n, k, m) = (self.rows, self.cols, other.rows);
        assert_eq!(out.shape(), (n, m), "matmul_nt_into output shape");
        if n >= 2 && k >= 2 {
            scratch.clear();
            scratch.resize(k * m, 0.0);
            for r in 0..m {
                for c in 0..k {
                    scratch[c * m + r] = other.data[r * k + c];
                }
            }
            kernels::mm_band(&self.data, scratch, &mut out.data, k, m);
            return;
        }
        for i in 0..n {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..m {
                let b_row = &other.data[j * k..(j + 1) * k];
                out.data[i * m + j] = kernels::nt_dot(a_row, b_row);
            }
        }
    }

    /// [`Tensor::matmul_tn`] into a caller-provided output tensor (shape
    /// `[n×m]`), overwriting it.
    pub fn matmul_tn_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.rows,
            other.rows,
            "matmul_tn shape mismatch: {:?}ᵀ x {:?}",
            self.shape(),
            other.shape()
        );
        let (k, n, m) = (self.rows, self.cols, other.cols);
        assert_eq!(out.shape(), (n, m), "matmul_tn_into output shape");
        kernels::mm_tn_band(&self.data, &other.data, &mut out.data, k, n, m, 0);
    }

    /// Materialised transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Transpose into a caller-provided `[cols×rows]` tensor.
    pub fn transpose_into(&self, out: &mut Tensor) {
        assert_eq!(out.shape(), (self.cols, self.rows), "transpose_into shape");
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// `self += other` elementwise; shapes must match.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += s * other` elementwise.
    pub fn add_scaled_assign(&mut self, other: &Tensor, s: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += s * b;
        }
    }

    /// Elementwise sum into a new tensor.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Elementwise product (Hadamard) into a new tensor.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a * b)
            .collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Multiply all elements by `s` in place.
    pub fn scale_assign(&mut self, s: f32) {
        for x in self.data.iter_mut() {
            *x *= s;
        }
    }

    /// Set every element to zero (for reusable gradient buffers).
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Reshape in place to `[rows×cols]`, zero-filled, reusing the backing
    /// buffer's capacity (for reusable inference scratch tensors).
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Squared Frobenius norm.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Stack row tensors vertically; all inputs must share `cols`.
    pub fn vstack(rows: &[&Tensor]) -> Tensor {
        assert!(!rows.is_empty(), "vstack of nothing");
        let cols = rows[0].cols;
        let mut data = Vec::with_capacity(rows.iter().map(|t| t.len()).sum());
        let mut total_rows = 0;
        for t in rows {
            assert_eq!(t.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&t.data);
            total_rows += t.rows;
        }
        Tensor {
            rows: total_rows,
            cols,
            data,
        }
    }
}

/// Cache-blocked, register-tiled matmul kernels.
///
/// The micro-kernel holds an `MR × NR` accumulator tile in registers and,
/// for each `k`, broadcasts one element of `A` against a contiguous
/// `NR`-wide strip of a `B` row (a broadcast-FMA). The vector lanes run
/// across the *output columns*, never across `k`, so each output element is
/// still a single scalar chain `((a₀b₀) + a₁b₁) + …` in strictly
/// increasing-`k` order — the compiler can vectorise freely without
/// reassociating the float sum. That is the determinism contract: blocked,
/// banded, and multi-threaded variants are all bitwise identical to the
/// naive scalar loop.
///
/// # The `fast-math` tier
///
/// Keeping mul and add as separate instructions (so the wide paths match
/// the seed scalar loop bitwise) leaves the FMA ports half idle. The
/// opt-in `fast-math` feature trades *cross-config* stability for that
/// throughput while keeping *within-config* determinism: each output
/// element is accumulated through a **fixed-shape reduction tree** whose
/// split points are a pure function of `k` alone — `k` is cut at multiples
/// of [`FM_KBLOCK`], each block partial is one fused-multiply-add chain in
/// strictly increasing-`k` order, and the partials fold in strictly
/// increasing block order. Lane width and tile shape still only choose how
/// many *column* chains progress concurrently, and bands still split rows,
/// so every ISA dispatch path and every thread count produces identical
/// bytes under the feature (asserted against
/// [`Tensor::matmul_fma_reference`], the scalar oracle of the tree).
mod kernels {
    /// Output columns per register strip (f32 lanes the compiler can pack)
    /// on the baseline (no runtime-detected ISA) path.
    const NR: usize = 16;
    /// Output rows per micro-tile on the baseline path.
    const MR: usize = 4;
    /// Below this many multiply-adds a parallel dispatch costs more than
    /// it saves; shapes (not thread count) decide, keeping results
    /// identical at every thread count.
    pub(super) const MIN_PAR_WORK: usize = 1 << 16;
    /// `k`-block width of the `fast-math` reduction tree. The tree's split
    /// points are the multiples of this constant — a pure function of `k`,
    /// never of ISA lane width, tile shape, or thread count.
    #[cfg(feature = "fast-math")]
    pub(super) const FM_KBLOCK: usize = 64;

    /// Tiled micro-kernel body, generic over the `TM × TN` register tile.
    ///
    /// The tile size and the vector width only decide how many *column*
    /// chains make progress concurrently; each output element is always
    /// one scalar chain in strictly increasing-`k` order, so every
    /// instantiation (and every ISA it is compiled for) produces the same
    /// bits. `U2` unrolls the `k` loop by two — the two updates stay
    /// sequential per element (`acc += a₀·b₀` then `acc += a₁·b₁`), so the
    /// chain (and the bits) are unchanged; it only gives the scheduler two
    /// independent `B`-row loads per iteration. The wide-ISA paths want it
    /// (~1.5× there); the 16-register SSE2 baseline spills under it, so it
    /// stays off there.
    #[inline(always)]
    fn mm_band_impl<const TM: usize, const TN: usize, const U2: bool>(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        k: usize,
        m: usize,
    ) {
        let n = out.len().checked_div(m).unwrap_or(0);
        debug_assert_eq!(a.len(), n * k);
        debug_assert_eq!(b.len(), k * m);
        let mut i0 = 0;
        while i0 < n {
            let ib = TM.min(n - i0);
            let mut j0 = 0;
            while j0 < m {
                let jb = TN.min(m - j0);
                let mut acc = [[0.0f32; TN]; TM];
                if ib == TM && jb == TN {
                    let mut kk = 0;
                    if U2 {
                        while kk + 2 <= k {
                            let b0: &[f32; TN] =
                                b[kk * m + j0..kk * m + j0 + TN].try_into().unwrap();
                            let b1: &[f32; TN] = b[(kk + 1) * m + j0..(kk + 1) * m + j0 + TN]
                                .try_into()
                                .unwrap();
                            for r in 0..TM {
                                let av0 = a[(i0 + r) * k + kk];
                                let av1 = a[(i0 + r) * k + kk + 1];
                                for c in 0..TN {
                                    acc[r][c] += av0 * b0[c];
                                }
                                for c in 0..TN {
                                    acc[r][c] += av1 * b1[c];
                                }
                            }
                            kk += 2;
                        }
                    }
                    while kk < k {
                        let brow: &[f32; TN] = b[kk * m + j0..kk * m + j0 + TN].try_into().unwrap();
                        for r in 0..TM {
                            let av = a[(i0 + r) * k + kk];
                            for c in 0..TN {
                                acc[r][c] += av * brow[c];
                            }
                        }
                        kk += 1;
                    }
                } else {
                    for kk in 0..k {
                        let brow = &b[kk * m + j0..kk * m + j0 + jb];
                        for (r, accr) in acc.iter_mut().enumerate().take(ib) {
                            let av = a[(i0 + r) * k + kk];
                            for (c, &bv) in brow.iter().enumerate() {
                                accr[c] += av * bv;
                            }
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate().take(ib) {
                    let base = (i0 + r) * m + j0;
                    out[base..base + jb].copy_from_slice(&accr[..jb]);
                }
                j0 += TN;
            }
            i0 += TM;
        }
    }

    /// Transposed-A micro-kernel body; see [`mm_band_impl`] for the tile,
    /// unroll, and determinism story.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)] // kernel ABI: three slices + four dims beats a struct in the hot loop
    fn mm_tn_band_impl<const TM: usize, const TN: usize, const U2: bool>(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        k: usize,
        n: usize,
        m: usize,
        i0: usize,
    ) {
        let nb = out.len().checked_div(m).unwrap_or(0);
        debug_assert_eq!(a.len(), k * n);
        debug_assert_eq!(b.len(), k * m);
        debug_assert!(i0 + nb <= n);
        let mut r0 = 0;
        while r0 < nb {
            let ib = TM.min(nb - r0);
            let mut j0 = 0;
            while j0 < m {
                let jb = TN.min(m - j0);
                let mut acc = [[0.0f32; TN]; TM];
                if ib == TM && jb == TN {
                    let mut kk = 0;
                    if U2 {
                        while kk + 2 <= k {
                            let b0: &[f32; TN] =
                                b[kk * m + j0..kk * m + j0 + TN].try_into().unwrap();
                            let b1: &[f32; TN] = b[(kk + 1) * m + j0..(kk + 1) * m + j0 + TN]
                                .try_into()
                                .unwrap();
                            for r in 0..TM {
                                let av0 = a[kk * n + i0 + r0 + r];
                                let av1 = a[(kk + 1) * n + i0 + r0 + r];
                                for c in 0..TN {
                                    acc[r][c] += av0 * b0[c];
                                }
                                for c in 0..TN {
                                    acc[r][c] += av1 * b1[c];
                                }
                            }
                            kk += 2;
                        }
                    }
                    while kk < k {
                        let brow: &[f32; TN] = b[kk * m + j0..kk * m + j0 + TN].try_into().unwrap();
                        for r in 0..TM {
                            let av = a[kk * n + i0 + r0 + r];
                            for c in 0..TN {
                                acc[r][c] += av * brow[c];
                            }
                        }
                        kk += 1;
                    }
                } else {
                    for kk in 0..k {
                        let brow = &b[kk * m + j0..kk * m + j0 + jb];
                        for (r, accr) in acc.iter_mut().enumerate().take(ib) {
                            let av = a[kk * n + i0 + r0 + r];
                            for (c, &bv) in brow.iter().enumerate() {
                                accr[c] += av * bv;
                            }
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate().take(ib) {
                    let base = (r0 + r) * m + j0;
                    out[base..base + jb].copy_from_slice(&accr[..jb]);
                }
                j0 += TN;
            }
            r0 += TM;
        }
    }

    // Runtime-dispatched ISA variants: the binary is built for baseline
    // x86-64 (SSE2), so the compiler packs 4 lanes; recompiling the same
    // body under a wider target feature lets it pack 8 (AVX2) or 16
    // (AVX-512) without changing a single arithmetic step. mul and add
    // stay separate instructions (rustc never contracts to FMA), so the
    // wide paths are bitwise identical to the scalar chain — the kernel
    // tests assert exactly that against the reference loop.

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    // SAFETY: callers must verify `avx512f` via `is_x86_feature_detected!`
    // before calling — that is the *only* obligation `unsafe` marks here.
    // The body is the bounds-checked generic tile over plain slices; the
    // feature gate merely lets the autovectorizer pack 16 f32 lanes.
    unsafe fn mm_band_avx512(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize) {
        debug_assert!(std::arch::is_x86_feature_detected!("avx512f"));
        // 8×32 tile: 16 zmm accumulators keep both FMA ports busy across
        // the 4-cycle add latency.
        mm_band_impl::<8, 32, true>(a, b, out, k, m)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    // SAFETY: callers must verify `avx2` at runtime; body is the same
    // bounds-checked generic tile, packed 8 lanes wide.
    unsafe fn mm_band_avx2(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize) {
        debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
        mm_band_impl::<4, 16, true>(a, b, out, k, m)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)] // kernel ABI mirrors mm_tn_band_impl
                                         // SAFETY: callers must verify `avx512f` at runtime; body is the
                                         // bounds-checked transposed-A generic tile.
    unsafe fn mm_tn_band_avx512(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        k: usize,
        n: usize,
        m: usize,
        i0: usize,
    ) {
        debug_assert!(std::arch::is_x86_feature_detected!("avx512f"));
        mm_tn_band_impl::<8, 32, true>(a, b, out, k, n, m, i0)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)] // kernel ABI mirrors mm_tn_band_impl
                                         // SAFETY: callers must verify `avx2` at runtime; body is the
                                         // bounds-checked transposed-A generic tile.
    unsafe fn mm_tn_band_avx2(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        k: usize,
        n: usize,
        m: usize,
        i0: usize,
    ) {
        debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
        mm_tn_band_impl::<4, 16, true>(a, b, out, k, n, m, i0)
    }

    /// `out = a · b` where `a` is the band's rows (`out.len() / m` of
    /// them, `k` wide) and `b` is the full `[k×m]` right-hand side.
    /// Routes to the tier the build selected: the unfused blocked kernel
    /// at default features, the FMA reduction tree under `fast-math`.
    pub(super) fn mm_band(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize) {
        #[cfg(feature = "fast-math")]
        {
            fm_mm_band(a, b, out, k, m)
        }
        #[cfg(not(feature = "fast-math"))]
        {
            mm_band_unfused(a, b, out, k, m)
        }
    }

    /// The no-FMA tier of [`mm_band`]: mul and add stay separate
    /// instructions, so every path is bitwise identical to the seed scalar
    /// loop. Always compiled — the `fast-math` build benchmarks against it.
    pub(super) fn mm_band_unfused(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize) {
        debug_assert_eq!(b.len(), k * m, "mm_band rhs shape");
        debug_assert_eq!(a.len() * m, out.len() * k, "mm_band band shape");
        // Under Miri the runtime ISA dispatch is skipped: feature
        // detection is a host-CPU read Miri cannot model, and the wide
        // wrappers re-instantiate the identical generic body anyway, so
        // the portable path below gives full interpreter coverage.
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                // SAFETY: avx512f was verified on this CPU on the line
                // above, which is the wrapper's only precondition.
                return unsafe { mm_band_avx512(a, b, out, k, m) };
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: avx2 was verified on this CPU on the line above.
                return unsafe { mm_band_avx2(a, b, out, k, m) };
            }
        }
        mm_band_impl::<MR, NR, false>(a, b, out, k, m)
    }

    /// `out[i − i0][j] = Σₖ a[k][i] · b[k][j]` for the band of output rows
    /// `i0 .. i0 + out.len() / m`, with `a` the full `[k×n]` matrix read
    /// column-wise (strided) and `b` the full `[k×m]` matrix. Routes to
    /// the build-selected tier like [`mm_band`].
    #[allow(clippy::too_many_arguments)] // kernel ABI mirrors mm_tn_band_impl
    pub(super) fn mm_tn_band(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        k: usize,
        n: usize,
        m: usize,
        i0: usize,
    ) {
        #[cfg(feature = "fast-math")]
        {
            fm_mm_tn_band(a, b, out, k, n, m, i0)
        }
        #[cfg(not(feature = "fast-math"))]
        {
            mm_tn_band_unfused(a, b, out, k, n, m, i0)
        }
    }

    /// The no-FMA tier of [`mm_tn_band`]; see [`mm_band_unfused`].
    #[allow(clippy::too_many_arguments)] // kernel ABI mirrors mm_tn_band_impl
    pub(super) fn mm_tn_band_unfused(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        k: usize,
        n: usize,
        m: usize,
        i0: usize,
    ) {
        debug_assert_eq!(a.len(), k * n, "mm_tn_band lhs shape");
        debug_assert_eq!(b.len(), k * m, "mm_tn_band rhs shape");
        debug_assert!(i0 + out.len() / m <= n, "mm_tn_band band range");
        // See `mm_band` for why Miri takes the portable path.
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                // SAFETY: avx512f was verified on this CPU on the line
                // above, which is the wrapper's only precondition.
                return unsafe { mm_tn_band_avx512(a, b, out, k, n, m, i0) };
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: avx2 was verified on this CPU on the line above.
                return unsafe { mm_tn_band_avx2(a, b, out, k, n, m, i0) };
            }
        }
        mm_tn_band_impl::<MR, NR, false>(a, b, out, k, n, m, i0)
    }

    /// Dot product with the build-selected per-element chain: plain
    /// `acc += x·y` in increasing order at default features, the
    /// [`FM_KBLOCK`] fused reduction tree under `fast-math` — so the
    /// single-row `matmul_nt` fallback stays bitwise identical to the
    /// blocked transposed path in both configurations.
    pub(super) fn nt_dot(x: &[f32], y: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), y.len(), "nt_dot length mismatch");
        #[cfg(feature = "fast-math")]
        {
            fm_dot(x, y)
        }
        #[cfg(not(feature = "fast-math"))]
        {
            let mut acc = 0.0f32;
            for (a, b) in x.iter().zip(y.iter()) {
                acc += a * b;
            }
            acc
        }
    }

    /// The `fast-math` per-element chain on contiguous slices: one fused
    /// chain per `FM_KBLOCK` block, partials folded in increasing block
    /// order. This *defines* the tree every fast-math kernel must match.
    #[cfg(feature = "fast-math")]
    fn fm_dot(x: &[f32], y: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for (xb, yb) in x.chunks(FM_KBLOCK).zip(y.chunks(FM_KBLOCK)) {
            let mut part = 0.0f32;
            for (a, b) in xb.iter().zip(yb.iter()) {
                part = a.mul_add(*b, part);
            }
            acc += part;
        }
        acc
    }

    /// `fast-math` micro-kernel body, generic over the `TM × TN` register
    /// tile. Holds one accumulator tile and one block-partial tile; within
    /// a `k`-block every element advances its fused chain in strictly
    /// increasing `kk`, and at each [`FM_KBLOCK`] boundary the partial is
    /// folded into the accumulator with a plain add. The tile shape only
    /// decides how many column chains progress concurrently — the
    /// per-element chain is exactly [`fm_dot`]'s, for every instantiation
    /// and every ISA it is compiled for.
    #[cfg(feature = "fast-math")]
    #[inline(always)]
    // `r` indexes both `part` and the strided `a` loads; the iterator form
    // perturbs the tuned full-tile codegen.
    #[allow(clippy::needless_range_loop)]
    fn fm_band_impl<const TM: usize, const TN: usize>(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        k: usize,
        m: usize,
    ) {
        let n = out.len().checked_div(m).unwrap_or(0);
        // Real asserts (not debug): they establish the bounds the unchecked
        // full-tile loads below rely on, at a cost of two compares per call.
        assert_eq!(a.len(), n * k, "fm band lhs shape");
        assert_eq!(b.len(), k * m, "fm band rhs shape");
        let mut i0 = 0;
        while i0 < n {
            let ib = TM.min(n - i0);
            let mut j0 = 0;
            while j0 < m {
                let jb = TN.min(m - j0);
                // The out tile is the cross-block accumulator: zeroed, then
                // each block's register partial folds in with a plain add in
                // increasing block order — `(0 + p₀) + p₁ + …`, exactly
                // [`fm_dot`]'s tree. Keeping the accumulator in memory makes
                // the block partial the *only* tile live in the hot loop
                // (one fold per `FM_KBLOCK` `k` steps is cold); a second
                // register tile forces the allocator to spill the partial
                // every iteration, which costs ~3× on AVX-512.
                for r in 0..ib {
                    let base = (i0 + r) * m + j0;
                    out[base..base + jb].fill(0.0);
                }
                let mut k0 = 0;
                while k0 < k {
                    let ke = (k0 + FM_KBLOCK).min(k);
                    let mut part = [[0.0f32; TN]; TM];
                    if ib == TM && jb == TN {
                        // Unrolled by two like the unfused kernel: the two
                        // updates stay sequential per element, so the chain
                        // (and the bits) are unchanged — the scheduler just
                        // gets two independent `B`-row loads per iteration.
                        // Loads are unchecked: a checked `a[(i0+r)*k + kk]`
                        // carries a multiply the range analysis cannot see
                        // through, and the resulting per-iteration side
                        // exits make the allocator spill the partial tile —
                        // measured ~2.5× slower than this loop.
                        //
                        // SAFETY: `a.len() = n·k` and `b.len() = k·m` are
                        // asserted on entry; in this branch `i0 + TM ≤ n`,
                        // `j0 + TN ≤ m`, and `kk + 1 < ke ≤ k`, so every
                        // `(i0+r)·k + kk (+1)` is `< n·k` and every B-row
                        // window `kk·m + j0 .. + TN` ends `≤ k·m`.
                        unsafe {
                            let mut kk = k0;
                            while kk + 2 <= ke {
                                let b0 = &*(b.as_ptr().add(kk * m + j0) as *const [f32; TN]);
                                let b1 = &*(b.as_ptr().add((kk + 1) * m + j0) as *const [f32; TN]);
                                for r in 0..TM {
                                    let av0 = *a.get_unchecked((i0 + r) * k + kk);
                                    let av1 = *a.get_unchecked((i0 + r) * k + kk + 1);
                                    for c in 0..TN {
                                        part[r][c] = av0.mul_add(b0[c], part[r][c]);
                                    }
                                    for c in 0..TN {
                                        part[r][c] = av1.mul_add(b1[c], part[r][c]);
                                    }
                                }
                                kk += 2;
                            }
                            while kk < ke {
                                let brow = &*(b.as_ptr().add(kk * m + j0) as *const [f32; TN]);
                                for r in 0..TM {
                                    let av = *a.get_unchecked((i0 + r) * k + kk);
                                    for c in 0..TN {
                                        part[r][c] = av.mul_add(brow[c], part[r][c]);
                                    }
                                }
                                kk += 1;
                            }
                        }
                    } else {
                        for kk in k0..ke {
                            let brow = &b[kk * m + j0..kk * m + j0 + jb];
                            for (r, partr) in part.iter_mut().enumerate().take(ib) {
                                let av = a[(i0 + r) * k + kk];
                                for (c, &bv) in brow.iter().enumerate() {
                                    partr[c] = av.mul_add(bv, partr[c]);
                                }
                            }
                        }
                    }
                    for (r, partr) in part.iter().enumerate().take(ib) {
                        let base = (i0 + r) * m + j0;
                        for (x, &p) in out[base..base + jb].iter_mut().zip(partr.iter()) {
                            *x += p;
                        }
                    }
                    k0 = ke;
                }
                j0 += TN;
            }
            i0 += TM;
        }
    }

    /// Transposed-A `fast-math` micro-kernel body; strided `A` reads,
    /// same reduction tree as [`fm_band_impl`].
    #[cfg(feature = "fast-math")]
    #[inline(always)]
    // kernel ABI: three slices + four dims beats a struct in the hot loop
    #[allow(clippy::too_many_arguments)]
    // `r` indexes both `part` and the strided `a` loads; the iterator form
    // perturbs the tuned full-tile codegen.
    #[allow(clippy::needless_range_loop)]
    fn fm_tn_band_impl<const TM: usize, const TN: usize>(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        k: usize,
        n: usize,
        m: usize,
        i0: usize,
    ) {
        let nb = out.len().checked_div(m).unwrap_or(0);
        // Real asserts: they establish the bounds the unchecked full-tile
        // loads below rely on.
        assert_eq!(a.len(), k * n, "fm tn band lhs shape");
        assert_eq!(b.len(), k * m, "fm tn band rhs shape");
        assert!(i0 + nb <= n, "fm tn band range");
        let mut r0 = 0;
        while r0 < nb {
            let ib = TM.min(nb - r0);
            let mut j0 = 0;
            while j0 < m {
                let jb = TN.min(m - j0);
                // Same memory-accumulator structure as [`fm_band_impl`]:
                // the out tile folds the register block partials in
                // increasing block order, keeping one tile live.
                for r in 0..ib {
                    let base = (r0 + r) * m + j0;
                    out[base..base + jb].fill(0.0);
                }
                let mut k0 = 0;
                while k0 < k {
                    let ke = (k0 + FM_KBLOCK).min(k);
                    let mut part = [[0.0f32; TN]; TM];
                    if ib == TM && jb == TN {
                        // Unrolled by two; the per-element chain order is
                        // untouched (av0's update precedes av1's). Unchecked
                        // loads for the same reason as [`fm_band_impl`].
                        //
                        // SAFETY: `a.len() = k·n` and `b.len() = k·m` are
                        // asserted on entry; in this branch
                        // `i0 + r0 + TM ≤ i0 + nb ≤ n`, `j0 + TN ≤ m`, and
                        // `kk + 1 < ke ≤ k`, so every `kk·n + i0 + r0 + r`
                        // is `< k·n` and every B-row window ends `≤ k·m`.
                        unsafe {
                            let mut kk = k0;
                            while kk + 2 <= ke {
                                let b0 = &*(b.as_ptr().add(kk * m + j0) as *const [f32; TN]);
                                let b1 = &*(b.as_ptr().add((kk + 1) * m + j0) as *const [f32; TN]);
                                for r in 0..TM {
                                    let av0 = *a.get_unchecked(kk * n + i0 + r0 + r);
                                    let av1 = *a.get_unchecked((kk + 1) * n + i0 + r0 + r);
                                    for c in 0..TN {
                                        part[r][c] = av0.mul_add(b0[c], part[r][c]);
                                    }
                                    for c in 0..TN {
                                        part[r][c] = av1.mul_add(b1[c], part[r][c]);
                                    }
                                }
                                kk += 2;
                            }
                            while kk < ke {
                                let brow = &*(b.as_ptr().add(kk * m + j0) as *const [f32; TN]);
                                for r in 0..TM {
                                    let av = *a.get_unchecked(kk * n + i0 + r0 + r);
                                    for c in 0..TN {
                                        part[r][c] = av.mul_add(brow[c], part[r][c]);
                                    }
                                }
                                kk += 1;
                            }
                        }
                    } else {
                        for kk in k0..ke {
                            let brow = &b[kk * m + j0..kk * m + j0 + jb];
                            for (r, partr) in part.iter_mut().enumerate().take(ib) {
                                let av = a[kk * n + i0 + r0 + r];
                                for (c, &bv) in brow.iter().enumerate() {
                                    partr[c] = av.mul_add(bv, partr[c]);
                                }
                            }
                        }
                    }
                    for (r, partr) in part.iter().enumerate().take(ib) {
                        let base = (r0 + r) * m + j0;
                        for (x, &p) in out[base..base + jb].iter_mut().zip(partr.iter()) {
                            *x += p;
                        }
                    }
                    k0 = ke;
                }
                j0 += TN;
            }
            r0 += TM;
        }
    }

    // `fast-math` ISA variants. `mul_add` lowers to a hardware vfmadd
    // wherever the enabled target features include FMA; on the portable
    // fallback it is a (slow, but bit-exact) libm fma call — the chain is
    // an IEEE operation either way, which is why every path agrees.

    #[cfg(all(feature = "fast-math", target_arch = "x86_64"))]
    #[target_feature(enable = "avx512f,fma")]
    // SAFETY: callers must verify `avx512f` and `fma` via
    // `is_x86_feature_detected!` before calling — that is the *only*
    // obligation `unsafe` marks here. The body is the bounds-checked
    // generic tile over plain slices.
    unsafe fn fm_band_avx512(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize) {
        debug_assert!(std::arch::is_x86_feature_detected!("avx512f"));
        // 8×32 tile: 16 zmm block partials — b-row loads amortise over 8
        // output rows and the chains cover the FMA latency, no spills.
        fm_band_impl::<8, 32>(a, b, out, k, m)
    }

    #[cfg(all(feature = "fast-math", target_arch = "x86_64"))]
    #[target_feature(enable = "avx2,fma")]
    // SAFETY: callers must verify `avx2` and `fma` at runtime; body is the
    // same bounds-checked generic tile, packed 8 lanes wide.
    unsafe fn fm_band_avx2(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize) {
        debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
        fm_band_impl::<4, 16>(a, b, out, k, m)
    }

    #[cfg(all(feature = "fast-math", target_arch = "x86_64"))]
    #[target_feature(enable = "avx512f,fma")]
    #[allow(clippy::too_many_arguments)] // kernel ABI mirrors fm_tn_band_impl
                                         // SAFETY: callers must verify `avx512f` and `fma` at runtime;
                                         // body is the bounds-checked transposed-A generic tile.
    unsafe fn fm_tn_band_avx512(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        k: usize,
        n: usize,
        m: usize,
        i0: usize,
    ) {
        debug_assert!(std::arch::is_x86_feature_detected!("avx512f"));
        fm_tn_band_impl::<8, 32>(a, b, out, k, n, m, i0)
    }

    #[cfg(all(feature = "fast-math", target_arch = "x86_64"))]
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)] // kernel ABI mirrors fm_tn_band_impl
                                         // SAFETY: callers must verify `avx2` and `fma` at runtime;
                                         // body is the bounds-checked transposed-A generic tile.
    unsafe fn fm_tn_band_avx2(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        k: usize,
        n: usize,
        m: usize,
        i0: usize,
    ) {
        debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
        fm_tn_band_impl::<4, 16>(a, b, out, k, n, m, i0)
    }

    /// The `fast-math` tier of [`mm_band`]: FMA reduction-tree kernel with
    /// runtime ISA dispatch. All paths re-instantiate the same generic
    /// body, so they agree bitwise; Miri takes the portable path for the
    /// same reason the unfused dispatch does.
    #[cfg(feature = "fast-math")]
    pub(super) fn fm_mm_band(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize) {
        debug_assert_eq!(b.len(), k * m, "mm_band rhs shape");
        debug_assert_eq!(a.len() * m, out.len() * k, "mm_band band shape");
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("fma")
            {
                // SAFETY: avx512f and fma were verified on this CPU on the
                // line above, which is the wrapper's only precondition.
                return unsafe { fm_band_avx512(a, b, out, k, m) };
            }
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                // SAFETY: avx2 and fma were verified on this CPU above.
                return unsafe { fm_band_avx2(a, b, out, k, m) };
            }
        }
        fm_band_impl::<MR, NR>(a, b, out, k, m)
    }

    /// The `fast-math` tier of [`mm_tn_band`]; see [`fm_mm_band`].
    #[cfg(feature = "fast-math")]
    #[allow(clippy::too_many_arguments)] // kernel ABI mirrors fm_tn_band_impl
    pub(super) fn fm_mm_tn_band(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        k: usize,
        n: usize,
        m: usize,
        i0: usize,
    ) {
        debug_assert_eq!(a.len(), k * n, "mm_tn_band lhs shape");
        debug_assert_eq!(b.len(), k * m, "mm_tn_band rhs shape");
        debug_assert!(i0 + out.len() / m <= n, "mm_tn_band band range");
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("fma")
            {
                // SAFETY: avx512f and fma were verified on this CPU on the
                // line above, which is the wrapper's only precondition.
                return unsafe { fm_tn_band_avx512(a, b, out, k, n, m, i0) };
            }
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                // SAFETY: avx2 and fma were verified on this CPU above.
                return unsafe { fm_tn_band_avx2(a, b, out, k, n, m, i0) };
            }
        }
        fm_tn_band_impl::<MR, NR>(a, b, out, k, n, m, i0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_vec(2, 2, vec![58., 64., 139., 154.]));
    }

    #[test]
    fn matmul_nt_matches_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(4, 3, vec![1., 0., 1., 2., 1., 0., 0., 3., 1., 1., 1., 1.]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn matmul_tn_matches_transpose() {
        let a = Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 4, (0..12).map(|x| x as f32).collect());
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn vstack_shapes() {
        let a = Tensor::row(vec![1., 2.]);
        let b = Tensor::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let s = Tensor::vstack(&[&a, &b]);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row_slice(2), &[5., 6.]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn hadamard_and_scale() {
        let a = Tensor::row(vec![1., 2., 3.]);
        let b = Tensor::row(vec![2., 0.5, -1.]);
        let mut h = a.hadamard(&b);
        assert_eq!(h.data(), &[2., 1., -3.]);
        h.scale_assign(2.0);
        assert_eq!(h.data(), &[4., 2., -6.]);
    }

    /// Deterministic pseudo-random tensor (splitmix64-ish) for kernel tests.
    fn pseudo(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut s = seed;
        let data = (0..rows * cols)
            .map(|_| {
                s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((z >> 40) as f32 / (1 << 24) as f32) * 4.0 - 2.0
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    /// The scalar oracle the production kernel must match bitwise in the
    /// active build: the naive increasing-`k` chain at default features,
    /// the `FM_KBLOCK` fused reduction tree under `fast-math`.
    fn oracle(a: &Tensor, b: &Tensor) -> Tensor {
        #[cfg(feature = "fast-math")]
        {
            a.matmul_fma_reference(b)
        }
        #[cfg(not(feature = "fast-math"))]
        {
            a.matmul_reference(b)
        }
    }

    /// The production kernel keeps a fixed per-element accumulation chain,
    /// so it must match the scalar oracle *bitwise* — including ragged
    /// edges that don't fill a full register tile.
    #[test]
    fn blocked_matmul_is_bitwise_equal_to_reference() {
        let shapes: &[(usize, usize, usize)] = if cfg!(miri) {
            &[(1, 1, 1), (3, 5, 7), (5, 17, 33)]
        } else {
            &[
                (1, 1, 1),
                (3, 5, 7),
                (4, 16, 16),
                (5, 17, 33),
                (13, 9, 21),
                (32, 24, 48),
            ]
        };
        for &(n, k, m) in shapes {
            let a = pseudo(n, k, 0xA0 + n as u64);
            let b = pseudo(k, m, 0xB0 + m as u64);
            assert_eq!(
                a.matmul(&b).data(),
                oracle(&a, &b).data(),
                "shape ({n},{k},{m})"
            );
        }
    }

    /// `matmul_unfused` is the always-available no-FMA tier: it must match
    /// the naive scalar reference bitwise in *both* feature configurations
    /// (it ignores `fast-math` by design, so benches can compare tiers
    /// inside one binary).
    #[test]
    fn unfused_matmul_is_bitwise_equal_to_reference_in_every_config() {
        let shapes: &[(usize, usize, usize)] = if cfg!(miri) {
            &[(3, 5, 7)]
        } else {
            &[(1, 1, 1), (3, 5, 7), (4, 16, 16), (13, 9, 21), (32, 24, 48)]
        };
        for &(n, k, m) in shapes {
            let a = pseudo(n, k, 0x1A0 + n as u64);
            let b = pseudo(k, m, 0x1B0 + m as u64);
            assert_eq!(
                a.matmul_unfused(&b).data(),
                a.matmul_reference(&b).data(),
                "shape ({n},{k},{m})"
            );
            let ta = pseudo(k, n, 0x1C0 + n as u64);
            assert_eq!(
                ta.matmul_tn_unfused(&b).data(),
                ta.transpose().matmul_reference(&b).data(),
                "tn shape ({n},{k},{m})"
            );
        }
    }

    /// Under `fast-math` the fused kernel must differ from the unfused tier
    /// somewhere on real data (otherwise the feature is wired to nothing),
    /// while agreeing with its own reduction-tree oracle bitwise.
    #[cfg(feature = "fast-math")]
    #[test]
    fn fast_math_kernel_actually_contracts() {
        let (n, k, m) = (16, 130, 24);
        let a = pseudo(n, k, 0x2A);
        let b = pseudo(k, m, 0x2B);
        let fused = a.matmul(&b);
        assert_eq!(fused.data(), a.matmul_fma_reference(&b).data());
        assert_ne!(
            fused.data(),
            a.matmul_unfused(&b).data(),
            "fused and unfused tiers should disagree in low bits on random data"
        );
    }

    #[test]
    fn matmul_tn_is_bitwise_equal_to_explicit_transpose() {
        let shapes: &[(usize, usize, usize)] = if cfg!(miri) {
            &[(1, 1, 1), (5, 3, 7), (17, 5, 33)]
        } else {
            &[(1, 1, 1), (5, 3, 7), (16, 4, 16), (17, 5, 33), (9, 13, 21)]
        };
        for &(k, n, m) in shapes {
            let a = pseudo(k, n, 0xC0 + n as u64);
            let b = pseudo(k, m, 0xD0 + m as u64);
            assert_eq!(
                a.matmul_tn(&b).data(),
                oracle(&a.transpose(), &b).data(),
                "shape ({k},{n},{m})"
            );
        }
    }

    #[test]
    fn matmul_nt_is_bitwise_equal_to_explicit_transpose() {
        let shapes: &[(usize, usize, usize)] = if cfg!(miri) {
            &[(1, 1, 1), (3, 5, 7), (5, 17, 33)]
        } else {
            &[(1, 1, 1), (1, 8, 40), (3, 5, 7), (5, 17, 33), (13, 9, 21)]
        };
        for &(n, k, m) in shapes {
            let a = pseudo(n, k, 0xE0 + n as u64);
            let b = pseudo(m, k, 0xF0 + m as u64);
            assert_eq!(
                a.matmul_nt(&b).data(),
                oracle(&a, &b.transpose()).data(),
                "shape ({n},{k},{m})"
            );
        }
    }

    /// Regression for the removed `a == 0.0` fast path: a zero coefficient
    /// against NaN/∞ must produce NaN per IEEE 754, not silently flush to 0.
    #[test]
    fn zero_times_non_finite_propagates_nan() {
        let a = Tensor::from_vec(2, 2, vec![0.0, 0.0, 1.0, 0.0]);
        let b = Tensor::from_vec(2, 2, vec![f32::NAN, f32::INFINITY, 1.0, 2.0]);
        let c = a.matmul(&b);
        assert!(c.get(0, 0).is_nan(), "0·NaN + 0·1 must be NaN");
        assert!(c.get(0, 1).is_nan(), "0·∞ + 0·2 must be NaN");
        assert!(c.get(1, 0).is_nan(), "1·NaN must be NaN");
        let tn = a.transpose().matmul_tn(&b);
        assert!(tn.get(0, 0).is_nan(), "matmul_tn must propagate NaN too");
        let r = a.matmul_reference(&b);
        assert!(r.get(0, 0).is_nan() && r.get(0, 1).is_nan());
    }

    /// Row-banded parallel kernels must be byte-identical to sequential at
    /// every thread count (disjoint output rows, same per-element order).
    ///
    /// The shape must satisfy `n·k·m ≥ MIN_PAR_WORK` or the `*_par` entry
    /// points silently fall back to sequential and the test is vacuous:
    /// 37·29·63 = 67,599 ≥ 65,536 crosses the threshold while keeping
    /// ragged (non-tile-multiple) edges in every dimension. Under Miri that
    /// much arithmetic takes minutes, so we drop below the threshold and
    /// only check the fallback agrees — the banded path's soundness story
    /// (disjoint `split_at_mut` bands) is covered by cosmo-exec's own
    /// Miri-run scope tests.
    #[test]
    fn parallel_matmuls_match_sequential_bitwise() {
        let (n, k, m) = if cfg!(miri) { (7, 5, 9) } else { (37, 29, 63) };
        if !cfg!(miri) {
            assert!(
                n * k * m >= kernels::MIN_PAR_WORK,
                "shape must hit band path"
            );
        }
        let a = pseudo(n, k, 1);
        let b = pseudo(k, m, 2);
        let tn_a = pseudo(k, n, 3);
        let nt_b = pseudo(m, k, 4);
        let seq = a.matmul(&b);
        let seq_tn = tn_a.matmul_tn(&b);
        let seq_nt = a.matmul_nt(&nt_b);
        let thread_grid: &[usize] = if cfg!(miri) {
            &[1, 4]
        } else {
            &[1, 2, 3, 4, 8]
        };
        for &threads in thread_grid {
            let pool = WorkerPool::new(threads);
            assert_eq!(a.matmul_par(&b, &pool).data(), seq.data(), "t={threads}");
            assert_eq!(
                tn_a.matmul_tn_par(&b, &pool).data(),
                seq_tn.data(),
                "tn t={threads}"
            );
            assert_eq!(
                a.matmul_nt_par(&nt_b, &pool).data(),
                seq_nt.data(),
                "nt t={threads}"
            );
        }
    }
}
