//! Tape-free inference forwards and reusable scratch pools.
//!
//! Training runs through [`crate::tape::Tape`], which copies every parameter
//! it touches (so gradients can be accumulated against a frozen value) and
//! records an op per node. Inference needs neither: this module provides the
//! same forward computations reading parameters *in place* from the
//! [`ParamStore`], writing into caller-owned scratch tensors, with zero
//! autodiff bookkeeping and zero steady-state allocation.
//!
//! Every function here is bitwise identical to the tape formulation it
//! replaces, in both feature configurations: the per-element reduction
//! chains run through the same [`Tensor`] kernels, gathers and segment
//! means visit rows in the same order, and broadcasts apply in the same
//! row-major order as the tape ops. Tests at the bottom lock this.

use crate::params::{ParamId, ParamStore};
use crate::tape::Tape;
use crate::tensor::Tensor;
use std::sync::{Mutex, PoisonError};

/// Reusable buffers for a tape-free forward pass. One scratch serves one
/// forward at a time; park it in a [`ScratchPool`] to share across calls
/// and threads. All fields are plain buffers the caller stages data in —
/// there is no hidden state between calls.
#[derive(Debug)]
pub struct InferScratch {
    /// Flattened feature ids across the batch (gather source rows).
    pub ids: Vec<usize>,
    /// Destination batch row per id, parallel to `ids`, non-decreasing.
    pub segments: Vec<usize>,
    /// Per-segment id counts (filled by [`embed_bag_into`]).
    pub counts: Vec<usize>,
    /// Pooled `[batch × dim]` encodings.
    pub pooled: Tensor,
    /// Intermediate layer output.
    pub hidden: Tensor,
    /// Final layer output.
    pub out: Tensor,
    /// Transpose scratch for [`Tensor::matmul_nt_into`].
    pub nt_scratch: Vec<f32>,
}

impl Default for InferScratch {
    fn default() -> Self {
        InferScratch {
            ids: Vec::new(),
            segments: Vec::new(),
            counts: Vec::new(),
            pooled: Tensor::zeros(0, 0),
            hidden: Tensor::zeros(0, 0),
            out: Tensor::zeros(0, 0),
            nt_scratch: Vec::new(),
        }
    }
}

impl InferScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear the id staging buffers (tensors are reshaped by the ops that
    /// write them, so only the append-style buffers need explicit clears).
    pub fn clear_ids(&mut self) {
        self.ids.clear();
        self.segments.clear();
    }
}

/// Mean-pooled bag embedding for a whole batch, equivalent to the tape's
/// `param → gather → segment_mean` chain but reading `table` in place and
/// never materialising the gathered rows: row `r` of the gather *is*
/// `table[ids[r]]`, so its value is summed straight into segment
/// `segments[r]` in increasing `r` order — the exact order
/// [`Tape::segment_mean`] uses. Empty segments stay zero rows, and (as on
/// the tape) a segment's sum is only rescaled when it holds ≥ 2 rows, so
/// single-id bags keep the table row's exact bits.
pub fn embed_bag_into(
    table: &Tensor,
    ids: &[usize],
    segments: &[usize],
    batch: usize,
    counts: &mut Vec<usize>,
    out: &mut Tensor,
) {
    assert_eq!(ids.len(), segments.len(), "embed_bag id/segment mismatch");
    out.reset_zeroed(batch, table.cols());
    counts.clear();
    counts.resize(batch, 0);
    for (&id, &s) in ids.iter().zip(segments.iter()) {
        assert!(id < table.rows(), "gather index {id} out of range");
        assert!(s < batch, "segment id {s} out of range");
        counts[s] += 1;
        for (o, &x) in out.row_slice_mut(s).iter_mut().zip(table.row_slice(id)) {
            *o += x;
        }
    }
    for (s, &c) in counts.iter().enumerate() {
        if c > 1 {
            let inv = 1.0 / c as f32;
            for x in out.row_slice_mut(s) {
                *x *= inv;
            }
        }
    }
}

/// Affine forward `x·W + b` into `out`, equivalent to the tape's
/// `matmul → add_row`: the matmul runs through the same kernel entry
/// point, then the bias row is added to each output row in increasing
/// row-major order.
pub fn linear_into(x: &Tensor, w: &Tensor, b: &Tensor, out: &mut Tensor) {
    assert_eq!(b.rows(), 1, "linear bias must be a row vector");
    assert_eq!(w.cols(), b.cols(), "linear weight/bias width mismatch");
    out.reset_zeroed(x.rows(), w.cols());
    x.matmul_into(w, out);
    for r in 0..out.rows() {
        for (o, &y) in out.row_slice_mut(r).iter_mut().zip(b.data().iter()) {
            *o += y;
        }
    }
}

/// `x · tableᵀ` into `out`, equivalent to the tape's `matmul_nt`; the
/// transpose scratch is caller-owned so repeated calls reuse capacity.
pub fn matmul_nt_into(x: &Tensor, table: &Tensor, scratch: &mut Vec<f32>, out: &mut Tensor) {
    out.reset_zeroed(x.rows(), table.rows());
    x.matmul_nt_into(table, out, scratch);
}

/// Read a parameter tensor in place for inference forwards.
pub fn param(store: &ParamStore, id: ParamId) -> &Tensor {
    store.value(id)
}

/// A lock-protected free list of [`InferScratch`] buffers. `take` pops a
/// recycled scratch (or builds a fresh one), `put` parks it for the next
/// caller; the mutex is held only for the push/pop, never across a forward
/// pass. A poisoned lock just hands back the inner list — the scratches
/// hold no invariants a panic could break (every op overwrites its output).
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<Vec<InferScratch>>,
}

impl ScratchPool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pop a recycled scratch, or allocate one if the pool is dry.
    pub fn take(&self) -> InferScratch {
        self.free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    /// Park a scratch for reuse.
    pub fn put(&self, scratch: InferScratch) {
        self.free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(scratch);
    }
}

/// A lock-protected free list of reset [`Tape`]s, for inference paths that
/// keep the tape formulation but must not pay a `Tape::new` allocation per
/// call. Tapes are [`Tape::reset`] on `put`, which recycles their buffers;
/// results computed on a pooled tape are bitwise identical to a fresh one
/// (locked by the tape's own reset test).
#[derive(Default)]
pub struct TapePool {
    free: Mutex<Vec<Tape>>,
}

impl TapePool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pop a reset tape, or build a fresh one if the pool is dry.
    pub fn take(&self) -> Tape {
        self.free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    /// Reset and park a tape for reuse.
    pub fn put(&self, mut tape: Tape) {
        tape.reset();
        self.free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(tape);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use crate::layers::{Embedding, Linear};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (ParamStore, Embedding, Linear, StdRng) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(97);
        let emb = Embedding::new(&mut store, "emb", 64, 12, &mut rng);
        let lin = Linear::new(&mut store, "head", 12, 5, &mut rng);
        (store, emb, lin, rng)
    }

    #[test]
    fn embed_bag_into_matches_tape_gather_segment_mean_bitwise() {
        let (store, emb, _, _) = fixture();
        // Batch of 4 bags: multi-id, single-id, empty, repeated-id.
        let ids = vec![3usize, 17, 9, 5, 20, 20];
        let segments = vec![0usize, 0, 0, 1, 3, 3];
        let batch = 4;

        let mut tape = Tape::new();
        let t = emb.table(&mut tape, &store);
        let g = tape.gather(t, &ids);
        let want = tape.segment_mean(g, &segments, batch);

        let mut counts = Vec::new();
        let mut got = Tensor::zeros(1, 1);
        embed_bag_into(
            emb.table_value(&store),
            &ids,
            &segments,
            batch,
            &mut counts,
            &mut got,
        );
        assert_eq!(got.shape(), (batch, emb.dim()));
        assert_eq!(got.data(), tape.value(want).data());
        assert_eq!(counts, vec![3, 1, 0, 2]);
    }

    #[test]
    fn linear_into_matches_tape_forward_bitwise() {
        let (store, _, lin, mut rng) = fixture();
        let x = init::uniform(7, 12, -1.0, 1.0, &mut rng);

        let mut tape = Tape::new();
        let xv = tape.input(x.clone());
        let want = lin.forward(&mut tape, &store, xv);

        let (w, b) = lin.params(&store);
        let mut got = Tensor::zeros(1, 1);
        linear_into(&x, w, b, &mut got);
        assert_eq!(got.data(), tape.value(want).data());
    }

    #[test]
    fn matmul_nt_into_matches_tape_bitwise_for_single_and_batch() {
        let (_, _, _, mut rng) = fixture();
        let table = init::uniform(33, 12, -1.0, 1.0, &mut rng);
        for batch in [1usize, 6] {
            let x = init::uniform(batch, 12, -1.0, 1.0, &mut rng);
            let mut tape = Tape::new();
            let xv = tape.input(x.clone());
            let tv = tape.input(table.clone());
            let want = tape.matmul_nt(xv, tv);

            let mut scratch = Vec::new();
            let mut got = Tensor::zeros(1, 1);
            matmul_nt_into(&x, &table, &mut scratch, &mut got);
            assert_eq!(got.data(), tape.value(want).data(), "batch={batch}");
        }
    }

    /// Each batch row of the nt product must carry the exact bits of the
    /// corresponding single-row product — the property that makes batched
    /// student inference bitwise equal to the per-item loop.
    #[test]
    fn batched_nt_rows_match_single_row_calls_bitwise() {
        let (_, _, _, mut rng) = fixture();
        let table = init::uniform(21, 16, -1.0, 1.0, &mut rng);
        let x = init::uniform(5, 16, -1.0, 1.0, &mut rng);
        let mut scratch = Vec::new();
        let mut batched = Tensor::zeros(1, 1);
        matmul_nt_into(&x, &table, &mut scratch, &mut batched);
        for r in 0..x.rows() {
            let row = Tensor::from_vec(1, x.cols(), x.row_slice(r).to_vec());
            let mut single = Tensor::zeros(1, 1);
            matmul_nt_into(&row, &table, &mut scratch, &mut single);
            assert_eq!(single.data(), batched.row_slice(r), "row {r}");
        }
    }

    #[test]
    fn pools_recycle_buffers() {
        let pool = ScratchPool::new();
        let mut s = pool.take();
        s.ids.reserve(1024);
        let cap = s.ids.capacity();
        pool.put(s);
        assert!(
            pool.take().ids.capacity() >= cap,
            "scratch was not recycled"
        );

        let tapes = TapePool::new();
        let mut t = tapes.take();
        let _ = t.input(Tensor::zeros(4, 4));
        tapes.put(t);
        let t = tapes.take();
        assert!(t.pooled_buffers() > 0, "tape buffers were not recycled");
    }
}
