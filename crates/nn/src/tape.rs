//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records a DAG of tensor operations built during a forward
//! pass; [`Tape::backward`] then walks the nodes in reverse, propagating
//! gradients with hand-derived rules per op. Parameters enter the tape
//! as leaf copies tagged with their [`ParamId`]; after backward,
//! [`Tape::accumulate_param_grads`] adds leaf gradients into the
//! [`ParamStore`] so an optimizer can step.
//!
//! The op set is exactly what the COSMO models need: affine maps, GRU gates,
//! attention (softmax + matmul), GNN message passing (matmul with a constant
//! adjacency), embedding gather, classification and ranking losses.
//! Every op's gradient is verified against central finite differences in
//! the tests at the bottom of this file and property-tested in
//! `tests/gradcheck.rs`.
//!
//! # Workspace reuse
//!
//! A tape owns a free list of `f32` buffers. Every node value, every
//! gradient, and every backward temporary is carved out of that pool, and
//! [`Tape::reset`] returns all of them to it — so a training loop that
//! calls `reset()` between minibatches stops paying an allocator
//! round-trip per recorded op after the first step. Buffer reuse never
//! changes any computed value: the arithmetic (and therefore every result
//! bit) is identical to a freshly allocated tape.

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

/// Recorded operation (parents referenced by [`Var`]).
#[derive(Debug, Clone)]
enum Op {
    /// Constant input; receives a gradient but propagates nowhere.
    Input,
    /// Parameter leaf: gradient is exported to the [`ParamStore`].
    Param(ParamId),
    Matmul(Var, Var),
    /// `A · Bᵀ` — used for scoring a batch against an embedding table.
    MatmulNT(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    /// `[n×d] + [1×d]` broadcast (bias addition).
    AddRow(Var, Var),
    /// `[n×d] ⊙ [1×d]` broadcast (per-feature gating).
    MulRow(Var, Var),
    Scale(Var, f32),
    AddScalar(Var),
    Relu(Var),
    Tanh(Var),
    Sigmoid(Var),
    /// Elementwise natural log (inputs must be positive).
    Log(Var),
    /// Row gather: output row `i` is parent row `idx[i]`.
    Gather(Var, Vec<usize>),
    MeanRows(Var),
    SumRows(Var),
    SumAll(Var),
    MeanAll(Var),
    /// Per-segment mean of rows: row `i` of the output is the mean of the
    /// parent rows whose segment id is `i` (zero row for empty segments).
    /// The batched embedding-bag used by the critic and student models.
    SegmentMean(Var, Vec<usize>, usize),
    ConcatCols(Var, Var),
    Transpose(Var),
    /// Row-wise softmax.
    Softmax(Var),
    /// Mean negative log-likelihood of `targets` under row-wise softmax of
    /// the logits.
    CrossEntropy(Var, Vec<usize>),
    /// Mean binary cross-entropy with logits (`[n×1]` logits).
    BceWithLogits(Var, Vec<f32>),
    /// BPR ranking loss: `-mean log σ(x)` over an `[n×1]` score-difference
    /// column.
    BprLoss(Var),
}

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
}

/// A forward-pass recording.
///
/// Create one per training step, or — cheaper — keep one per worker and
/// call [`Tape::reset`] between steps to recycle every buffer it owns.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    /// Recycled backing buffers for node values, gradients and backward
    /// temporaries.
    free: Vec<Vec<f32>>,
}

// ----------------------------------------------------------- pool helpers
// Free functions over the pool (not methods) so `backward` can borrow
// `nodes` and `free` independently.

/// Pop a cleared buffer from the pool (or a fresh one).
fn take_buf(free: &mut Vec<Vec<f32>>) -> Vec<f32> {
    match free.pop() {
        Some(mut b) => {
            b.clear();
            b
        }
        None => Vec::new(),
    }
}

/// A pooled `rows×cols` tensor filled with `fill`.
fn pooled_full(free: &mut Vec<Vec<f32>>, rows: usize, cols: usize, fill: f32) -> Tensor {
    let mut buf = take_buf(free);
    buf.resize(rows * cols, fill);
    Tensor::from_vec(rows, cols, buf)
}

/// A pooled copy of `src`.
fn pooled_copy(free: &mut Vec<Vec<f32>>, src: &Tensor) -> Tensor {
    let mut buf = take_buf(free);
    buf.extend_from_slice(src.data());
    Tensor::from_vec(src.rows(), src.cols(), buf)
}

/// A pooled elementwise map of `src`.
fn pooled_map(free: &mut Vec<Vec<f32>>, src: &Tensor, f: impl Fn(f32) -> f32) -> Tensor {
    let mut buf = take_buf(free);
    buf.extend(src.data().iter().map(|&x| f(x)));
    Tensor::from_vec(src.rows(), src.cols(), buf)
}

/// A pooled elementwise combine of `a` and `b` (equal shapes).
fn pooled_zip(
    free: &mut Vec<Vec<f32>>,
    a: &Tensor,
    b: &Tensor,
    f: impl Fn(f32, f32) -> f32,
) -> Tensor {
    let mut buf = take_buf(free);
    buf.extend(a.data().iter().zip(b.data().iter()).map(|(&x, &y)| f(x, y)));
    Tensor::from_vec(a.rows(), a.cols(), buf)
}

/// Add `g` into the node's gradient slot (in place when one exists),
/// recycling `g`'s buffer if it is not kept.
fn accum_grad(slot: &mut Option<Tensor>, g: Tensor, free: &mut Vec<Vec<f32>>) {
    match slot {
        Some(existing) => {
            existing.add_assign(&g);
            free.push(g.into_data());
        }
        slot @ None => *slot = Some(g),
    }
}

impl Tape {
    /// Empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Clear all recorded nodes, returning every value and gradient buffer
    /// to the internal pool so the next forward pass allocates (almost)
    /// nothing. Results computed on a reset tape are bitwise identical to
    /// a fresh one.
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            self.free.push(node.value.into_data());
            if let Some(g) = node.grad {
                self.free.push(g.into_data());
            }
        }
    }

    /// Number of pooled buffers currently available for reuse.
    pub fn pooled_buffers(&self) -> usize {
        self.free.len()
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// Current value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Gradient of a node (populated by [`Tape::backward`]).
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ---------------------------------------------------------------- leaves

    /// Record a constant input.
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Input)
    }

    /// Record a parameter leaf (copies the current value out of the store).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let v = pooled_copy(&mut self.free, store.value(id));
        self.push(v, Op::Param(id))
    }

    // ------------------------------------------------------------------- ops

    /// `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (n, m) = (self.nodes[a.0].value.rows(), self.nodes[b.0].value.cols());
        let mut out = pooled_full(&mut self.free, n, m, 0.0);
        self.nodes[a.0]
            .value
            .matmul_into(&self.nodes[b.0].value, &mut out);
        self.push(out, Op::Matmul(a, b))
    }

    /// `a · bᵀ`.
    pub fn matmul_nt(&mut self, a: Var, b: Var) -> Var {
        let (n, m) = (self.nodes[a.0].value.rows(), self.nodes[b.0].value.rows());
        let mut out = pooled_full(&mut self.free, n, m, 0.0);
        let mut scratch = take_buf(&mut self.free);
        self.nodes[a.0]
            .value
            .matmul_nt_into(&self.nodes[b.0].value, &mut out, &mut scratch);
        self.free.push(scratch);
        self.push(out, Op::MatmulNT(a, b))
    }

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(av.shape(), bv.shape(), "add_assign shape mismatch");
        let v = pooled_zip(&mut self.free, av, bv, |x, y| x + y);
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise `a − b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(av.shape(), bv.shape(), "sub shape mismatch");
        let v = pooled_zip(&mut self.free, av, bv, |x, y| x - y);
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise `a ⊙ b`.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(av.shape(), bv.shape(), "hadamard shape mismatch");
        let v = pooled_zip(&mut self.free, av, bv, |x, y| x * y);
        self.push(v, Op::Mul(a, b))
    }

    /// Broadcast add a `[1×d]` row to every row of `[n×d]`.
    pub fn add_row(&mut self, a: Var, row: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let rv = &self.nodes[row.0].value;
        assert_eq!(rv.rows(), 1, "add_row rhs must be a row vector");
        assert_eq!(av.cols(), rv.cols(), "add_row width mismatch");
        let mut v = pooled_copy(&mut self.free, &self.nodes[a.0].value);
        let rv = &self.nodes[row.0].value;
        for r in 0..v.rows() {
            let row_s = v.row_slice_mut(r);
            for (x, &y) in row_s.iter_mut().zip(rv.data().iter()) {
                *x += y;
            }
        }
        self.push(v, Op::AddRow(a, row))
    }

    /// Broadcast multiply every row of `[n×d]` by a `[1×d]` row.
    pub fn mul_row(&mut self, a: Var, row: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let rv = &self.nodes[row.0].value;
        assert_eq!(rv.rows(), 1, "mul_row rhs must be a row vector");
        assert_eq!(av.cols(), rv.cols(), "mul_row width mismatch");
        let mut v = pooled_copy(&mut self.free, &self.nodes[a.0].value);
        let rv = &self.nodes[row.0].value;
        for r in 0..v.rows() {
            let row_s = v.row_slice_mut(r);
            for (x, &y) in row_s.iter_mut().zip(rv.data().iter()) {
                *x *= y;
            }
        }
        self.push(v, Op::MulRow(a, row))
    }

    /// `s · a`.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = pooled_map(&mut self.free, &self.nodes[a.0].value, |x| s * x);
        self.push(v, Op::Scale(a, s))
    }

    /// `a + s` elementwise.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let v = pooled_map(&mut self.free, &self.nodes[a.0].value, |x| x + s);
        self.push(v, Op::AddScalar(a))
    }

    /// `1 − a` elementwise (GRU update-gate complement).
    pub fn one_minus(&mut self, a: Var) -> Var {
        let neg = self.scale(a, -1.0);
        self.add_scalar(neg, 1.0)
    }

    /// ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = pooled_map(&mut self.free, &self.nodes[a.0].value, |x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = pooled_map(&mut self.free, &self.nodes[a.0].value, f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = pooled_map(&mut self.free, &self.nodes[a.0].value, sigmoid_scalar);
        self.push(v, Op::Sigmoid(a))
    }

    /// Elementwise `ln`; caller guarantees positivity.
    pub fn log(&mut self, a: Var) -> Var {
        let v = pooled_map(&mut self.free, &self.nodes[a.0].value, f32::ln);
        self.push(v, Op::Log(a))
    }

    /// Gather rows `idx` from `a`.
    pub fn gather(&mut self, a: Var, idx: &[usize]) -> Var {
        let mut buf = take_buf(&mut self.free);
        let av = &self.nodes[a.0].value;
        let cols = av.cols();
        for &r in idx {
            assert!(r < av.rows(), "gather index {r} out of range");
            buf.extend_from_slice(av.row_slice(r));
        }
        let v = Tensor::from_vec(idx.len(), cols, buf);
        self.push(v, Op::Gather(a, idx.to_vec()))
    }

    /// Mean over rows: `[n×d] → [1×d]`.
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let mut v = pooled_full(&mut self.free, 1, self.nodes[a.0].value.cols(), 0.0);
        let av = &self.nodes[a.0].value;
        let n = av.rows().max(1);
        for r in 0..av.rows() {
            for (o, &x) in v.data_mut().iter_mut().zip(av.row_slice(r).iter()) {
                *o += x;
            }
        }
        v.scale_assign(1.0 / n as f32);
        self.push(v, Op::MeanRows(a))
    }

    /// Sum over rows: `[n×d] → [1×d]`.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let mut v = pooled_full(&mut self.free, 1, self.nodes[a.0].value.cols(), 0.0);
        let av = &self.nodes[a.0].value;
        for r in 0..av.rows() {
            for (o, &x) in v.data_mut().iter_mut().zip(av.row_slice(r).iter()) {
                *o += x;
            }
        }
        self.push(v, Op::SumRows(a))
    }

    /// Per-segment mean over rows: `[n×d] → [k×d]` with `segments[i] < k`
    /// giving row `i`'s destination. Empty segments yield zero rows.
    pub fn segment_mean(&mut self, a: Var, segments: &[usize], k: usize) -> Var {
        let d = self.nodes[a.0].value.cols();
        let mut v = pooled_full(&mut self.free, k, d, 0.0);
        let av = &self.nodes[a.0].value;
        assert_eq!(av.rows(), segments.len(), "segment_mean length mismatch");
        let mut counts = vec![0usize; k];
        for (r, &s) in segments.iter().enumerate() {
            assert!(s < k, "segment id {s} out of range");
            counts[s] += 1;
            for (o, &x) in v.row_slice_mut(s).iter_mut().zip(av.row_slice(r)) {
                *o += x;
            }
        }
        for (s, &c) in counts.iter().enumerate() {
            if c > 1 {
                let inv = 1.0 / c as f32;
                for x in v.row_slice_mut(s) {
                    *x *= inv;
                }
            }
        }
        self.push(v, Op::SegmentMean(a, segments.to_vec(), k))
    }

    /// Sum of all elements: `→ [1×1]`.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let s = self.nodes[a.0].value.sum();
        let v = pooled_full(&mut self.free, 1, 1, s);
        self.push(v, Op::SumAll(a))
    }

    /// Mean of all elements: `→ [1×1]`.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let t = &self.nodes[a.0].value;
        let s = t.sum() / t.len().max(1) as f32;
        let v = pooled_full(&mut self.free, 1, 1, s);
        self.push(v, Op::MeanAll(a))
    }

    /// Concatenate along columns: `[n×c1] ++ [n×c2] → [n×(c1+c2)]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let mut buf = take_buf(&mut self.free);
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(av.rows(), bv.rows(), "concat_cols row mismatch");
        let (n, c1, c2) = (av.rows(), av.cols(), bv.cols());
        for r in 0..n {
            buf.extend_from_slice(av.row_slice(r));
            buf.extend_from_slice(bv.row_slice(r));
        }
        let v = Tensor::from_vec(n, c1 + c2, buf);
        self.push(v, Op::ConcatCols(a, b))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = pooled_full(&mut self.free, c, r, 0.0);
        self.nodes[a.0].value.transpose_into(&mut v);
        self.push(v, Op::Transpose(a))
    }

    /// Row-wise softmax.
    pub fn softmax(&mut self, a: Var) -> Var {
        let mut v = pooled_copy(&mut self.free, &self.nodes[a.0].value);
        for r in 0..v.rows() {
            softmax_row(v.row_slice_mut(r));
        }
        self.push(v, Op::Softmax(a))
    }

    /// Mean cross-entropy of `targets` under softmax of `logits` (stable
    /// log-sum-exp formulation). Returns a scalar node.
    pub fn cross_entropy(&mut self, logits: Var, targets: &[usize]) -> Var {
        let lv = &self.nodes[logits.0].value;
        assert_eq!(lv.rows(), targets.len(), "cross_entropy batch mismatch");
        let mut loss = 0.0f64;
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < lv.cols(), "target class out of range");
            let row = lv.row_slice(r);
            loss += (log_sum_exp(row) - row[t]) as f64;
        }
        let s = (loss / targets.len().max(1) as f64) as f32;
        let v = pooled_full(&mut self.free, 1, 1, s);
        self.push(v, Op::CrossEntropy(logits, targets.to_vec()))
    }

    /// Mean binary cross-entropy with logits over an `[n×1]` column.
    pub fn bce_with_logits(&mut self, logits: Var, targets: &[f32]) -> Var {
        let lv = &self.nodes[logits.0].value;
        assert_eq!(lv.cols(), 1, "bce expects a column of logits");
        assert_eq!(lv.rows(), targets.len(), "bce batch mismatch");
        let mut loss = 0.0f64;
        for (r, &t) in targets.iter().enumerate() {
            let x = lv.get(r, 0);
            // max(x,0) - x*t + ln(1 + e^{-|x|})  (numerically stable)
            loss += (x.max(0.0) - x * t + (-x.abs()).exp().ln_1p()) as f64;
        }
        let s = (loss / targets.len().max(1) as f64) as f32;
        let v = pooled_full(&mut self.free, 1, 1, s);
        self.push(v, Op::BceWithLogits(logits, targets.to_vec()))
    }

    /// BPR loss `−mean log σ(x)` over an `[n×1]` column of positive-minus-
    /// negative score differences.
    pub fn bpr_loss(&mut self, diffs: Var) -> Var {
        let dv = &self.nodes[diffs.0].value;
        assert_eq!(dv.cols(), 1, "bpr expects a column of score diffs");
        let mut loss = 0.0f64;
        for r in 0..dv.rows() {
            let x = dv.get(r, 0);
            // -ln σ(x) = ln(1 + e^{-x}) = max(-x, 0) + ln(1 + e^{-|x|})
            loss += ((-x).max(0.0) + (-x.abs()).exp().ln_1p()) as f64;
        }
        let s = (loss / dv.rows().max(1) as f64) as f32;
        let v = pooled_full(&mut self.free, 1, 1, s);
        self.push(v, Op::BprLoss(diffs))
    }

    // -------------------------------------------------------------- backward

    /// Run reverse-mode differentiation from the scalar node `loss`.
    ///
    /// Gradients are carved out of the tape's buffer pool and accumulated
    /// in place; no node value or op is cloned. The reverse walk splits the
    /// node array at the current index — every parent lives strictly below
    /// its child, so the child's gradient and op can be read while the
    /// parents' gradient slots are written.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward root must be a scalar"
        );
        let Tape { nodes, free } = self;
        for n in nodes.iter_mut() {
            if let Some(g) = n.grad.take() {
                free.push(g.into_data());
            }
        }
        nodes[loss.0].grad = Some(pooled_full(free, 1, 1, 1.0));
        for i in (0..=loss.0).rev() {
            // Parents of node `i` always have smaller indices, so the slice
            // below `i` holds every gradient slot this op writes.
            let (parents, rest) = nodes.split_at_mut(i);
            let node = &rest[0];
            let Some(g) = node.grad.as_ref() else {
                continue;
            };
            match &node.op {
                Op::Input | Op::Param(_) => {}
                Op::Matmul(a, b) => {
                    let (av, bv) = (&parents[a.0].value, &parents[b.0].value);
                    let mut da = pooled_full(free, g.rows(), av.cols(), 0.0);
                    let mut scratch = take_buf(free);
                    g.matmul_nt_into(bv, &mut da, &mut scratch);
                    free.push(scratch);
                    let mut db = pooled_full(free, av.cols(), g.cols(), 0.0);
                    av.matmul_tn_into(g, &mut db);
                    accum_grad(&mut parents[a.0].grad, da, free);
                    accum_grad(&mut parents[b.0].grad, db, free);
                }
                Op::MatmulNT(a, b) => {
                    let (av, bv) = (&parents[a.0].value, &parents[b.0].value);
                    let mut da = pooled_full(free, g.rows(), bv.cols(), 0.0);
                    g.matmul_into(bv, &mut da);
                    let mut db = pooled_full(free, g.cols(), av.cols(), 0.0);
                    g.matmul_tn_into(av, &mut db);
                    accum_grad(&mut parents[a.0].grad, da, free);
                    accum_grad(&mut parents[b.0].grad, db, free);
                }
                Op::Add(a, b) => {
                    let ga = pooled_copy(free, g);
                    accum_grad(&mut parents[a.0].grad, ga, free);
                    let gb = pooled_copy(free, g);
                    accum_grad(&mut parents[b.0].grad, gb, free);
                }
                Op::Sub(a, b) => {
                    let ga = pooled_copy(free, g);
                    let ng = pooled_map(free, g, |x| -x);
                    accum_grad(&mut parents[a.0].grad, ga, free);
                    accum_grad(&mut parents[b.0].grad, ng, free);
                }
                Op::Mul(a, b) => {
                    let da = pooled_zip(free, g, &parents[b.0].value, |x, y| x * y);
                    let db = pooled_zip(free, g, &parents[a.0].value, |x, y| x * y);
                    accum_grad(&mut parents[a.0].grad, da, free);
                    accum_grad(&mut parents[b.0].grad, db, free);
                }
                Op::AddRow(a, row) => {
                    let mut drow = pooled_full(free, 1, g.cols(), 0.0);
                    for r in 0..g.rows() {
                        for (o, &x) in drow.data_mut().iter_mut().zip(g.row_slice(r)) {
                            *o += x;
                        }
                    }
                    let ga = pooled_copy(free, g);
                    accum_grad(&mut parents[a.0].grad, ga, free);
                    accum_grad(&mut parents[row.0].grad, drow, free);
                }
                Op::MulRow(a, row) => {
                    let av = &parents[a.0].value;
                    let rv = &parents[row.0].value;
                    let mut da = pooled_copy(free, g);
                    for r in 0..da.rows() {
                        for (x, &y) in da.row_slice_mut(r).iter_mut().zip(rv.data()) {
                            *x *= y;
                        }
                    }
                    let mut drow = pooled_full(free, 1, g.cols(), 0.0);
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            drow.data_mut()[c] += g.get(r, c) * av.get(r, c);
                        }
                    }
                    accum_grad(&mut parents[a.0].grad, da, free);
                    accum_grad(&mut parents[row.0].grad, drow, free);
                }
                Op::Scale(a, s) => {
                    let mut da = pooled_copy(free, g);
                    da.scale_assign(*s);
                    accum_grad(&mut parents[a.0].grad, da, free);
                }
                Op::AddScalar(a) => {
                    let da = pooled_copy(free, g);
                    accum_grad(&mut parents[a.0].grad, da, free);
                }
                Op::Relu(a) => {
                    let da =
                        pooled_zip(
                            free,
                            g,
                            &parents[a.0].value,
                            |gx, x| {
                                if x > 0.0 {
                                    gx
                                } else {
                                    0.0
                                }
                            },
                        );
                    accum_grad(&mut parents[a.0].grad, da, free);
                }
                Op::Tanh(a) => {
                    let da = pooled_zip(free, g, &node.value, |gx, y| gx * (1.0 - y * y));
                    accum_grad(&mut parents[a.0].grad, da, free);
                }
                Op::Sigmoid(a) => {
                    let da = pooled_zip(free, g, &node.value, |gx, y| gx * y * (1.0 - y));
                    accum_grad(&mut parents[a.0].grad, da, free);
                }
                Op::Log(a) => {
                    let da = pooled_zip(free, g, &parents[a.0].value, |gx, x| gx / x);
                    accum_grad(&mut parents[a.0].grad, da, free);
                }
                Op::Gather(a, idx) => {
                    let (rows, cols) = parents[a.0].value.shape();
                    let mut da = pooled_full(free, rows, cols, 0.0);
                    for (i_out, &r) in idx.iter().enumerate() {
                        for (o, &x) in da.row_slice_mut(r).iter_mut().zip(g.row_slice(i_out)) {
                            *o += x;
                        }
                    }
                    accum_grad(&mut parents[a.0].grad, da, free);
                }
                Op::MeanRows(a) => {
                    let (n, c) = parents[a.0].value.shape();
                    let mut da = pooled_full(free, n, c, 0.0);
                    let inv = 1.0 / n.max(1) as f32;
                    for r in 0..n {
                        for (o, &x) in da.row_slice_mut(r).iter_mut().zip(g.data()) {
                            *o = x * inv;
                        }
                    }
                    accum_grad(&mut parents[a.0].grad, da, free);
                }
                Op::SumRows(a) => {
                    let (n, c) = parents[a.0].value.shape();
                    let mut da = pooled_full(free, n, c, 0.0);
                    for r in 0..n {
                        da.row_slice_mut(r).copy_from_slice(g.data());
                    }
                    accum_grad(&mut parents[a.0].grad, da, free);
                }
                Op::SegmentMean(a, segments, k) => {
                    let (n, d) = parents[a.0].value.shape();
                    let mut counts = vec![0usize; *k];
                    for &s in segments {
                        counts[s] += 1;
                    }
                    let mut da = pooled_full(free, n, d, 0.0);
                    for (r, &s) in segments.iter().enumerate() {
                        let inv = 1.0 / counts[s] as f32;
                        for (o, &x) in da.row_slice_mut(r).iter_mut().zip(g.row_slice(s)) {
                            *o = x * inv;
                        }
                    }
                    accum_grad(&mut parents[a.0].grad, da, free);
                }
                Op::SumAll(a) => {
                    let (n, c) = parents[a.0].value.shape();
                    let da = pooled_full(free, n, c, g.item());
                    accum_grad(&mut parents[a.0].grad, da, free);
                }
                Op::MeanAll(a) => {
                    let (n, c) = parents[a.0].value.shape();
                    let v = g.item() / (n * c).max(1) as f32;
                    let da = pooled_full(free, n, c, v);
                    accum_grad(&mut parents[a.0].grad, da, free);
                }
                Op::ConcatCols(a, b) => {
                    let c1 = parents[a.0].value.cols();
                    let c2 = parents[b.0].value.cols();
                    let n = g.rows();
                    let mut da = pooled_full(free, n, c1, 0.0);
                    let mut db = pooled_full(free, n, c2, 0.0);
                    for r in 0..n {
                        da.row_slice_mut(r).copy_from_slice(&g.row_slice(r)[..c1]);
                        db.row_slice_mut(r).copy_from_slice(&g.row_slice(r)[c1..]);
                    }
                    accum_grad(&mut parents[a.0].grad, da, free);
                    accum_grad(&mut parents[b.0].grad, db, free);
                }
                Op::Transpose(a) => {
                    let mut da = pooled_full(free, g.cols(), g.rows(), 0.0);
                    g.transpose_into(&mut da);
                    accum_grad(&mut parents[a.0].grad, da, free);
                }
                Op::Softmax(a) => {
                    let y = &node.value;
                    let mut da = pooled_full(free, y.rows(), y.cols(), 0.0);
                    for r in 0..y.rows() {
                        let yr = y.row_slice(r);
                        let gr = g.row_slice(r);
                        let dot: f32 = yr.iter().zip(gr.iter()).map(|(&a, &b)| a * b).sum();
                        for c in 0..y.cols() {
                            da.set(r, c, yr[c] * (gr[c] - dot));
                        }
                    }
                    accum_grad(&mut parents[a.0].grad, da, free);
                }
                Op::CrossEntropy(logits, targets) => {
                    let lv = &parents[logits.0].value;
                    let gscale = g.item() / targets.len().max(1) as f32;
                    let mut da = pooled_full(free, lv.rows(), lv.cols(), 0.0);
                    let mut row = take_buf(free);
                    for (r, &t) in targets.iter().enumerate() {
                        row.clear();
                        row.extend_from_slice(lv.row_slice(r));
                        softmax_row(&mut row);
                        for (c, &p) in row.iter().enumerate() {
                            let indicator = if c == t { 1.0 } else { 0.0 };
                            da.set(r, c, gscale * (p - indicator));
                        }
                    }
                    free.push(row);
                    accum_grad(&mut parents[logits.0].grad, da, free);
                }
                Op::BceWithLogits(logits, targets) => {
                    let lv = &parents[logits.0].value;
                    let gscale = g.item() / targets.len().max(1) as f32;
                    let mut da = pooled_full(free, lv.rows(), 1, 0.0);
                    for (r, &t) in targets.iter().enumerate() {
                        let p = sigmoid_scalar(lv.get(r, 0));
                        da.set(r, 0, gscale * (p - t));
                    }
                    accum_grad(&mut parents[logits.0].grad, da, free);
                }
                Op::BprLoss(diffs) => {
                    let dv = &parents[diffs.0].value;
                    let gscale = g.item() / dv.rows().max(1) as f32;
                    let mut da = pooled_full(free, dv.rows(), 1, 0.0);
                    for r in 0..dv.rows() {
                        let s = sigmoid_scalar(dv.get(r, 0));
                        da.set(r, 0, gscale * (s - 1.0));
                    }
                    accum_grad(&mut parents[diffs.0].grad, da, free);
                }
            }
        }
    }

    /// Add the gradients of all parameter leaves into the store's gradient
    /// buffers (call after [`Tape::backward`]).
    pub fn accumulate_param_grads(&self, store: &mut ParamStore) {
        for node in &self.nodes {
            if let (Op::Param(id), Some(g)) = (&node.op, &node.grad) {
                store.grad_mut(*id).add_assign(g);
            }
        }
    }
}

#[inline]
fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

fn softmax_row(row: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in row.iter_mut() {
        *x /= sum;
    }
}

fn log_sum_exp(row: &[f32]) -> f32 {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let sum: f32 = row.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;

    /// Every FD_STRIDE-th parameter element gets a central-difference probe.
    /// Natively that is every element; under Miri (where each probe is two
    /// fully interpreted forward passes) a strided subset keeps the
    /// gradchecks to seconds while still touching every parameter tensor.
    const FD_STRIDE: usize = if cfg!(miri) { 5 } else { 1 };

    /// Central-difference derivative of `f` w.r.t. element `i` of a parameter.
    fn finite_diff_at(
        store: &mut ParamStore,
        id: ParamId,
        i: usize,
        f: &dyn Fn(&ParamStore) -> f32,
    ) -> f32 {
        let eps = 1e-3f32;
        let orig = store.value(id).data()[i];
        store.value_mut(id).data_mut()[i] = orig + eps;
        let plus = f(store);
        store.value_mut(id).data_mut()[i] = orig - eps;
        let minus = f(store);
        store.value_mut(id).data_mut()[i] = orig;
        (plus - minus) / (2.0 * eps)
    }

    /// Check a whole-model gradient: builds the loss via `build`, compares
    /// analytic param grads against central differences.
    fn gradcheck(store: &mut ParamStore, build: &dyn Fn(&mut Tape, &ParamStore) -> Var) {
        let mut tape = Tape::new();
        let loss = build(&mut tape, store);
        tape.backward(loss);
        store.zero_grads();
        tape.accumulate_param_grads(store);
        let tol = 2e-2f32;
        for id in store.ids() {
            let analytic = store.grad(id).clone();
            let (r, c) = store.value(id).shape();
            for i in (0..r * c).step_by(FD_STRIDE) {
                let numeric = finite_diff_at(store, id, i, &|s| {
                    let mut t = Tape::new();
                    let l = build(&mut t, s);
                    t.value(l).item()
                });
                let x = analytic.data()[i];
                assert!(
                    (x - numeric).abs() < tol,
                    "gradient mismatch at element {i}: analytic={x} numeric={numeric}"
                );
            }
        }
    }

    #[test]
    fn gradcheck_affine_relu_ce() {
        let mut store = ParamStore::new();
        let w = store.add(
            "w",
            Tensor::from_vec(3, 4, (0..12).map(|i| 0.1 * i as f32 - 0.5).collect()),
        );
        let b = store.add("b", Tensor::row(vec![0.1, -0.2, 0.3, 0.0]));
        gradcheck(&mut store, &move |tape, s| {
            let x = tape.input(Tensor::from_vec(
                2,
                3,
                vec![1.0, -0.5, 0.25, 0.8, 0.2, -1.0],
            ));
            let wv = tape.param(s, w);
            let bv = tape.param(s, b);
            let h = tape.matmul(x, wv);
            let h = tape.add_row(h, bv);
            let h = tape.relu(h);
            tape.cross_entropy(h, &[2, 0])
        });
    }

    #[test]
    fn gradcheck_gather_mean_bce() {
        let mut store = ParamStore::new();
        let e = store.add(
            "emb",
            Tensor::from_vec(5, 3, (0..15).map(|i| (i as f32 * 0.37).sin()).collect()),
        );
        let w = store.add("w", Tensor::from_vec(3, 1, vec![0.3, -0.4, 0.2]));
        gradcheck(&mut store, &move |tape, s| {
            let ev = tape.param(s, e);
            let wv = tape.param(s, w);
            let g = tape.gather(ev, &[0, 3, 3, 1]);
            let m = tape.mean_rows(g);
            let logit = tape.matmul(m, wv);
            tape.bce_with_logits(logit, &[1.0])
        });
    }

    #[test]
    fn gradcheck_gru_like_gates() {
        let mut store = ParamStore::new();
        let wz = store.add("wz", Tensor::from_vec(2, 2, vec![0.2, -0.1, 0.4, 0.3]));
        let uz = store.add("uz", Tensor::from_vec(2, 2, vec![0.1, 0.2, -0.3, 0.05]));
        gradcheck(&mut store, &move |tape, s| {
            let x = tape.input(Tensor::from_vec(1, 2, vec![0.5, -0.7]));
            let h0 = tape.input(Tensor::from_vec(1, 2, vec![0.1, 0.9]));
            let wzv = tape.param(s, wz);
            let uzv = tape.param(s, uz);
            let xz = tape.matmul(x, wzv);
            let hz = tape.matmul(h0, uzv);
            let zsum = tape.add(xz, hz);
            let z = tape.sigmoid(zsum);
            let omz = tape.one_minus(z);
            let cand = tape.tanh(xz);
            let a = tape.mul(z, h0);
            let b = tape.mul(omz, cand);
            let h1 = tape.add(a, b);
            let sq = tape.mul(h1, h1);
            tape.mean_all(sq)
        });
    }

    #[test]
    fn gradcheck_softmax_attention() {
        let mut store = ParamStore::new();
        let q = store.add("q", Tensor::from_vec(1, 3, vec![0.3, -0.2, 0.5]));
        let keys = store.add(
            "k",
            Tensor::from_vec(
                4,
                3,
                (0..12).map(|i| ((i * 7) % 5) as f32 * 0.2 - 0.4).collect(),
            ),
        );
        gradcheck(&mut store, &move |tape, s| {
            let qv = tape.param(s, q);
            let kv = tape.param(s, keys);
            let scores = tape.matmul_nt(qv, kv); // [1x4]
            let w = tape.softmax(scores);
            let ctx = tape.matmul(w, kv); // [1x3]
            let sq = tape.mul(ctx, ctx);
            tape.sum_all(sq)
        });
    }

    #[test]
    fn gradcheck_bpr_and_concat() {
        let mut store = ParamStore::new();
        let e = store.add(
            "emb",
            Tensor::from_vec(4, 2, vec![0.3, 0.1, -0.2, 0.5, 0.7, -0.6, 0.05, 0.2]),
        );
        gradcheck(&mut store, &move |tape, s| {
            let ev = tape.param(s, e);
            let pos = tape.gather(ev, &[0, 1]);
            let neg = tape.gather(ev, &[2, 3]);
            let cat = tape.concat_cols(pos, neg); // exercise concat grad
            let half = tape.scale(cat, 0.5);
            let both = tape.mul(half, half);
            let sums = tape.sum_rows(both);
            let t = tape.transpose(sums); // exercise transpose grad
            let diff_in = tape.sub(pos, neg);
            let col = tape.sum_rows(diff_in);
            let colt = tape.transpose(col);
            let bpr = tape.bpr_loss(colt);
            let reg = tape.mean_all(t);
            tape.add(bpr, reg)
        });
    }

    #[test]
    fn gradcheck_segment_mean() {
        let mut store = ParamStore::new();
        let e = store.add(
            "emb",
            Tensor::from_vec(6, 2, (0..12).map(|i| (i as f32 * 0.31).cos()).collect()),
        );
        gradcheck(&mut store, &move |tape, s| {
            let ev = tape.param(s, e);
            let g = tape.gather(ev, &[0, 1, 2, 3, 4, 4]);
            // segments: {0,1} -> 0, {2} -> 1, segment 2 empty, {3,4,4} -> 3
            let m = tape.segment_mean(g, &[0, 0, 1, 3, 3, 3], 4);
            let sq = tape.mul(m, m);
            tape.mean_all(sq)
        });
    }

    #[test]
    fn segment_mean_values() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let m = tape.segment_mean(x, &[1, 1, 0], 3);
        assert_eq!(tape.value(m).row_slice(0), &[5.0, 6.0]);
        assert_eq!(tape.value(m).row_slice(1), &[2.0, 3.0]);
        assert_eq!(tape.value(m).row_slice(2), &[0.0, 0.0]); // empty segment
    }

    #[test]
    fn gradcheck_log_mulrow() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::row(vec![0.5, 1.5, 2.0]));
        gradcheck(&mut store, &move |tape, s| {
            let x = tape.input(Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 0.5, 1.0, 4.0]));
            let wv = tape.param(s, w);
            let scaled = tape.mul_row(x, wv);
            let pos = tape.mul(scaled, scaled);
            let shifted = tape.add_scalar(pos, 1.0);
            let l = tape.log(shifted);
            tape.mean_all(l)
        });
    }

    #[test]
    fn backward_requires_scalar() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::row(vec![1.0, 2.0]));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut t2 = Tape::new();
            std::mem::swap(&mut t2, &mut tape);
            t2.backward(x);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn grad_accumulates_over_reuse() {
        // y = x + x => dy/dx = 2
        let mut store = ParamStore::new();
        let p = store.add("p", Tensor::scalar(3.0));
        let mut tape = Tape::new();
        let x = tape.param(&store, p);
        let y = tape.add(x, x);
        let l = tape.sum_all(y);
        tape.backward(l);
        tape.accumulate_param_grads(&mut store);
        assert_eq!(store.grad(p).item(), 2.0);
    }

    #[test]
    fn cross_entropy_value_matches_manual() {
        let mut tape = Tape::new();
        let logits = tape.input(Tensor::from_vec(1, 2, vec![0.0, 0.0]));
        let l = tape.cross_entropy(logits, &[0]);
        assert!((tape.value(l).item() - (2.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]));
        let s = tape.softmax(x);
        for r in 0..2 {
            let sum: f32 = tape.value(s).row_slice(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    /// One forward/backward through most of the op set, parameterized so a
    /// reused tape can be compared against fresh ones.
    fn mixed_step(tape: &mut Tape, store: &ParamStore, ids: &[ParamId], shift: f32) -> Var {
        let emb = tape.param(store, ids[0]);
        let w = tape.param(store, ids[1]);
        let g = tape.gather(emb, &[0, 2, 2, 1]);
        let m = tape.segment_mean(g, &[0, 0, 1, 1], 2);
        let h = tape.matmul(m, w);
        let h = tape.tanh(h);
        let shifted = tape.add_scalar(h, shift);
        let sm = tape.softmax(shifted);
        let ce = tape.cross_entropy(sm, &[1, 0]);
        let att = tape.matmul_nt(m, m);
        let reg = tape.mean_all(att);
        tape.add(ce, reg)
    }

    /// `reset()` must recycle buffers *and* leave every computed value and
    /// gradient bitwise identical to a fresh tape.
    #[test]
    fn reset_tape_reproduces_fresh_tape_bitwise() {
        let mut store = ParamStore::new();
        let e = store.add(
            "emb",
            Tensor::from_vec(3, 4, (0..12).map(|i| (i as f32 * 0.7).sin()).collect()),
        );
        let w = store.add(
            "w",
            Tensor::from_vec(
                4,
                4,
                (0..16).map(|i| (i as f32 * 0.3).cos() * 0.5).collect(),
            ),
        );
        let ids = [e, w];

        let steps = if cfg!(miri) { 2 } else { 3 };
        let mut reused = Tape::new();
        for step in 0..steps {
            let shift = step as f32 * 0.1;

            let mut fresh = Tape::new();
            let fl = mixed_step(&mut fresh, &store, &ids, shift);
            fresh.backward(fl);
            store.zero_grads();
            fresh.accumulate_param_grads(&mut store);
            let fresh_grads: Vec<Tensor> = ids.iter().map(|&id| store.grad(id).clone()).collect();

            reused.reset();
            let rl = mixed_step(&mut reused, &store, &ids, shift);
            reused.backward(rl);
            store.zero_grads();
            reused.accumulate_param_grads(&mut store);

            assert_eq!(
                fresh.value(fl).data(),
                reused.value(rl).data(),
                "loss diverged on reused tape at step {step}"
            );
            for (&id, fg) in ids.iter().zip(&fresh_grads) {
                assert_eq!(
                    store.grad(id).data(),
                    fg.data(),
                    "grad diverged on reused tape at step {step}"
                );
            }
        }
        assert!(
            reused.pooled_buffers() == 0 || !reused.is_empty(),
            "reused tape should be holding its buffers in nodes"
        );
        reused.reset();
        assert!(
            reused.pooled_buffers() > 0,
            "reset must return buffers to the pool"
        );
    }

    /// After the first step, a reset tape should run the same graph without
    /// growing its pool demand (i.e. it reuses rather than reallocates).
    #[test]
    fn reset_tape_reaches_steady_state_pool() {
        let mut store = ParamStore::new();
        let e = store.add(
            "emb",
            Tensor::from_vec(3, 4, (0..12).map(|i| i as f32 * 0.1).collect()),
        );
        let w = store.add("w", Tensor::from_vec(4, 4, vec![0.25; 16]));
        let ids = [e, w];
        let mut tape = Tape::new();
        let l = mixed_step(&mut tape, &store, &ids, 0.0);
        tape.backward(l);
        tape.reset();
        let after_first = tape.pooled_buffers();
        let iters = if cfg!(miri) { 2 } else { 4 };
        for _ in 0..iters {
            let l = mixed_step(&mut tape, &store, &ids, 0.0);
            tape.backward(l);
            tape.reset();
            assert_eq!(
                tape.pooled_buffers(),
                after_first,
                "pool should neither grow nor shrink across identical steps"
            );
        }
    }
}
