//! Named parameter storage with gradient buffers.
//!
//! A [`ParamStore`] owns every trainable tensor of a model. The training
//! loop is: build a [`crate::Tape`], reference parameters with
//! `tape.param(&store, id)`, compute the loss, `tape.backward(loss)`,
//! `store.zero_grads()` (or accumulate across micro-batches),
//! `tape.accumulate_param_grads(&mut store)`, then step an optimizer from
//! [`crate::opt`].

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Opaque handle to a parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

/// Container of named parameters and their gradients.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
    frozen: Vec<bool>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter; the gradient buffer starts at zero.
    pub fn add(&mut self, name: &str, value: Tensor) -> ParamId {
        let (r, c) = value.shape();
        self.names.push(name.to_string());
        self.values.push(value);
        self.grads.push(Tensor::zeros(r, c));
        self.frozen.push(false);
        ParamId(self.values.len() - 1)
    }

    /// Current value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable value (used by optimizers and tests).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Current gradient.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Mutable gradient buffer.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.grads[id.0]
    }

    /// Parameter name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(|t| t.len()).sum()
    }

    /// All parameter ids.
    pub fn ids(&self) -> Vec<ParamId> {
        (0..self.values.len()).map(ParamId).collect()
    }

    /// Freeze a parameter: optimizers will skip it (used for the
    /// fixed-encoder regimes of the relevance experiments).
    pub fn freeze(&mut self, id: ParamId) {
        self.frozen[id.0] = true;
    }

    /// Unfreeze a parameter.
    pub fn unfreeze(&mut self, id: ParamId) {
        self.frozen[id.0] = false;
    }

    /// Is the parameter frozen?
    pub fn is_frozen(&self, id: ParamId) -> bool {
        self.frozen[id.0]
    }

    /// Reset all gradient buffers to zero.
    pub fn zero_grads(&mut self) {
        for g in self.grads.iter_mut() {
            g.zero_();
        }
    }

    /// Global L2 norm of all gradients (for clipping / diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.grads.iter().map(|g| g.sq_norm()).sum::<f32>().sqrt()
    }

    /// Scale all gradients so their global norm is at most `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for g in self.grads.iter_mut() {
                g.scale_assign(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut s = ParamStore::new();
        let a = s.add("w", Tensor::zeros(2, 3));
        let b = s.add("b", Tensor::zeros(1, 3));
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_scalars(), 9);
        assert_eq!(s.name(a), "w");
        assert_eq!(s.value(b).shape(), (1, 3));
        assert_eq!(s.grad(a).shape(), (2, 3));
    }

    #[test]
    fn zero_grads_resets() {
        let mut s = ParamStore::new();
        let a = s.add("w", Tensor::zeros(1, 2));
        s.grad_mut(a).data_mut()[0] = 5.0;
        s.zero_grads();
        assert_eq!(s.grad(a).data(), &[0.0, 0.0]);
    }

    #[test]
    fn clip_grad_norm_scales() {
        let mut s = ParamStore::new();
        let a = s.add("w", Tensor::zeros(1, 2));
        s.grad_mut(a).data_mut().copy_from_slice(&[3.0, 4.0]);
        assert!((s.grad_norm() - 5.0).abs() < 1e-6);
        s.clip_grad_norm(1.0);
        assert!((s.grad_norm() - 1.0).abs() < 1e-5);
        // clipping below the threshold is a no-op
        s.clip_grad_norm(10.0);
        assert!((s.grad_norm() - 1.0).abs() < 1e-5);
    }
}

impl ParamStore {
    /// Serialize all parameter values (not gradients) to a compact JSON
    /// checkpoint string.
    pub fn to_checkpoint(&self) -> String {
        #[derive(Serialize)]
        struct Ckpt<'a> {
            names: &'a [String],
            values: &'a [Tensor],
        }
        serde_json::to_string(&Ckpt {
            names: &self.names,
            values: &self.values,
        })
        .expect("checkpoint serialisation cannot fail")
    }

    /// Restore parameter values from a checkpoint produced by
    /// [`ParamStore::to_checkpoint`]. Names and shapes must match the
    /// store's current registration order; returns an error string
    /// otherwise (so callers can surface a useful message).
    pub fn load_checkpoint(&mut self, json: &str) -> Result<(), String> {
        #[derive(Deserialize)]
        struct Ckpt {
            names: Vec<String>,
            values: Vec<Tensor>,
        }
        let ckpt: Ckpt = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if ckpt.names != self.names {
            return Err(format!(
                "checkpoint parameter names mismatch: expected {:?}, got {:?}",
                self.names, ckpt.names
            ));
        }
        for (slot, value) in self.values.iter_mut().zip(ckpt.values) {
            if slot.shape() != value.shape() {
                return Err(format!(
                    "checkpoint shape mismatch: {:?} vs {:?}",
                    slot.shape(),
                    value.shape()
                ));
            }
            *slot = value;
        }
        Ok(())
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;

    #[test]
    fn checkpoint_roundtrip_restores_values() {
        let mut a = ParamStore::new();
        let w = a.add("w", Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = a.add("b", Tensor::row(vec![0.5, -0.5]));
        let ckpt = a.to_checkpoint();
        // fresh store with same registration order, different values
        let mut fresh = ParamStore::new();
        let w2 = fresh.add("w", Tensor::zeros(2, 2));
        let b2 = fresh.add("b", Tensor::zeros(1, 2));
        fresh.load_checkpoint(&ckpt).unwrap();
        assert_eq!(fresh.value(w2), a.value(w));
        assert_eq!(fresh.value(b2), a.value(b));
    }

    #[test]
    fn checkpoint_rejects_wrong_names() {
        let mut a = ParamStore::new();
        a.add("w", Tensor::zeros(1, 1));
        let ckpt = a.to_checkpoint();
        let mut other = ParamStore::new();
        other.add("different", Tensor::zeros(1, 1));
        assert!(other.load_checkpoint(&ckpt).is_err());
    }

    #[test]
    fn checkpoint_rejects_wrong_shapes() {
        let mut a = ParamStore::new();
        a.add("w", Tensor::zeros(2, 3));
        let ckpt = a.to_checkpoint();
        let mut other = ParamStore::new();
        other.add("w", Tensor::zeros(3, 2));
        assert!(other.load_checkpoint(&ckpt).is_err());
    }

    #[test]
    fn checkpoint_rejects_garbage() {
        let mut a = ParamStore::new();
        a.add("w", Tensor::zeros(1, 1));
        assert!(a.load_checkpoint("not json").is_err());
    }
}
