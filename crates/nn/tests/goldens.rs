//! Pinned kernel-output goldens.
//!
//! Each golden is a 64-bit FNV-1a digest over the exact output bits of a
//! matmul on fixed pseudo-random inputs. The constants are pinned **per
//! feature configuration**: the default build must reproduce the no-FMA
//! chain bit-for-bit forever (byte-compatibility with every artifact
//! trained before the `fast-math` tier existed), and the `fast-math` build
//! must reproduce its fixed-shape reduction tree bit-for-bit on every ISA
//! dispatch path and thread count. A changed digest means the numeric
//! contract broke — not a tolerance issue, a wrong-bits issue.
//!
//! If a golden legitimately needs re-pinning (it shouldn't, short of a
//! deliberate contract revision documented in DESIGN.md), run with
//! `--nocapture`: each assert prints the observed digest.

use cosmo_nn::Tensor;

/// Deterministic pseudo-random tensor (splitmix64-ish), same construction
/// as the in-crate kernel tests.
fn pseudo(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut s = seed;
    let data = (0..rows * cols)
        .map(|_| {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            ((z >> 40) as f32 / (1 << 24) as f32) * 4.0 - 2.0
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// FNV-1a over the little-endian output bits.
fn digest(t: &Tensor) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &x in t.data() {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Expected digests for (matmul 48·96·64, matmul_tn 96·48·64,
/// matmul_nt 48·96·64, matmul 130·130·130) in the active configuration.
/// The k = 96 and k = 130 cases straddle the fast-math `FM_KBLOCK = 64`
/// boundary, so the reduction-tree fold itself is pinned, not just the
/// within-block chain.
#[cfg(not(feature = "fast-math"))]
const GOLDENS: [u64; 4] = [
    0xdb2717bd44b8960b,
    0x09d0c11cdc815e22,
    0x731a300c6454ee94,
    0x179f887422634fc8,
];
#[cfg(feature = "fast-math")]
const GOLDENS: [u64; 4] = [
    0x3c565028a1471a96,
    0x835d2c5491d54947,
    0x2357924b174d1984,
    0x3916624c255f4945,
];

#[test]
fn matmul_kernel_bits_match_pinned_goldens() {
    let a = pseudo(48, 96, 0x517E);
    let b = pseudo(96, 64, 0x9A11);
    let ta = pseudo(96, 48, 0x7E57);
    let nb = pseudo(64, 96, 0xD1CE);
    let big_a = pseudo(130, 130, 0xF00D);
    let big_b = pseudo(130, 130, 0xBEEF);

    let got = [
        digest(&a.matmul(&b)),
        digest(&ta.matmul_tn(&b)),
        digest(&a.matmul_nt(&nb)),
        digest(&big_a.matmul(&big_b)),
    ];
    let names = ["matmul", "matmul_tn", "matmul_nt", "matmul_130"];
    for (&have, name) in got.iter().zip(names) {
        eprintln!("golden {name}: observed {have:#018x}");
    }
    for ((&want, &have), name) in GOLDENS.iter().zip(got.iter()).zip(names) {
        assert_eq!(want, have, "{name} kernel bits drifted from pinned golden");
    }
}

/// The unfused tier is configuration-independent by design: its digests
/// must equal the default build's goldens even when `fast-math` is on.
#[test]
fn unfused_tier_matches_default_goldens_in_every_config() {
    const UNFUSED: [u64; 2] = [0xdb2717bd44b8960b, 0x09d0c11cdc815e22];
    let a = pseudo(48, 96, 0x517E);
    let b = pseudo(96, 64, 0x9A11);
    let ta = pseudo(96, 48, 0x7E57);
    let got = [
        digest(&a.matmul_unfused(&b)),
        digest(&ta.matmul_tn_unfused(&b)),
    ];
    for (&want, &have) in UNFUSED.iter().zip(got.iter()) {
        eprintln!("unfused golden: observed {have:#018x}");
        assert_eq!(want, have, "unfused tier bits drifted");
    }
}
