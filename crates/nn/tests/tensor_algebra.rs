//! Property tests for the tensor kernels: algebraic identities that the
//! hand-rolled matmul variants must satisfy.
//!
//! Skipped under Miri: proptest's RNG-driven case generation is far too
//! slow in the interpreter, and the same kernels are Miri-covered by the
//! unit tests in `src/tensor.rs`.
#![cfg(not(miri))]

use cosmo_nn::Tensor;
use proptest::prelude::*;

fn tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

fn assert_close(a: &Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.data().iter().zip(b.data().iter()) {
        assert!(
            (x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs())),
            "{x} vs {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_nt_equals_explicit_transpose(a in tensor(3, 4), b in tensor(5, 4)) {
        assert_close(&a.matmul_nt(&b), &a.matmul(&b.transpose()));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose(a in tensor(4, 3), b in tensor(4, 5)) {
        assert_close(&a.matmul_tn(&b), &a.transpose().matmul(&b));
    }

    #[test]
    fn transpose_of_product(a in tensor(3, 4), b in tensor(4, 2)) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        assert_close(&lhs, &rhs);
    }

    #[test]
    fn matmul_distributes_over_addition(a in tensor(3, 4), b in tensor(4, 2), c in tensor(4, 2)) {
        // A·(B+C) = A·B + A·C
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        assert_close(&lhs, &rhs);
    }

    #[test]
    fn hadamard_commutes(a in tensor(4, 4), b in tensor(4, 4)) {
        assert_close(&a.hadamard(&b), &b.hadamard(&a));
    }

    #[test]
    fn scale_distributes(a in tensor(3, 3), s in -3.0f32..3.0) {
        let mut lhs = a.clone();
        lhs.scale_assign(s);
        let rhs = a.map(|x| s * x);
        assert_close(&lhs, &rhs);
    }

    #[test]
    fn vstack_preserves_rows(a in tensor(2, 3), b in tensor(4, 3)) {
        let s = Tensor::vstack(&[&a, &b]);
        prop_assert_eq!(s.shape(), (6, 3));
        prop_assert_eq!(s.row_slice(0), a.row_slice(0));
        prop_assert_eq!(s.row_slice(2), b.row_slice(0));
        prop_assert_eq!(s.row_slice(5), b.row_slice(3));
    }

    #[test]
    fn sq_norm_nonnegative_and_zero_iff_zero(a in tensor(3, 3)) {
        prop_assert!(a.sq_norm() >= 0.0);
        let mut z = a.clone();
        z.zero_();
        prop_assert_eq!(z.sq_norm(), 0.0);
    }
}
