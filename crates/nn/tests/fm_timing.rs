//! Quick wall-clock probe for the fast-math kernel tier — ignored by
//! default; run with `cargo test -p cosmo-nn --release --features
//! fast-math -- --ignored fm_timing --nocapture` while tuning tiles.

#![cfg(feature = "fast-math")]

use cosmo_nn::Tensor;

fn pseudo(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut state = seed;
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

fn best_gflops(reps: usize, flops: f64, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    flops / best / 1e9
}

#[test]
#[ignore = "wall-clock tuning probe, not a correctness test"]
fn fm_timing_256() {
    let a = pseudo(256, 256, 0x1234);
    let b = pseudo(256, 256, 0x5678);
    let flops = 2.0 * 256f64 * 256.0 * 256.0;
    let fused = best_gflops(60, flops, || {
        std::hint::black_box(a.matmul(std::hint::black_box(&b)));
    });
    let unfused = best_gflops(60, flops, || {
        std::hint::black_box(a.matmul_unfused(std::hint::black_box(&b)));
    });
    println!(
        "256^3: fused {fused:.2} GF/s, unfused {unfused:.2} GF/s, ratio {:.2}x",
        fused / unfused
    );
}
