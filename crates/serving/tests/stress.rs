//! Concurrency stress tests and histogram property tests for the sharded
//! serving hot path.

use cosmo_kg::{KnowledgeGraph, Relation};
use cosmo_lm::{CosmoLm, StudentConfig};
use cosmo_serving::{
    bucket_index, AdmissionPolicy, LatencyRecorder, ServingConfig, ServingError, ServingSystem,
};
use proptest::prelude::*;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn parts() -> (Arc<KnowledgeGraph>, Arc<CosmoLm>) {
    let lm = Arc::new(CosmoLm::new(
        StudentConfig::default(),
        vec![
            ("sleeping outdoors".into(), Some(Relation::UsedForFunc)),
            ("keeping warm".into(), Some(Relation::CapableOf)),
        ],
    ));
    (Arc::new(KnowledgeGraph::new()), lm)
}

fn build(cfg: ServingConfig, preload: &[&str]) -> ServingSystem {
    let (kg, lm) = parts();
    ServingSystem::builder()
        .kg(kg)
        .lm(lm)
        .preload(preload.iter().copied())
        .config(cfg)
        .build()
        .unwrap()
}

/// Race request threads against a batch thread and a daily-refresh
/// thread; afterwards every request must be accounted for exactly once:
/// l1_hits + l2_hits + misses == total requests issued since the last
/// metrics reset.
#[test]
fn stress_counters_reconcile_under_races() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 2_000;
    let sys = build(
        ServingConfig {
            workers: 2,
            shards: 8,
            ..ServingConfig::default()
        },
        &["hot 0", "hot 1", "hot 2"],
    );
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let requesters: Vec<_> = (0..THREADS)
            .map(|t| {
                let sys = &sys;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        match i % 4 {
                            0 => drop(sys.handle_request(&format!("hot {}", i % 3))),
                            1 => drop(sys.handle_request(&format!("warm {}", i % 64))),
                            _ => drop(sys.handle_request(&format!("cold {t}-{i}"))),
                        }
                    }
                })
            })
            .collect();
        let batcher = s.spawn(|| {
            while !done.load(Ordering::Acquire) {
                if sys.run_batch_cycle().unwrap_or(0) == 0 {
                    std::thread::yield_now();
                }
            }
        });
        let refresher = s.spawn(|| {
            for _ in 0..5 {
                sys.daily_refresh();
                std::thread::yield_now();
            }
        });
        for h in requesters {
            h.join().expect("request thread panicked");
        }
        refresher.join().expect("refresh thread panicked");
        done.store(true, Ordering::Release);
        batcher.join().expect("batch thread panicked");
    });
    let generation = sys.current();
    let m = &generation.cache.metrics;
    let m = &m;
    let total = m.l1_hits.load(Ordering::Relaxed)
        + m.l2_hits.load(Ordering::Relaxed)
        + m.misses.load(Ordering::Relaxed);
    assert_eq!(
        total,
        (THREADS * PER_THREAD) as u64,
        "every request accounted exactly once"
    );
    assert_eq!(sys.latency.len(), THREADS * PER_THREAD);
    // pending gauge equals the true number of distinct queued queries
    let drained = sys.current().cache.drain_pending(usize::MAX);
    assert_eq!(
        {
            let mut d = drained.clone();
            d.sort();
            d.dedup();
            d.len()
        },
        drained.len(),
        "drained queries are distinct"
    );
}

/// A pure-miss flood of 10× the queue bound must never grow the pending
/// queue past the bound; every overflow shows up in the drop counter.
#[test]
fn miss_flood_respects_bound_with_drops_visible() {
    let bound = 64usize;
    let sys = build(
        ServingConfig {
            shards: 8,
            pending_bound: bound,
            admission: AdmissionPolicy::DropOldest,
            ..ServingConfig::default()
        },
        &[],
    );
    let flood = bound * 10;
    for i in 0..flood {
        let r = sys.handle_request(&format!("flood {i}"));
        assert!(r.features.is_none());
        assert!(
            sys.current().cache.pending_len() <= bound,
            "queue exceeded bound at request {i}"
        );
    }
    let snap = sys.ops();
    assert!(snap.pending <= bound);
    assert!(snap.queue_high_water <= bound);
    assert_eq!(snap.rejected, 0);
    assert_eq!(
        flood as u64 - snap.dropped,
        snap.pending as u64,
        "distinct misses minus drops equals what is still queued"
    );
}

/// Same flood with one shard: the bound is exact (no per-shard rounding),
/// so exactly `flood - bound` entries are dropped.
#[test]
fn single_shard_flood_drops_exactly_overflow() {
    let bound = 64usize;
    let sys = build(
        ServingConfig {
            shards: 1,
            pending_bound: bound,
            admission: AdmissionPolicy::DropOldest,
            ..ServingConfig::default()
        },
        &[],
    );
    let flood = bound * 10;
    for i in 0..flood {
        let _ = sys.handle_request(&format!("flood {i}"));
    }
    let snap = sys.ops();
    assert_eq!(snap.pending, bound);
    assert_eq!(snap.queue_high_water, bound);
    assert_eq!(snap.dropped, (flood - bound) as u64);
}

/// Under reject-new the earliest misses keep their slots and the rest
/// are refused.
#[test]
fn single_shard_flood_rejects_new_when_full() {
    let bound = 32usize;
    let sys = build(
        ServingConfig {
            shards: 1,
            pending_bound: bound,
            admission: AdmissionPolicy::RejectNew,
            ..ServingConfig::default()
        },
        &[],
    );
    for i in 0..bound * 4 {
        let _ = sys.handle_request(&format!("flood {i}"));
    }
    let snap = sys.ops();
    assert_eq!(snap.pending, bound);
    assert_eq!(snap.dropped, 0);
    assert_eq!(snap.rejected, (bound * 3) as u64);
    // the survivors are the first `bound` queries, in order
    let drained = sys.current().cache.drain_pending(usize::MAX);
    assert_eq!(drained[0], "flood 0");
    assert_eq!(drained.len(), bound);
}

#[test]
fn builder_rejects_zero_fields() {
    for cfg in [
        ServingConfig {
            workers: 0,
            ..ServingConfig::default()
        },
        ServingConfig {
            batch_size: 0,
            ..ServingConfig::default()
        },
        ServingConfig {
            l1_capacity: 0,
            ..ServingConfig::default()
        },
        ServingConfig {
            l2_capacity: 0,
            ..ServingConfig::default()
        },
        ServingConfig {
            shards: 0,
            ..ServingConfig::default()
        },
        ServingConfig {
            pending_bound: 0,
            ..ServingConfig::default()
        },
    ] {
        assert!(cfg.validate().is_err(), "{cfg:?} must be rejected");
        let (kg, lm) = parts();
        let err = ServingSystem::builder().kg(kg).lm(lm).config(cfg).build();
        assert!(matches!(err, Err(ServingError::InvalidConfig(_))));
    }
    assert!(ServingConfig::default().validate().is_ok());
}

proptest! {
    /// Histogram percentiles always land in the same bucket as the exact
    /// (sorted-vector) percentile — i.e. the log-scaled histogram is
    /// never off by more than one bucket's quantisation.
    #[test]
    fn histogram_percentile_matches_exact_within_one_bucket(
        mut samples in prop::collection::vec(0u64..2_000_000, 1..200),
        p in 0.0f64..=1.0,
    ) {
        let rec = LatencyRecorder::default();
        for &s in &samples {
            rec.record(s);
        }
        samples.sort_unstable();
        let rank = ((samples.len() - 1) as f64 * p).round() as usize;
        let exact = samples[rank];
        let approx = rec.percentile(p);
        prop_assert_eq!(
            bucket_index(approx),
            bucket_index(exact),
            "p={} exact={} approx={}",
            p, exact, approx
        );
    }
}
