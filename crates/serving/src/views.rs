//! Downstream application views (Figure 5: "Communication with Downstream
//! Applications — structured data from the cache enhances various
//! downstream applications, providing enriched features for improved user
//! interaction").
//!
//! Each consumer of the serving stack needs the cached
//! [`StructuredFeatures`] in a different shape:
//!
//! * **search relevance** consumes the knowledge feature `G` — a rendered
//!   text span concatenated into the cross-encoder input (§4.1);
//! * **session recommendation** consumes a dense/sparse knowledge vector
//!   per query (§4.2.3);
//! * **search navigation** consumes ranked refinement labels (§4.3).
//!
//! These adapters are pure functions of the cached features, so every
//! downstream surface shares one cache entry per query.

use crate::features::StructuredFeatures;
#[allow(deprecated)] // the deprecated ops_view shim still renders the old snapshot type
use crate::system::SystemSnapshot;
use cosmo_text::hash::hash_str_ns;

/// Render the relevance feature `G` for a query's cached features: the
/// intent key-value pairs as a text span ready to concatenate into a
/// `[Q, P, G]` cross-encoder input.
pub fn relevance_view(f: &StructuredFeatures) -> String {
    let mut parts: Vec<String> = f
        .intents
        .iter()
        .map(|(rel, tail, _)| format!("query intent [{}] {}", rel.name(), tail))
        .collect();
    if let Some(strong) = &f.strong_intent {
        parts.push(format!("strong intent {strong}"));
    }
    parts.join(" . ")
}

/// Render the recommendation knowledge vector for a query's cached
/// features: a sparse indicator over hashed tail ids (buckets `0..dim/2`)
/// weighted by intent scores, plus a query-identity bucket
/// (`dim/2..dim`) — the encoding COSMO-GNN consumes (§4.2.3).
pub fn recommendation_view(f: &StructuredFeatures, dim: usize) -> Vec<f32> {
    assert!(
        dim >= 4 && dim.is_multiple_of(2),
        "dim must be even and ≥ 4"
    );
    let half = dim / 2;
    let mut v = vec![0.0f32; dim];
    let total: f32 = f.intents.iter().map(|(_, _, s)| s.max(0.0)).sum();
    for (_, tail, score) in &f.intents {
        let h = (hash_str_ns(tail, 77) % half as u64) as usize;
        // PANIC: h < half <= dim, enforced by the assert above
        v[h] += if total > 0.0 {
            score.max(0.0) / total
        } else {
            0.0
        };
    }
    let qh = half + (hash_str_ns(&f.query, 78) % half as u64) as usize;
    v[qh] = 1.0; // PANIC: qh < 2 * half = dim
    v
}

/// Render navigation refinements for a query's cached features: the intent
/// tails ranked by score, deduplicated — the widget labels of Figure 9.
pub fn navigation_view(f: &StructuredFeatures, k: usize) -> Vec<String> {
    let mut ranked: Vec<(&str, f32)> = f
        .intents
        .iter()
        .map(|(_, tail, score)| (tail.as_str(), *score))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
    let mut out: Vec<String> = Vec::with_capacity(k);
    for (tail, _) in ranked {
        if !out.iter().any(|t| t == tail) {
            out.push(tail.to_string());
            if out.len() >= k {
                break;
            }
        }
    }
    out
}

/// Render an operator-facing one-screen summary of a [`SystemSnapshot`]:
/// cache layer sizes (with the per-shard L2 spread), queue depth against
/// its high-water mark, admission counters, hit rate, and latency
/// percentiles — the quantities an on-call dashboard for Figure 5 charts.
#[deprecated(
    since = "0.6.0",
    note = "use `ServingSystem::ops().render()` — same line, versioned schema"
)]
#[allow(deprecated)] // the deprecated shim renders the deprecated snapshot type
pub fn ops_view(snap: &SystemSnapshot) -> String {
    let shard_spread = snap
        .l2_shard_sizes
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join("/");
    format!(
        "cache l1={} l2={} (shards {shard_spread}) | queue pending={} hwm={} \
         dropped={} rejected={} | batch failed_chunks={} | hit_rate={:.3} \
         p50={}us p99={}us | features={} model=v{}",
        snap.l1_size,
        snap.l2_size,
        snap.pending,
        snap.queue_high_water,
        snap.dropped,
        snap.rejected,
        snap.batch_failed_chunks,
        snap.hit_rate,
        snap.p50_us,
        snap.p99_us,
        snap.features,
        snap.model_version,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmo_kg::Relation;

    fn features() -> StructuredFeatures {
        StructuredFeatures {
            query: "camping".into(),
            intents: vec![
                (Relation::UsedForEve, "sleeping outdoors".into(), 0.9),
                (Relation::CapableOf, "keeping warm".into(), 0.6),
                (Relation::UsedForEve, "sleeping outdoors".into(), 0.5), // dup
            ],
            subcategory: vec![0.1; 8],
            strong_intent: Some("sleeping outdoors".into()),
        }
    }

    #[test]
    fn relevance_view_renders_relations_and_strong_intent() {
        let g = relevance_view(&features());
        assert!(g.contains("[USED_FOR_EVE] sleeping outdoors"));
        assert!(g.contains("[CAPABLE_OF] keeping warm"));
        assert!(g.contains("strong intent sleeping outdoors"));
    }

    #[test]
    fn recommendation_view_is_normalised_with_query_bucket() {
        let v = recommendation_view(&features(), 64);
        assert_eq!(v.len(), 64);
        let tail_mass: f32 = v[..32].iter().sum();
        assert!((tail_mass - 1.0).abs() < 1e-5, "tail mass {tail_mass}");
        let query_mass: f32 = v[32..].iter().sum();
        assert_eq!(query_mass, 1.0);
        // deterministic
        assert_eq!(v, recommendation_view(&features(), 64));
    }

    #[test]
    fn navigation_view_ranks_and_dedupes() {
        let labels = navigation_view(&features(), 5);
        assert_eq!(labels, vec!["sleeping outdoors", "keeping warm"]);
        let top1 = navigation_view(&features(), 1);
        assert_eq!(top1, vec!["sleeping outdoors"]);
    }

    #[test]
    #[allow(deprecated)] // locks the deprecated ops_view shim's output format
    fn ops_view_mentions_every_operational_counter() {
        let snap = SystemSnapshot {
            l1_size: 10,
            l2_size: 7,
            l2_shard_sizes: vec![3, 4],
            pending: 2,
            queue_high_water: 9,
            dropped: 5,
            rejected: 1,
            batch_failed_chunks: 0,
            hit_rate: 0.875,
            p50_us: 12,
            p99_us: 340,
            features: 17,
            model_version: 3,
        };
        let line = ops_view(&snap);
        assert!(line.contains("l1=10"));
        assert!(line.contains("shards 3/4"));
        assert!(line.contains("pending=2"));
        assert!(line.contains("hwm=9"));
        assert!(line.contains("dropped=5"));
        assert!(line.contains("rejected=1"));
        assert!(line.contains("hit_rate=0.875"));
        assert!(line.contains("model=v3"));
    }

    #[test]
    fn empty_features_yield_empty_views() {
        let f = StructuredFeatures {
            query: "q".into(),
            intents: vec![],
            subcategory: vec![],
            strong_intent: None,
        };
        assert!(relevance_view(&f).is_empty());
        assert!(navigation_view(&f, 3).is_empty());
        let v = recommendation_view(&f, 8);
        assert_eq!(v[..4].iter().sum::<f32>(), 0.0);
        assert_eq!(v[4..].iter().sum::<f32>(), 1.0, "query bucket always set");
    }
}
