//! Fixed-bucket log-scaled latency histogram.
//!
//! The original `LatencyRecorder` kept every sample in a `Mutex<Vec<u64>>`
//! and cloned + sorted it on every percentile query — O(n log n) per
//! snapshot over an unbounded vector, with every request serialised on one
//! mutex. This version records into a fixed array of atomic buckets:
//! O(1) lock-free `record`, O(buckets) `percentile`, constant memory.
//!
//! Bucket layout (microsecond values):
//!
//! * values `0..128` get one bucket each (exact — request-path latencies
//!   in this system are almost always sub-millisecond);
//! * values `>= 128` are log-scaled: each power-of-two octave is split
//!   into 16 linear sub-buckets, so the relative quantisation error is
//!   at most 1/16 ≈ 6%.
//!
//! Percentile queries return the lower bound of the selected bucket
//! (exact for the linear range), except for the topmost non-empty bucket
//! where the tracked maximum is returned exactly — so `percentile(1.0)`
//! is always the true max.

use std::sync::atomic::{AtomicU64, Ordering};

/// Values below this get one bucket each (exact recording).
const LINEAR_MAX: u64 = 128;
/// log2 of sub-buckets per power-of-two octave.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// First log-scaled octave: 2^7 == LINEAR_MAX.
const OCTAVE0: u32 = 7;
/// Total bucket count: 128 linear + 57 octaves × 16 sub-buckets.
const NUM_BUCKETS: usize = LINEAR_MAX as usize + (64 - OCTAVE0 as usize) * SUB;

/// Bucket index for a microsecond value. Monotone in `us`.
pub fn bucket_index(us: u64) -> usize {
    if us < LINEAR_MAX {
        us as usize
    } else {
        let octave = 63 - us.leading_zeros();
        let sub = ((us >> (octave - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        LINEAR_MAX as usize + (octave - OCTAVE0) as usize * SUB + sub
    }
}

/// Inclusive lower bound of a bucket (the representative value reported
/// for percentiles that land in it).
fn bucket_lower_bound(idx: usize) -> u64 {
    if idx < LINEAR_MAX as usize {
        idx as u64
    } else {
        let rel = idx - LINEAR_MAX as usize;
        let octave = OCTAVE0 + (rel / SUB) as u32;
        let sub = (rel % SUB) as u64;
        (1u64 << octave) + (sub << (octave - SUB_BITS))
    }
}

/// Latency percentile recorder: lock-free histogram with O(1) record.
#[derive(Debug)]
pub struct LatencyRecorder {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        LatencyRecorder {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl LatencyRecorder {
    /// Record one sample (microseconds). Lock-free, O(1).
    pub fn record(&self, us: u64) {
        // PANIC: bucket_index is < NUM_BUCKETS for all u64 inputs
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(us, Ordering::Relaxed);
    }

    /// `p` in `[0,1]` percentile of recorded samples (0 when empty).
    ///
    /// Returns the lower bound of the bucket holding the rank-selected
    /// sample — exact below 128µs, within one log sub-bucket (≤ ~6%)
    /// above — and the exact maximum for the topmost non-empty bucket.
    pub fn percentile(&self, p: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return 0;
        }
        let rank = ((n - 1) as f64 * p.clamp(0.0, 1.0)).round() as u64;
        let last_nonempty = counts.iter().rposition(|&c| c > 0).unwrap_or(0);
        let mut cum = 0u64;
        for (idx, &c) in counts.iter().enumerate() {
            cum += c;
            if c > 0 && cum > rank {
                return if idx == last_nonempty {
                    self.max.load(Ordering::Relaxed)
                } else {
                    bucket_lower_bound(idx)
                };
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Non-empty buckets as `(lower_bound_us, count)`, ascending — the
    /// full distribution in sparse form, as exported on the ops surface.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(idx, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_lower_bound(idx), c))
            })
            .collect()
    }

    /// Number of samples recorded since the last reset.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed) as usize
    }

    /// True when no samples recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clear all buckets.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_range_is_exact() {
        let rec = LatencyRecorder::default();
        for v in [1u64, 2, 3, 4, 100] {
            rec.record(v);
        }
        assert_eq!(rec.percentile(0.5), 3);
        assert_eq!(rec.percentile(1.0), 100);
        assert_eq!(rec.percentile(0.0), 1);
        assert_eq!(rec.len(), 5);
    }

    #[test]
    fn log_range_within_one_sub_bucket() {
        let rec = LatencyRecorder::default();
        rec.record(1_000);
        rec.record(1_000_000);
        let p0 = rec.percentile(0.0);
        assert_eq!(bucket_index(p0), bucket_index(1_000));
        assert!(p0 <= 1_000);
        // topmost bucket reports the exact max
        assert_eq!(rec.percentile(1.0), 1_000_000);
    }

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut prev = 0usize;
        for v in (0u64..4096).chain((12..64).map(|s| 1u64 << s)) {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index must not decrease at {v}");
            assert!(idx < NUM_BUCKETS);
            prev = idx;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn lower_bound_round_trips() {
        for idx in 0..NUM_BUCKETS {
            let lb = bucket_lower_bound(idx);
            assert_eq!(bucket_index(lb), idx, "lower bound of {idx} maps back");
        }
    }

    #[test]
    fn nonzero_buckets_are_sparse_and_sorted() {
        let rec = LatencyRecorder::default();
        for v in [3u64, 3, 7, 1_000] {
            rec.record(v);
        }
        let buckets = rec.nonzero_buckets();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0], (3, 2));
        assert_eq!(buckets[1], (7, 1));
        assert_eq!(buckets[2].1, 1);
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(
            buckets.iter().map(|(_, c)| c).sum::<u64>() as usize,
            rec.len()
        );
    }

    #[test]
    fn empty_and_reset() {
        let rec = LatencyRecorder::default();
        assert!(rec.is_empty());
        assert_eq!(rec.percentile(0.99), 0);
        rec.record(42);
        assert!(!rec.is_empty());
        rec.reset();
        assert!(rec.is_empty());
        assert_eq!(rec.percentile(0.5), 0);
    }
}
