//! Traffic simulation for the deployment experiment (Figure 5 repro).
//!
//! Replays a multi-day Zipf-distributed query stream with daily drift (a
//! fraction of each day's queries are new — the "flash sale" / evolving
//! traffic the paper's limitations section discusses), interleaving the
//! request path with batch cycles and daily refreshes, and reports
//! per-day hit rates, latency percentiles, and admission counters.
//!
//! Two drivers share the same traffic model:
//!
//! * [`simulate`] — single-threaded, deterministic, used by the Figure 5
//!   hit-rate repro;
//! * [`simulate_concurrent`] — N request threads racing a dedicated
//!   batch-cycle thread against one shared [`ServingSystem`], used to
//!   measure end-to-end throughput (req/s) of the sharded hot path.

use crate::system::ServingSystem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Traffic simulation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// RNG seed.
    pub seed: u64,
    /// Simulated days.
    pub days: usize,
    /// Requests per day.
    pub requests_per_day: usize,
    /// Distinct queries in the base popularity distribution.
    pub query_universe: usize,
    /// Zipf exponent of query popularity.
    pub zipf: f64,
    /// Fraction of each day's traffic drawn from brand-new queries
    /// (daily drift).
    pub drift: f64,
    /// Batch cycles run per day (asynchronous processing cadence).
    pub batch_cycles_per_day: usize,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 0x7AFF1C,
            days: 7,
            requests_per_day: 5_000,
            query_universe: 2_000,
            zipf: 1.0,
            drift: 0.05,
            batch_cycles_per_day: 50,
        }
    }
}

/// Per-day results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DayReport {
    /// Day index (0-based).
    pub day: usize,
    /// Overall cache hit rate for the day.
    pub hit_rate: f64,
    /// L1 share of hits.
    pub l1_hits: u64,
    /// L2 share of hits.
    pub l2_hits: u64,
    /// Misses.
    pub misses: u64,
    /// Pending entries evicted under drop-oldest admission this day.
    #[serde(default)]
    pub dropped: u64,
    /// Pending enqueues refused under reject-new admission this day.
    #[serde(default)]
    pub rejected: u64,
    /// Peak pending-queue depth observed this day.
    #[serde(default)]
    pub queue_high_water: usize,
    /// p50 request latency (µs).
    pub p50_us: u64,
    /// p99 request latency (µs).
    pub p99_us: u64,
    /// Entries promoted to L1 at end of day.
    pub promoted: usize,
}

/// Throughput measurement from [`simulate_concurrent`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Request threads racing the batch thread.
    pub threads: usize,
    /// Requests served across all days.
    pub total_requests: usize,
    /// Wall-clock time for the whole run.
    pub elapsed_secs: f64,
    /// `total_requests / elapsed_secs`.
    pub requests_per_sec: f64,
    /// Per-day reports (same shape as the sequential simulation).
    pub days: Vec<DayReport>,
}

/// The base query strings used by the simulation (exposed so callers can
/// preload the hottest prefix into L1).
pub fn query_universe(cfg: &TrafficConfig) -> Vec<String> {
    (0..cfg.query_universe)
        .map(|i| format!("sim query {i}"))
        .collect()
}

/// Zipf-CDF sampler over a fixed universe.
struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(universe: usize, zipf: f64) -> Self {
        let weights: Vec<f64> = (1..=universe.max(1))
            .map(|r| 1.0 / (r as f64).powf(zipf))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        ZipfSampler { cdf }
    }

    /// Sample a rank index. Consumes exactly one `rng.gen::<f64>()`.
    fn index<R: Rng>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < x).min(self.cdf.len() - 1)
    }
}

/// Close a simulated day: summarise counters and run the daily refresh.
fn close_day(system: &ServingSystem, day: usize) -> DayReport {
    use std::sync::atomic::Ordering::Relaxed;
    let generation = system.current();
    let m = &generation.cache.metrics;
    DayReport {
        day,
        hit_rate: m.hit_rate(),
        l1_hits: m.l1_hits.load(Relaxed),
        l2_hits: m.l2_hits.load(Relaxed),
        misses: m.misses.load(Relaxed),
        dropped: m.dropped.load(Relaxed),
        rejected: m.rejected.load(Relaxed),
        queue_high_water: m.pending_high_water(),
        p50_us: system.latency.percentile(0.5),
        p99_us: system.latency.percentile(0.99),
        promoted: system.daily_refresh(),
    }
}

/// Run the sequential simulation.
pub fn simulate(system: &ServingSystem, cfg: &TrafficConfig) -> Vec<DayReport> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let universe = query_universe(cfg);
    let sampler = ZipfSampler::new(universe.len(), cfg.zipf);

    let mut reports = Vec::with_capacity(cfg.days);
    let mut drift_counter = 0usize;
    for day in 0..cfg.days {
        system.current().cache.metrics.reset();
        system.latency.reset();
        let batch_every = (cfg.requests_per_day / cfg.batch_cycles_per_day.max(1)).max(1);
        for r in 0..cfg.requests_per_day {
            let query = if rng.gen_bool(cfg.drift) {
                drift_counter += 1;
                format!("drift query {day}-{drift_counter}")
            } else {
                // PANIC: the sampler draws indices below universe.len()
                universe[sampler.index(&mut rng)].clone()
            };
            let _ = system.handle_request(&query);
            if r % batch_every == batch_every - 1 {
                let _ = system.run_batch_cycle();
            }
        }
        // flush remaining pending work before the day closes
        while system.run_batch_cycle().unwrap_or(0) > 0 {}
        reports.push(close_day(system, day));
    }
    reports
}

/// Run the concurrent throughput measurement: `threads` request threads
/// replay the day's traffic against the shared system while a dedicated
/// batch thread drains the pending queue; each day ends with a final
/// drain and a daily refresh. Determinism: each `(seed, day, thread)`
/// triple gets its own RNG, so the multiset of queries is reproducible
/// even though interleaving is not.
pub fn simulate_concurrent(
    system: &ServingSystem,
    cfg: &TrafficConfig,
    threads: usize,
) -> ThroughputReport {
    let threads = threads.max(1);
    let universe = query_universe(cfg);
    let sampler = ZipfSampler::new(universe.len(), cfg.zipf);

    let start = Instant::now();
    let mut days = Vec::with_capacity(cfg.days);
    for day in 0..cfg.days {
        system.current().cache.metrics.reset();
        system.latency.reset();
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let per_thread = cfg.requests_per_day / threads
                        + usize::from(t < cfg.requests_per_day % threads);
                    let universe = &universe;
                    let sampler = &sampler;
                    s.spawn(move || {
                        let mut rng =
                            StdRng::seed_from_u64(cfg.seed ^ ((day as u64) << 32) ^ (t as u64));
                        for i in 0..per_thread {
                            let query = if rng.gen_bool(cfg.drift) {
                                format!("drift query {day}-{t}-{i}")
                            } else {
                                // PANIC: sampler indices are in range
                                universe[sampler.index(&mut rng)].clone()
                            };
                            let _ = system.handle_request(&query);
                        }
                    })
                })
                .collect();
            let batcher = s.spawn(|| {
                while !stop.load(Ordering::Acquire) {
                    if system.run_batch_cycle().unwrap_or(0) == 0 {
                        std::thread::yield_now();
                    }
                }
            });
            for h in handles {
                // PANIC: propagating a worker panic is the sim's failure mode
                h.join().expect("request thread panicked");
            }
            stop.store(true, Ordering::Release);
            // PANIC: propagated deliberately, as above
            batcher.join().expect("batch thread panicked");
        });
        // flush remaining pending work before the day closes
        while system.run_batch_cycle().unwrap_or(0) > 0 {}
        days.push(close_day(system, day));
    }
    let elapsed_secs = start.elapsed().as_secs_f64();
    let total_requests = cfg.requests_per_day * cfg.days;
    ThroughputReport {
        threads,
        total_requests,
        elapsed_secs,
        requests_per_sec: total_requests as f64 / elapsed_secs.max(f64::EPSILON),
        days,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{ServingConfig, ServingSystem};
    use cosmo_kg::{KnowledgeGraph, Relation};
    use cosmo_lm::{CosmoLm, StudentConfig};
    use std::sync::Arc;

    fn small_system(preload_top: usize, cfg: &TrafficConfig) -> ServingSystem {
        let lm = Arc::new(CosmoLm::new(
            StudentConfig::default(),
            vec![("sleeping outdoors".into(), Some(Relation::UsedForFunc))],
        ));
        let kg = Arc::new(KnowledgeGraph::new());
        let universe = query_universe(cfg);
        let preload: Vec<String> = universe.into_iter().take(preload_top).collect();
        ServingSystem::builder()
            .kg(kg)
            .lm(lm)
            .preload(preload)
            .config(ServingConfig {
                workers: 2,
                batch_size: 512,
                l1_capacity: 512,
                ..ServingConfig::default()
            })
            .build()
            .unwrap()
    }

    fn tiny_traffic() -> TrafficConfig {
        TrafficConfig {
            days: 3,
            requests_per_day: 800,
            query_universe: 300,
            batch_cycles_per_day: 20,
            ..Default::default()
        }
    }

    #[test]
    fn hit_rate_improves_after_first_day() {
        let cfg = tiny_traffic();
        let sys = small_system(30, &cfg);
        let reports = simulate(&sys, &cfg);
        assert_eq!(reports.len(), 3);
        assert!(
            reports[1].hit_rate > reports[0].hit_rate - 0.02,
            "day-2 hit rate {} should not collapse vs day-1 {}",
            reports[1].hit_rate,
            reports[0].hit_rate
        );
        assert!(
            reports[2].hit_rate > 0.5,
            "steady-state hit rate {}",
            reports[2].hit_rate
        );
    }

    #[test]
    fn preloading_raises_day_one_hits() {
        let cfg = tiny_traffic();
        let cold = simulate(&small_system(0, &cfg), &cfg);
        let warm = simulate(&small_system(100, &cfg), &cfg);
        assert!(
            warm[0].hit_rate > cold[0].hit_rate,
            "preloaded L1 must help day one: warm={} cold={}",
            warm[0].hit_rate,
            cold[0].hit_rate
        );
    }

    #[test]
    fn drift_queries_cause_some_misses() {
        let cfg = TrafficConfig {
            drift: 0.3,
            ..tiny_traffic()
        };
        let sys = small_system(300, &cfg);
        let reports = simulate(&sys, &cfg);
        assert!(
            reports.iter().all(|r| r.misses > 0),
            "drift must produce misses"
        );
    }

    #[test]
    fn counters_add_up() {
        let cfg = tiny_traffic();
        let sys = small_system(50, &cfg);
        let reports = simulate(&sys, &cfg);
        for r in &reports {
            assert_eq!(
                (r.l1_hits + r.l2_hits + r.misses) as usize,
                cfg.requests_per_day,
                "day {} counters",
                r.day
            );
        }
    }

    #[test]
    fn concurrent_simulation_serves_all_requests() {
        let cfg = TrafficConfig {
            days: 2,
            ..tiny_traffic()
        };
        let sys = small_system(50, &cfg);
        let report = simulate_concurrent(&sys, &cfg, 4);
        assert_eq!(report.threads, 4);
        assert_eq!(report.total_requests, cfg.requests_per_day * cfg.days);
        assert!(report.requests_per_sec > 0.0);
        assert_eq!(report.days.len(), cfg.days);
        for day in &report.days {
            assert_eq!(
                (day.l1_hits + day.l2_hits + day.misses) as usize,
                cfg.requests_per_day,
                "day {} counters reconcile under concurrency",
                day.day
            );
        }
        // everything pending was flushed before each day closed
        assert_eq!(sys.current().cache.pending_len(), 0);
    }
}
