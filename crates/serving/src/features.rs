//! Feature store (Figure 5, §3.5.1).
//!
//! "This store is essential for transferring model responses to structured
//! features, making them actionable for downstream applications. It
//! handles features like product key-value pairs, semantic subcategory
//! representations, and strong intent detection."
//!
//! A [`FeatureStore`] maps query strings to [`StructuredFeatures`]
//! computed from COSMO-LM responses: the top intention tails per relation
//! (key-value pairs), a dense semantic representation (the student's text
//! embedding), and a strong-intent flag when the top generation dominates.
//!
//! The map is **sharded by query hash** so that concurrent request
//! threads and the batch writer contend only when they touch the same
//! shard, mirroring the cache store's layout.

use cosmo_kg::{GraphView, NodeKind, Relation};
use cosmo_lm::CosmoLm;
use cosmo_text::hash::hash_str_ns;
use cosmo_text::FxHashMap;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Hash namespace for feature-store shard routing.
const FEATURE_SHARD_NS: u32 = 0x5EEE;

/// Default shard count (matches the cache store's default).
const DEFAULT_SHARDS: usize = 8;

/// Structured features derived from a model response for one query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StructuredFeatures {
    /// The query these features describe.
    pub query: String,
    /// Intention key-value pairs: `(relation, tail, score)`, best first.
    pub intents: Vec<(Relation, String, f32)>,
    /// Semantic subcategory representation (dense embedding).
    pub subcategory: Vec<f32>,
    /// Detected strong intent, when the top tail clearly dominates.
    pub strong_intent: Option<String>,
}

/// How far the top score must exceed the runner-up for strong-intent
/// detection.
const STRONG_INTENT_MARGIN: f32 = 0.3;

/// Compute structured features for a query: KG intents when the query node
/// exists (cheap lookup), falling back to COSMO-LM generation, plus the
/// student embedding as the subcategory representation.
///
/// Generic over the graph backend: the mutable [`cosmo_kg::KnowledgeGraph`]
/// and the frozen [`cosmo_kg::KgSnapshot`] produce bitwise-identical
/// features (both enumerate adjacency in the same content-determined
/// order); production serving uses the snapshot.
pub fn compute_features<G: GraphView>(query: &str, kg: &G, lm: &CosmoLm) -> StructuredFeatures {
    let mut intents: Vec<(Relation, String, f32)> = Vec::new();
    if let Some(node) = kg.find_node(NodeKind::Query, query) {
        for e in kg.top_intents(node, 5) {
            intents.push((e.relation, kg.node_text(e.tail).to_string(), e.typicality));
        }
    }
    if intents.is_empty() {
        // cold query: ask the student model directly
        let input = format!(
            "generate a USED_FOR_FUNC explanation in domain unknown for: search query: {query}"
        );
        for (tail, score) in lm.generate(&input, None, 5) {
            intents.push((Relation::UsedForFunc, tail, score));
        }
        // normalise scores into (0,1) via softmax-ish squashing
        if let Some(max) = intents.iter().map(|(_, _, s)| *s).reduce(f32::max) {
            for (_, _, s) in intents.iter_mut() {
                *s = 1.0 / (1.0 + (max - *s).exp());
            }
        }
    }
    let strong_intent = match intents.as_slice() {
        [] => None,
        [only] => Some(only.1.clone()),
        [first, second, ..] => {
            (first.2 - second.2 >= STRONG_INTENT_MARGIN).then(|| first.1.clone())
        }
    };
    StructuredFeatures {
        query: query.to_string(),
        subcategory: lm.embed_text(query),
        intents,
        strong_intent,
    }
}

/// Thread-safe, sharded query → features map.
#[derive(Debug)]
pub struct FeatureStore {
    shards: Vec<RwLock<FxHashMap<String, Arc<StructuredFeatures>>>>,
}

impl Default for FeatureStore {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl FeatureStore {
    /// Empty store with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty store with an explicit shard count (min 1).
    pub fn with_shards(shards: usize) -> Self {
        FeatureStore {
            shards: (0..shards.max(1)).map(|_| RwLock::default()).collect(),
        }
    }

    fn shard_of(&self, query: &str) -> &RwLock<FxHashMap<String, Arc<StructuredFeatures>>> {
        let idx = (hash_str_ns(query, FEATURE_SHARD_NS) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Insert (or replace) features for a query.
    pub fn put(&self, features: StructuredFeatures) -> Arc<StructuredFeatures> {
        let arc = Arc::new(features);
        self.shard_of(&arc.query)
            .write()
            .insert(arc.query.clone(), arc.clone());
        arc
    }

    /// Look up features.
    pub fn get(&self, query: &str) -> Option<Arc<StructuredFeatures>> {
        self.shard_of(query).read().get(query).cloned()
    }

    /// Number of stored queries (summed across shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmo_kg::{BehaviorKind, Edge, KnowledgeGraph};
    use cosmo_lm::StudentConfig;

    fn lm() -> CosmoLm {
        CosmoLm::new(
            StudentConfig::default(),
            vec![
                ("sleeping outdoors".into(), Some(Relation::UsedForFunc)),
                ("keeping warm".into(), Some(Relation::CapableOf)),
            ],
        )
    }

    fn kg_with_query(query: &str) -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        let q = kg.intern_node(NodeKind::Query, query);
        for (tail, typ) in [("sleeping outdoors", 0.9f32), ("lakeside trips", 0.4)] {
            let t = kg.intern_node(NodeKind::Intention, tail);
            kg.add_edge(Edge {
                head: q,
                relation: Relation::UsedForEve,
                tail: t,
                behavior: BehaviorKind::SearchBuy,
                category: 1,
                plausibility: 0.9,
                typicality: typ,
                support: 3,
            });
        }
        kg
    }

    #[test]
    fn kg_backed_features_prefer_graph() {
        let kg = kg_with_query("camping");
        let f = compute_features("camping", &kg, &lm());
        assert_eq!(f.intents.len(), 2);
        assert_eq!(f.intents[0].1, "sleeping outdoors");
        assert_eq!(f.strong_intent.as_deref(), Some("sleeping outdoors"));
        assert_eq!(f.subcategory.len(), lm().dim());
    }

    #[test]
    fn cold_query_falls_back_to_student() {
        let kg = KnowledgeGraph::new();
        let f = compute_features("brand new query", &kg, &lm());
        assert!(
            !f.intents.is_empty(),
            "student fallback must produce intents"
        );
    }

    #[test]
    fn store_roundtrip() {
        let store = FeatureStore::new();
        assert!(store.is_empty());
        let kg = kg_with_query("camping");
        let f = compute_features("camping", &kg, &lm());
        store.put(f);
        assert_eq!(store.len(), 1);
        assert!(store.get("camping").is_some());
        assert!(store.get("missing").is_none());
    }

    #[test]
    fn sharded_store_spreads_and_counts() {
        let store = FeatureStore::with_shards(4);
        let kg = KnowledgeGraph::new();
        let model = lm();
        for i in 0..32 {
            store.put(compute_features(&format!("query {i}"), &kg, &model));
        }
        assert_eq!(store.len(), 32);
        for i in 0..32 {
            assert!(store.get(&format!("query {i}")).is_some());
        }
        // replacing an existing key does not grow the store
        store.put(compute_features("query 0", &kg, &model));
        assert_eq!(store.len(), 32);
    }

    #[test]
    fn snapshot_features_bitwise_identical_to_store() {
        let kg = kg_with_query("camping");
        let snap = kg.freeze();
        let model = lm();
        for query in ["camping", "brand new query", ""] {
            let a = compute_features(query, &kg, &model);
            let b = compute_features(query, &snap, &model);
            assert_eq!(a.query, b.query);
            assert_eq!(a.strong_intent, b.strong_intent);
            assert_eq!(a.intents.len(), b.intents.len());
            for ((ra, ta, sa), (rb, tb, sb)) in a.intents.iter().zip(&b.intents) {
                assert_eq!(ra, rb);
                assert_eq!(ta, tb);
                assert_eq!(sa.to_bits(), sb.to_bits());
            }
            let bits = |v: &[f32]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.subcategory), bits(&b.subcategory));
        }
    }

    #[test]
    fn no_strong_intent_when_scores_close() {
        let mut kg = KnowledgeGraph::new();
        let q = kg.intern_node(NodeKind::Query, "gift");
        for tail in ["for mom", "for dad"] {
            let t = kg.intern_node(NodeKind::Intention, tail);
            kg.add_edge(Edge {
                head: q,
                relation: Relation::UsedForAud,
                tail: t,
                behavior: BehaviorKind::SearchBuy,
                category: 0,
                plausibility: 0.9,
                typicality: 0.5,
                support: 1,
            });
        }
        let f = compute_features("gift", &kg, &lm());
        assert!(f.strong_intent.is_none());
    }
}
