//! Feature store (Figure 5, §3.5.1).
//!
//! "This store is essential for transferring model responses to structured
//! features, making them actionable for downstream applications. It
//! handles features like product key-value pairs, semantic subcategory
//! representations, and strong intent detection."
//!
//! A [`FeatureStore`] maps query strings to [`StructuredFeatures`]
//! computed from COSMO-LM responses: the top intention tails per relation
//! (key-value pairs), a dense semantic representation (the student's text
//! embedding), and a strong-intent flag when the top generation dominates.
//!
//! The map is **sharded by query hash** so that concurrent request
//! threads and the batch writer contend only when they touch the same
//! shard, mirroring the cache store's layout.

use cosmo_kg::{GraphView, NodeKind, Relation};
use cosmo_lm::CosmoLm;
use cosmo_text::hash::hash_str_ns;
use cosmo_text::FxHashMap;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Hash namespace for feature-store shard routing.
const FEATURE_SHARD_NS: u32 = 0x5EEE;

/// Default shard count (matches the cache store's default).
const DEFAULT_SHARDS: usize = 8;

/// Structured features derived from a model response for one query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StructuredFeatures {
    /// The query these features describe.
    pub query: String,
    /// Intention key-value pairs: `(relation, tail, score)`, best first.
    pub intents: Vec<(Relation, String, f32)>,
    /// Semantic subcategory representation (dense embedding).
    pub subcategory: Vec<f32>,
    /// Detected strong intent, when the top tail clearly dominates.
    pub strong_intent: Option<String>,
}

/// How far the top score must exceed the runner-up for strong-intent
/// detection.
const STRONG_INTENT_MARGIN: f32 = 0.3;

/// Compute structured features for a query: KG intents when the query node
/// exists (cheap lookup), falling back to COSMO-LM generation, plus the
/// student embedding as the subcategory representation.
///
/// Generic over the graph backend: the mutable [`cosmo_kg::KnowledgeGraph`]
/// and the frozen [`cosmo_kg::KgSnapshot`] produce bitwise-identical
/// features (both enumerate adjacency in the same content-determined
/// order); production serving uses the snapshot.
pub fn compute_features<G: GraphView>(query: &str, kg: &G, lm: &CosmoLm) -> StructuredFeatures {
    let mut intents = kg_intents(query, kg);
    if intents.is_empty() {
        // cold query: ask the student model directly
        for (tail, score) in lm.generate(&cold_prompt(query), None, 5) {
            intents.push((Relation::UsedForFunc, tail, score));
        }
        squash_cold_scores(&mut intents);
    }
    assemble_features(query, intents, lm.embed_text(query))
}

/// Batched [`compute_features`]: KG lookups stay per query (cheap snapshot
/// reads), but every cold query's generation goes through one
/// [`CosmoLm::generate_batch`] call and every subcategory embedding
/// through one [`CosmoLm::embed_batch`] call — one matmul per stage for
/// the whole slice instead of two per query. Output is bitwise identical
/// to calling `compute_features` per query (the student's batched paths
/// are bitwise equal to its per-item paths), locked by a test.
pub fn compute_features_batch<G: GraphView>(
    queries: &[&str],
    kg: &G,
    lm: &CosmoLm,
) -> Vec<StructuredFeatures> {
    let mut intents: Vec<Vec<(Relation, String, f32)>> =
        queries.iter().map(|q| kg_intents(q, kg)).collect();
    let cold: Vec<usize> = intents
        .iter()
        .enumerate()
        .filter(|(_, i)| i.is_empty())
        .map(|(i, _)| i)
        .collect();
    if !cold.is_empty() {
        // PANIC: cold holds enumerate() indices over these same slices
        let prompts: Vec<String> = cold.iter().map(|&i| cold_prompt(queries[i])).collect();
        let prompt_refs: Vec<&str> = prompts.iter().map(String::as_str).collect();
        for (&i, generated) in cold.iter().zip(lm.generate_batch(&prompt_refs, None, 5)) {
            for (tail, score) in generated {
                intents[i].push((Relation::UsedForFunc, tail, score)); // PANIC: i < len
            }
            squash_cold_scores(&mut intents[i]); // PANIC: i < len, as above
        }
    }
    let embeds = lm.embed_batch(queries);
    queries
        .iter()
        .zip(intents)
        .zip(embeds)
        .map(|((q, ints), emb)| assemble_features(q, ints, emb))
        .collect()
}

/// KG intent lookup shared by the per-query and batched paths.
fn kg_intents<G: GraphView>(query: &str, kg: &G) -> Vec<(Relation, String, f32)> {
    let mut intents = Vec::new();
    if let Some(node) = kg.find_node(NodeKind::Query, query) {
        for e in kg.top_intents(node, 5) {
            intents.push((e.relation, kg.node_text(e.tail).to_string(), e.typicality));
        }
    }
    intents
}

/// The cold-query generation prompt.
fn cold_prompt(query: &str) -> String {
    format!("generate a USED_FOR_FUNC explanation in domain unknown for: search query: {query}")
}

/// Normalise cold-generation scores into (0,1) via softmax-ish squashing.
fn squash_cold_scores(intents: &mut [(Relation, String, f32)]) {
    if let Some(max) = intents.iter().map(|(_, _, s)| *s).reduce(f32::max) {
        for (_, _, s) in intents.iter_mut() {
            *s = 1.0 / (1.0 + (max - *s).exp());
        }
    }
}

/// Strong-intent detection + struct assembly shared by both paths.
fn assemble_features(
    query: &str,
    intents: Vec<(Relation, String, f32)>,
    subcategory: Vec<f32>,
) -> StructuredFeatures {
    let strong_intent = match intents.as_slice() {
        [] => None,
        [only] => Some(only.1.clone()),
        [first, second, ..] => {
            (first.2 - second.2 >= STRONG_INTENT_MARGIN).then(|| first.1.clone())
        }
    };
    StructuredFeatures {
        query: query.to_string(),
        subcategory,
        intents,
        strong_intent,
    }
}

/// Thread-safe, sharded query → features map.
#[derive(Debug)]
pub struct FeatureStore {
    shards: Vec<RwLock<FxHashMap<String, Arc<StructuredFeatures>>>>,
}

impl Default for FeatureStore {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl FeatureStore {
    /// Empty store with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty store with an explicit shard count (min 1).
    pub fn with_shards(shards: usize) -> Self {
        FeatureStore {
            shards: (0..shards.max(1)).map(|_| RwLock::default()).collect(),
        }
    }

    fn shard_of(&self, query: &str) -> &RwLock<FxHashMap<String, Arc<StructuredFeatures>>> {
        let idx = (hash_str_ns(query, FEATURE_SHARD_NS) % self.shards.len() as u64) as usize;
        // PANIC: idx is hash mod len; shards is clamped to >= 1 entry
        &self.shards[idx]
    }

    /// Insert (or replace) features for a query.
    pub fn put(&self, features: StructuredFeatures) -> Arc<StructuredFeatures> {
        let arc = Arc::new(features);
        self.shard_of(&arc.query)
            .write()
            .insert(arc.query.clone(), arc.clone());
        arc
    }

    /// Look up features.
    pub fn get(&self, query: &str) -> Option<Arc<StructuredFeatures>> {
        self.shard_of(query).read().get(query).cloned()
    }

    /// Number of stored queries (summed across shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmo_kg::{BehaviorKind, Edge, KnowledgeGraph};
    use cosmo_lm::StudentConfig;

    fn lm() -> CosmoLm {
        CosmoLm::new(
            StudentConfig::default(),
            vec![
                ("sleeping outdoors".into(), Some(Relation::UsedForFunc)),
                ("keeping warm".into(), Some(Relation::CapableOf)),
            ],
        )
    }

    fn kg_with_query(query: &str) -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        let q = kg.intern_node(NodeKind::Query, query);
        for (tail, typ) in [("sleeping outdoors", 0.9f32), ("lakeside trips", 0.4)] {
            let t = kg.intern_node(NodeKind::Intention, tail);
            kg.add_edge(Edge {
                head: q,
                relation: Relation::UsedForEve,
                tail: t,
                behavior: BehaviorKind::SearchBuy,
                category: 1,
                plausibility: 0.9,
                typicality: typ,
                support: 3,
            });
        }
        kg
    }

    #[test]
    fn kg_backed_features_prefer_graph() {
        let kg = kg_with_query("camping");
        let f = compute_features("camping", &kg, &lm());
        assert_eq!(f.intents.len(), 2);
        assert_eq!(f.intents[0].1, "sleeping outdoors");
        assert_eq!(f.strong_intent.as_deref(), Some("sleeping outdoors"));
        assert_eq!(f.subcategory.len(), lm().dim());
    }

    #[test]
    fn cold_query_falls_back_to_student() {
        let kg = KnowledgeGraph::new();
        let f = compute_features("brand new query", &kg, &lm());
        assert!(
            !f.intents.is_empty(),
            "student fallback must produce intents"
        );
    }

    #[test]
    fn store_roundtrip() {
        let store = FeatureStore::new();
        assert!(store.is_empty());
        let kg = kg_with_query("camping");
        let f = compute_features("camping", &kg, &lm());
        store.put(f);
        assert_eq!(store.len(), 1);
        assert!(store.get("camping").is_some());
        assert!(store.get("missing").is_none());
    }

    #[test]
    fn sharded_store_spreads_and_counts() {
        let store = FeatureStore::with_shards(4);
        let kg = KnowledgeGraph::new();
        let model = lm();
        for i in 0..32 {
            store.put(compute_features(&format!("query {i}"), &kg, &model));
        }
        assert_eq!(store.len(), 32);
        for i in 0..32 {
            assert!(store.get(&format!("query {i}")).is_some());
        }
        // replacing an existing key does not grow the store
        store.put(compute_features("query 0", &kg, &model));
        assert_eq!(store.len(), 32);
    }

    #[test]
    fn snapshot_features_bitwise_identical_to_store() {
        let kg = kg_with_query("camping");
        let snap = kg.freeze();
        let model = lm();
        for query in ["camping", "brand new query", ""] {
            let a = compute_features(query, &kg, &model);
            let b = compute_features(query, &snap, &model);
            assert_eq!(a.query, b.query);
            assert_eq!(a.strong_intent, b.strong_intent);
            assert_eq!(a.intents.len(), b.intents.len());
            for ((ra, ta, sa), (rb, tb, sb)) in a.intents.iter().zip(&b.intents) {
                assert_eq!(ra, rb);
                assert_eq!(ta, tb);
                assert_eq!(sa.to_bits(), sb.to_bits());
            }
            let bits = |v: &[f32]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.subcategory), bits(&b.subcategory));
        }
    }

    /// The batched path must be bitwise identical to per-query
    /// `compute_features` across a mix of KG-hit, cold, and empty queries,
    /// on both graph backends.
    #[test]
    fn batched_features_bitwise_identical_to_per_query() {
        let kg = kg_with_query("camping");
        let snap = kg.freeze();
        let model = lm();
        let queries = ["camping", "brand new query", "", "another cold one"];
        let assert_same = |a: &StructuredFeatures, b: &StructuredFeatures| {
            assert_eq!(a.query, b.query);
            assert_eq!(a.strong_intent, b.strong_intent);
            assert_eq!(a.intents.len(), b.intents.len());
            for ((ra, ta, sa), (rb, tb, sb)) in a.intents.iter().zip(&b.intents) {
                assert_eq!((ra, ta), (rb, tb));
                assert_eq!(sa.to_bits(), sb.to_bits(), "{ta} score bits");
            }
            let bits = |v: &[f32]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.subcategory), bits(&b.subcategory));
        };
        let batched = compute_features_batch(&queries, &kg, &model);
        let snap_batched = compute_features_batch(&queries, &snap, &model);
        assert_eq!(batched.len(), queries.len());
        for ((q, b), sb) in queries.iter().zip(&batched).zip(&snap_batched) {
            assert_same(b, &compute_features(q, &kg, &model));
            assert_same(sb, b);
        }
        assert!(compute_features_batch::<KnowledgeGraph>(&[], &kg, &model).is_empty());
    }

    #[test]
    fn no_strong_intent_when_scores_close() {
        let mut kg = KnowledgeGraph::new();
        let q = kg.intern_node(NodeKind::Query, "gift");
        for tail in ["for mom", "for dad"] {
            let t = kg.intern_node(NodeKind::Intention, tail);
            kg.add_edge(Edge {
                head: q,
                relation: Relation::UsedForAud,
                tail: t,
                behavior: BehaviorKind::SearchBuy,
                category: 0,
                plausibility: 0.9,
                typicality: 0.5,
                support: 1,
            });
        }
        let f = compute_features("gift", &kg, &lm());
        assert!(f.strong_intent.is_none());
    }
}
