//! Sharded asynchronous two-layer cache store (Figure 5, §3.5.1).
//!
//! "Employed to manage frequent searches and adapt to daily traffic
//! patterns, this store efficiently captures user queries through a
//! two-layered caching strategy, combining pre-loaded yearly frequent
//! searches and batch-processed daily requests."
//!
//! * **L1** — immutable after load: the yearly frequent searches, shared
//!   behind one read-mostly lock over an `Arc`'d map;
//! * **L2** — the daily layer, **sharded N ways by query hash**: each
//!   shard has its own read-write map, hit counter, and pending queue, so
//!   concurrent request threads and the batch writer contend only when
//!   they touch the same shard;
//! * misses land in a **bounded, deduplicated** per-shard pending queue —
//!   a membership set ensures N identical misses cost one slot, and an
//!   explicit [`AdmissionPolicy`] decides what happens when the queue is
//!   full (drop the oldest entry or reject the newcomer), with both
//!   outcomes surfaced in [`CacheMetrics`]. A missing query never blocks
//!   the request path on model inference, and a miss storm can never grow
//!   the queue without bound.

use crate::features::StructuredFeatures;
use cosmo_text::hash::hash_str_ns;
use cosmo_text::{FxHashMap, FxHashSet};
use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Hash namespace for shard routing (distinct from the view namespaces).
const SHARD_NS: u32 = 0x5EED;

/// Where a cache answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLayer {
    /// Pre-loaded yearly-frequent layer.
    L1,
    /// Daily batch-processed layer.
    L2,
}

/// Outcome of a request-path cache lookup, including what happened to
/// the query on a miss — the information the wire protocol's
/// `status` field reports.
#[derive(Debug, Clone)]
pub enum CacheLookup {
    /// Served from the given layer.
    Hit(Arc<StructuredFeatures>, CacheLayer),
    /// Miss: the query is queued (or was already queued — dedupe) for
    /// the next batch cycle.
    MissEnqueued,
    /// Miss: the shard's pending queue is full and
    /// [`AdmissionPolicy::RejectNew`] refused the query.
    MissRejected,
}

/// What to do with a new pending query when its shard's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Evict the oldest queued query to make room (favours recency —
    /// the dropped query will be re-queued on its next miss).
    #[default]
    DropOldest,
    /// Refuse the new query (favours queue stability — the rejected
    /// query will be re-queued on its next miss once there is room).
    RejectNew,
}

/// Cache sizing and admission parameters.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Max entries in the pre-loaded / promoted L1 layer.
    pub l1_capacity: usize,
    /// Max entries across all L2 shards (split evenly per shard).
    pub l2_capacity: usize,
    /// Number of shards for L2 / pending / hit-count state.
    pub shards: usize,
    /// Max queued pending queries across all shards (split evenly).
    pub pending_bound: usize,
    /// What to do with a miss when its shard's pending queue is full.
    pub admission: AdmissionPolicy,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            l1_capacity: 4096,
            l2_capacity: 16384,
            shards: 8,
            pending_bound: 4096,
            admission: AdmissionPolicy::DropOldest,
        }
    }
}

/// Hit/miss/admission counters.
#[derive(Debug, Default)]
pub struct CacheMetrics {
    /// L1 hits.
    pub l1_hits: AtomicU64,
    /// L2 hits.
    pub l2_hits: AtomicU64,
    /// Misses (enqueued for batch processing, subject to admission).
    pub misses: AtomicU64,
    /// Pending entries evicted by [`AdmissionPolicy::DropOldest`].
    pub dropped: AtomicU64,
    /// Pending enqueues refused by [`AdmissionPolicy::RejectNew`].
    pub rejected: AtomicU64,
    /// Distinct queries currently queued (live gauge).
    pending_now: AtomicU64,
    /// High-water mark of `pending_now` since the last reset.
    pending_high_water: AtomicU64,
}

impl CacheMetrics {
    /// Overall hit rate.
    pub fn hit_rate(&self) -> f64 {
        let h = self.l1_hits.load(Ordering::Relaxed) + self.l2_hits.load(Ordering::Relaxed);
        let total = h + self.misses.load(Ordering::Relaxed);
        if total == 0 {
            0.0
        } else {
            h as f64 / total as f64
        }
    }

    /// Distinct queries currently queued across all shards.
    pub fn pending_now(&self) -> usize {
        self.pending_now.load(Ordering::Relaxed) as usize
    }

    /// High-water mark of the pending queue since the last reset.
    pub fn pending_high_water(&self) -> usize {
        self.pending_high_water.load(Ordering::Relaxed) as usize
    }

    /// Reset all counters (the live pending gauge is preserved; the
    /// high-water mark restarts from the current queue depth).
    pub fn reset(&self) {
        self.l1_hits.store(0, Ordering::Relaxed);
        self.l2_hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
        self.rejected.store(0, Ordering::Relaxed);
        self.pending_high_water
            .store(self.pending_now.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn note_enqueued(&self) {
        let now = self.pending_now.fetch_add(1, Ordering::Relaxed) + 1;
        self.pending_high_water.fetch_max(now, Ordering::Relaxed);
    }

    fn note_removed(&self) {
        self.pending_now.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Daily layer of one shard: the map plus insertion order for eviction.
#[derive(Default)]
struct L2Shard {
    map: FxHashMap<String, Arc<StructuredFeatures>>,
    order: VecDeque<String>,
}

/// Pending queue of one shard: FIFO plus a membership set for dedupe.
#[derive(Default)]
struct PendingShard {
    queue: VecDeque<String>,
    members: FxHashSet<String>,
}

/// What the pending queue did with a missed query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EnqueueOutcome {
    /// Added to the queue (possibly evicting the oldest entry).
    Queued,
    /// Already queued — the miss cost no slot.
    Duplicate,
    /// Refused by [`AdmissionPolicy::RejectNew`].
    Rejected,
}

/// All mutable state owned by one shard.
#[derive(Default)]
struct Shard {
    l2: RwLock<L2Shard>,
    /// L2 access counts (for promotion on refresh).
    hits: Mutex<FxHashMap<String, u64>>,
    pending: Mutex<PendingShard>,
}

/// The sharded two-layer asynchronous cache.
pub struct CacheStore {
    l1: RwLock<Arc<FxHashMap<String, Arc<StructuredFeatures>>>>,
    shards: Vec<Shard>,
    /// Max entries promoted to L1 per refresh.
    l1_capacity: usize,
    /// Max entries held per L2 shard between refreshes (oldest evicted).
    l2_capacity_per_shard: usize,
    /// Max pending queries per shard.
    pending_bound_per_shard: usize,
    admission: AdmissionPolicy,
    /// Hit/miss/admission counters.
    pub metrics: CacheMetrics,
}

impl CacheStore {
    /// Create with a pre-loaded L1 layer (the "yearly frequent searches").
    pub fn new(preloaded: Vec<StructuredFeatures>, cfg: CacheConfig) -> Self {
        let l1: FxHashMap<String, Arc<StructuredFeatures>> = preloaded
            .into_iter()
            .map(|f| (f.query.clone(), Arc::new(f)))
            .collect();
        let shards = cfg.shards.max(1);
        CacheStore {
            l1: RwLock::new(Arc::new(l1)),
            shards: (0..shards).map(|_| Shard::default()).collect(),
            l1_capacity: cfg.l1_capacity.max(1),
            l2_capacity_per_shard: cfg.l2_capacity.div_ceil(shards).max(1),
            pending_bound_per_shard: cfg.pending_bound.div_ceil(shards).max(1),
            admission: cfg.admission,
            metrics: CacheMetrics::default(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, query: &str) -> &Shard {
        let idx = (hash_str_ns(query, SHARD_NS) % self.shards.len() as u64) as usize;
        // PANIC: idx is hash mod shards.len(), always in range; shards is
        // non-empty by construction (capacity is clamped to >= 1 shard).
        &self.shards[idx]
    }

    /// Request-path lookup: L1, then the query's L2 shard; on miss the
    /// query is queued (deduplicated, bounded) for the next batch cycle
    /// and the admission outcome is reported — the request path never
    /// blocks on model inference.
    pub fn lookup(&self, query: &str) -> CacheLookup {
        if let Some(f) = self.l1.read().get(query) {
            self.metrics.l1_hits.fetch_add(1, Ordering::Relaxed);
            return CacheLookup::Hit(f.clone(), CacheLayer::L1);
        }
        let shard = self.shard_of(query);
        if let Some(f) = shard.l2.read().map.get(query) {
            self.metrics.l2_hits.fetch_add(1, Ordering::Relaxed);
            *shard.hits.lock().entry(query.to_string()).or_insert(0) += 1;
            return CacheLookup::Hit(f.clone(), CacheLayer::L2);
        }
        self.metrics.misses.fetch_add(1, Ordering::Relaxed);
        match self.enqueue(shard, query) {
            EnqueueOutcome::Queued | EnqueueOutcome::Duplicate => CacheLookup::MissEnqueued,
            EnqueueOutcome::Rejected => CacheLookup::MissRejected,
        }
    }

    /// [`CacheStore::lookup`] flattened to an `Option` for callers that
    /// do not care whether a miss was enqueued or rejected.
    pub fn get(&self, query: &str) -> Option<(Arc<StructuredFeatures>, CacheLayer)> {
        match self.lookup(query) {
            CacheLookup::Hit(f, layer) => Some((f, layer)),
            CacheLookup::MissEnqueued | CacheLookup::MissRejected => None,
        }
    }

    /// Enqueue a missed query subject to dedupe and admission.
    fn enqueue(&self, shard: &Shard, query: &str) -> EnqueueOutcome {
        let mut pending = shard.pending.lock();
        if pending.members.contains(query) {
            // already queued: N identical misses cost one slot
            return EnqueueOutcome::Duplicate;
        }
        if pending.queue.len() >= self.pending_bound_per_shard {
            match self.admission {
                AdmissionPolicy::DropOldest => {
                    if let Some(oldest) = pending.queue.pop_front() {
                        pending.members.remove(&oldest);
                        self.metrics.dropped.fetch_add(1, Ordering::Relaxed);
                        self.metrics.note_removed();
                    }
                }
                AdmissionPolicy::RejectNew => {
                    self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                    return EnqueueOutcome::Rejected;
                }
            }
        }
        pending.queue.push_back(query.to_string());
        pending.members.insert(query.to_string());
        self.metrics.note_enqueued();
        EnqueueOutcome::Queued
    }

    /// Put queries back on the queue (used when a batch chunk fails);
    /// does not count misses. Returns how many were actually queued.
    pub fn requeue(&self, queries: &[String]) -> usize {
        queries
            .iter()
            .filter(|q| matches!(self.enqueue(self.shard_of(q), q), EnqueueOutcome::Queued))
            .count()
    }

    /// Drain up to `max` pending queries for batch processing,
    /// round-robin across shards so no shard starves. Entries are
    /// already distinct (dedupe happens at enqueue time).
    pub fn drain_pending(&self, max: usize) -> Vec<String> {
        let mut out = Vec::new();
        while out.len() < max {
            let mut progressed = false;
            for shard in &self.shards {
                if out.len() >= max {
                    break;
                }
                let mut pending = shard.pending.lock();
                if let Some(q) = pending.queue.pop_front() {
                    pending.members.remove(&q);
                    self.metrics.note_removed();
                    out.push(q);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        out
    }

    /// Number of distinct queued pending queries across all shards.
    pub fn pending_len(&self) -> usize {
        self.metrics.pending_now()
    }

    /// Batch-processor write path: install computed features into the
    /// owning L2 shards, evicting the oldest entries beyond each shard's
    /// capacity.
    pub fn install(&self, features: Vec<Arc<StructuredFeatures>>) {
        let mut by_shard: Vec<Vec<Arc<StructuredFeatures>>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for f in features {
            let idx = (hash_str_ns(&f.query, SHARD_NS) % self.shards.len() as u64) as usize;
            by_shard[idx].push(f); // PANIC: idx is hash mod len of this very vec
        }
        for (idx, batch) in by_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            // PANIC: by_shard was built with exactly shards.len() buckets
            let mut l2 = self.shards[idx].l2.write();
            for f in batch {
                if l2.map.insert(f.query.clone(), f.clone()).is_none() {
                    l2.order.push_back(f.query.clone());
                }
                while l2.map.len() > self.l2_capacity_per_shard {
                    let Some(oldest) = l2.order.pop_front() else {
                        break;
                    };
                    l2.map.remove(&oldest);
                }
            }
        }
    }

    /// Daily refresh: promote the hottest L2 entries (across all shards)
    /// into L1 up to the L1 capacity, then clear L2 — "adapt to daily
    /// traffic patterns". Returns the number of promoted entries.
    pub fn daily_refresh(&self) -> usize {
        // Lock order: every L2 shard (ascending), then every hits map —
        // the read path takes l2-then-hits within one shard, so this
        // global ordering cannot deadlock against it.
        // LOCK-ORDER: every shard's l2 lock, in ascending shard index.
        let mut l2_guards: Vec<_> = self.shards.iter().map(|s| s.l2.write()).collect();
        // LOCK-ORDER: hits after all l2, same ascending index discipline.
        let mut hits_guards: Vec<_> = self.shards.iter().map(|s| s.hits.lock()).collect();
        let mut scored: Vec<(u64, String, usize)> = Vec::new();
        for (idx, l2) in l2_guards.iter().enumerate() {
            for k in l2.map.keys() {
                let h = hits_guards
                    .get(idx)
                    .and_then(|g| g.get(k))
                    .copied()
                    .unwrap_or(0);
                scored.push((h, k.clone(), idx));
            }
        }
        scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        let old_l1 = self.l1.read().clone();
        let mut new_l1: FxHashMap<String, Arc<StructuredFeatures>> = (*old_l1).clone();
        let mut promoted = 0usize;
        for (_, key, idx) in scored {
            if new_l1.len() >= self.l1_capacity {
                break;
            }
            if let Some(f) = l2_guards.get(idx).and_then(|g| g.map.get(&key)) {
                if new_l1.insert(key.clone(), f.clone()).is_none() {
                    promoted += 1;
                }
            }
        }
        *self.l1.write() = Arc::new(new_l1);
        for l2 in l2_guards.iter_mut() {
            l2.map.clear();
            l2.order.clear();
        }
        for hits in hits_guards.iter_mut() {
            hits.clear();
        }
        promoted
    }

    /// Sizes of `(L1, total L2)`.
    pub fn sizes(&self) -> (usize, usize) {
        let l2: usize = self.shards.iter().map(|s| s.l2.read().map.len()).sum();
        (self.l1.read().len(), l2)
    }

    /// Per-shard L2 entry counts (for ops dashboards).
    pub fn l2_shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.l2.read().map.len()).collect()
    }

    /// Per-shard pending queue depths.
    pub fn pending_shard_sizes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.pending.lock().queue.len())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(q: &str) -> StructuredFeatures {
        StructuredFeatures {
            query: q.to_string(),
            intents: vec![],
            subcategory: vec![0.0; 4],
            strong_intent: None,
        }
    }

    fn single_shard(l1_capacity: usize) -> CacheConfig {
        CacheConfig {
            l1_capacity,
            shards: 1,
            ..CacheConfig::default()
        }
    }

    #[test]
    fn l1_hits_preloaded() {
        let cache = CacheStore::new(vec![feat("camping")], single_shard(10));
        let (f, layer) = cache.get("camping").unwrap();
        assert_eq!(layer, CacheLayer::L1);
        assert_eq!(f.query, "camping");
        assert_eq!(cache.metrics.l1_hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn miss_enqueues_then_l2_serves() {
        let cache = CacheStore::new(vec![], single_shard(10));
        assert!(cache.get("new query").is_none());
        assert_eq!(cache.pending_len(), 1);
        let drained = cache.drain_pending(10);
        assert_eq!(drained, vec!["new query"]);
        assert_eq!(cache.pending_len(), 0);
        cache.install(vec![Arc::new(feat("new query"))]);
        let (_, layer) = cache.get("new query").unwrap();
        assert_eq!(layer, CacheLayer::L2);
    }

    #[test]
    fn identical_misses_cost_one_slot() {
        let cache = CacheStore::new(vec![], single_shard(10));
        for _ in 0..5 {
            let _ = cache.get("dup");
        }
        // dedupe happens at enqueue time: pending_len reports distinct queries
        assert_eq!(cache.pending_len(), 1);
        assert_eq!(cache.metrics.misses.load(Ordering::Relaxed), 5);
        assert_eq!(cache.drain_pending(10), vec!["dup"]);
    }

    #[test]
    fn full_queue_drops_oldest() {
        let cfg = CacheConfig {
            shards: 1,
            pending_bound: 3,
            admission: AdmissionPolicy::DropOldest,
            ..CacheConfig::default()
        };
        let cache = CacheStore::new(vec![], cfg);
        for q in ["a", "b", "c", "d", "e"] {
            let _ = cache.get(q);
        }
        assert_eq!(cache.pending_len(), 3);
        assert_eq!(cache.metrics.dropped.load(Ordering::Relaxed), 2);
        assert_eq!(cache.metrics.rejected.load(Ordering::Relaxed), 0);
        // the oldest two were evicted; the newest three survive in order
        assert_eq!(cache.drain_pending(10), vec!["c", "d", "e"]);
    }

    #[test]
    fn full_queue_rejects_new() {
        let cfg = CacheConfig {
            shards: 1,
            pending_bound: 3,
            admission: AdmissionPolicy::RejectNew,
            ..CacheConfig::default()
        };
        let cache = CacheStore::new(vec![], cfg);
        for q in ["a", "b", "c", "d", "e"] {
            let _ = cache.get(q);
        }
        assert_eq!(cache.pending_len(), 3);
        assert_eq!(cache.metrics.rejected.load(Ordering::Relaxed), 2);
        assert_eq!(cache.metrics.dropped.load(Ordering::Relaxed), 0);
        // the first three keep their slots
        assert_eq!(cache.drain_pending(10), vec!["a", "b", "c"]);
    }

    #[test]
    fn lookup_reports_admission_outcome() {
        let cfg = CacheConfig {
            shards: 1,
            pending_bound: 1,
            admission: AdmissionPolicy::RejectNew,
            ..CacheConfig::default()
        };
        let cache = CacheStore::new(vec![feat("hot")], cfg);
        assert!(matches!(
            cache.lookup("hot"),
            CacheLookup::Hit(_, CacheLayer::L1)
        ));
        assert!(matches!(cache.lookup("a"), CacheLookup::MissEnqueued));
        // duplicate miss of a queued query still reports enqueued
        assert!(matches!(cache.lookup("a"), CacheLookup::MissEnqueued));
        // queue full: a new query is rejected
        assert!(matches!(cache.lookup("b"), CacheLookup::MissRejected));
        assert_eq!(cache.metrics.rejected.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn high_water_mark_tracks_peak() {
        let cache = CacheStore::new(vec![], single_shard(10));
        for q in ["a", "b", "c", "d"] {
            let _ = cache.get(q);
        }
        assert_eq!(cache.metrics.pending_high_water(), 4);
        let _ = cache.drain_pending(10);
        assert_eq!(
            cache.metrics.pending_high_water(),
            4,
            "high water survives drain"
        );
        cache.metrics.reset();
        assert_eq!(
            cache.metrics.pending_high_water(),
            0,
            "reset restarts from live depth"
        );
    }

    #[test]
    fn requeue_skips_miss_accounting() {
        let cache = CacheStore::new(vec![], single_shard(10));
        let n = cache.requeue(&["x".to_string(), "y".to_string(), "x".to_string()]);
        assert_eq!(n, 2, "duplicates are not re-queued");
        assert_eq!(cache.pending_len(), 2);
        assert_eq!(cache.metrics.misses.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn daily_refresh_promotes_hot_entries() {
        let cache = CacheStore::new(vec![feat("old")], single_shard(3));
        cache.install(vec![Arc::new(feat("hot")), Arc::new(feat("cold"))]);
        // touch "hot" several times
        for _ in 0..4 {
            let _ = cache.get("hot");
        }
        let _ = cache.get("cold");
        let promoted = cache.daily_refresh();
        assert_eq!(promoted, 2, "capacity 3 fits old + both");
        let (l1, l2) = cache.sizes();
        assert_eq!((l1, l2), (3, 0));
        let (_, layer) = cache.get("hot").unwrap();
        assert_eq!(layer, CacheLayer::L1);
    }

    #[test]
    fn refresh_respects_l1_capacity() {
        let cache = CacheStore::new(vec![feat("a")], single_shard(2));
        cache.install(vec![Arc::new(feat("b")), Arc::new(feat("c"))]);
        for _ in 0..3 {
            let _ = cache.get("b");
        }
        let _ = cache.get("c");
        let promoted = cache.daily_refresh();
        assert_eq!(promoted, 1, "only one slot free");
        assert!(cache.get("b").is_some(), "hotter entry promoted");
        assert!(cache.get("c").is_none());
    }

    #[test]
    fn l2_capacity_evicts_oldest() {
        let cfg = CacheConfig {
            shards: 1,
            l2_capacity: 2,
            ..CacheConfig::default()
        };
        let cache = CacheStore::new(vec![], cfg);
        cache.install(vec![
            Arc::new(feat("a")),
            Arc::new(feat("b")),
            Arc::new(feat("c")),
        ]);
        assert_eq!(cache.sizes().1, 2);
        assert!(cache.get("a").is_none(), "oldest entry evicted");
        assert!(cache.get("b").is_some());
        assert!(cache.get("c").is_some());
        // reinstalling an existing key does not double-count the order
        cache.install(vec![Arc::new(feat("c")), Arc::new(feat("d"))]);
        assert_eq!(cache.sizes().1, 2);
        assert!(cache.get("d").is_some());
    }

    #[test]
    fn sharded_refresh_promotes_across_shards() {
        let cfg = CacheConfig {
            l1_capacity: 8,
            shards: 4,
            ..CacheConfig::default()
        };
        let cache = CacheStore::new(vec![], cfg);
        let keys: Vec<String> = (0..6).map(|i| format!("q{i}")).collect();
        cache.install(keys.iter().map(|k| Arc::new(feat(k))).collect());
        assert_eq!(cache.sizes().1, 6);
        assert_eq!(cache.l2_shard_sizes().iter().sum::<usize>(), 6);
        for k in &keys {
            let _ = cache.get(k);
        }
        let promoted = cache.daily_refresh();
        assert_eq!(promoted, 6, "all entries fit the L1 capacity");
        assert_eq!(cache.sizes(), (6, 0));
        for k in &keys {
            assert_eq!(cache.get(k).unwrap().1, CacheLayer::L1);
        }
    }

    #[test]
    fn hit_rate_computation() {
        let cache = CacheStore::new(vec![feat("x")], single_shard(10));
        let _ = cache.get("x");
        let _ = cache.get("y");
        assert!((cache.metrics.hit_rate() - 0.5).abs() < 1e-9);
        cache.metrics.reset();
        assert_eq!(cache.metrics.hit_rate(), 0.0);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cfg = CacheConfig {
            l1_capacity: 100,
            shards: 8,
            ..CacheConfig::default()
        };
        let cache = Arc::new(CacheStore::new(vec![feat("hot")], cfg));
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = cache.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let _ = c.get("hot");
                    let _ = c.get(&format!("miss-{t}-{i}"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.metrics.l1_hits.load(Ordering::Relaxed), 2000);
        assert_eq!(cache.metrics.misses.load(Ordering::Relaxed), 2000);
    }
}
