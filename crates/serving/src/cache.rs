//! Asynchronous two-layer cache store (Figure 5, §3.5.1).
//!
//! "Employed to manage frequent searches and adapt to daily traffic
//! patterns, this store efficiently captures user queries through a
//! two-layered caching strategy, combining pre-loaded yearly frequent
//! searches and batch-processed daily requests."
//!
//! * **L1** — immutable after load: the yearly frequent searches, shared
//!   lock-free behind an `Arc`;
//! * **L2** — the daily layer: read-write, filled by the batch processor,
//!   cleared (with promotion of its hottest entries into L1) on the daily
//!   refresh;
//! * misses are recorded in a pending queue for the next batch cycle —
//!   this is the "asynchronous" part: a missing query never blocks the
//!   request path on model inference.

use crate::features::StructuredFeatures;
use cosmo_text::FxHashMap;
use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where a cache answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLayer {
    /// Pre-loaded yearly-frequent layer.
    L1,
    /// Daily batch-processed layer.
    L2,
}

/// Hit/miss counters.
#[derive(Debug, Default)]
pub struct CacheMetrics {
    /// L1 hits.
    pub l1_hits: AtomicU64,
    /// L2 hits.
    pub l2_hits: AtomicU64,
    /// Misses (enqueued for batch processing).
    pub misses: AtomicU64,
}

impl CacheMetrics {
    /// Overall hit rate.
    pub fn hit_rate(&self) -> f64 {
        let h = self.l1_hits.load(Ordering::Relaxed) + self.l2_hits.load(Ordering::Relaxed);
        let total = h + self.misses.load(Ordering::Relaxed);
        if total == 0 {
            0.0
        } else {
            h as f64 / total as f64
        }
    }

    /// Reset all counters.
    pub fn reset(&self) {
        self.l1_hits.store(0, Ordering::Relaxed);
        self.l2_hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// The two-layer asynchronous cache.
pub struct CacheStore {
    l1: RwLock<Arc<FxHashMap<String, Arc<StructuredFeatures>>>>,
    l2: RwLock<FxHashMap<String, Arc<StructuredFeatures>>>,
    /// L2 access counts (for promotion on refresh).
    l2_hits_per_key: Mutex<FxHashMap<String, u64>>,
    pending: Mutex<VecDeque<String>>,
    /// Insertion order of L2 keys (for capacity eviction).
    l2_order: Mutex<VecDeque<String>>,
    /// Max entries promoted to L1 per refresh.
    l1_capacity: usize,
    /// Max entries held in L2 between refreshes (oldest evicted first).
    l2_capacity: usize,
    /// Hit/miss counters.
    pub metrics: CacheMetrics,
}

impl CacheStore {
    /// Create with a pre-loaded L1 layer (the "yearly frequent searches").
    pub fn new(preloaded: Vec<StructuredFeatures>, l1_capacity: usize) -> Self {
        Self::with_l2_capacity(preloaded, l1_capacity, usize::MAX)
    }

    /// As [`CacheStore::new`] but with a bounded daily layer: when L2
    /// exceeds `l2_capacity`, the oldest entries are evicted (they will be
    /// recomputed on their next miss — bounded memory beats stale bloat
    /// between daily refreshes).
    pub fn with_l2_capacity(
        preloaded: Vec<StructuredFeatures>,
        l1_capacity: usize,
        l2_capacity: usize,
    ) -> Self {
        let l1: FxHashMap<String, Arc<StructuredFeatures>> = preloaded
            .into_iter()
            .map(|f| (f.query.clone(), Arc::new(f)))
            .collect();
        CacheStore {
            l1: RwLock::new(Arc::new(l1)),
            l2: RwLock::new(FxHashMap::default()),
            l2_hits_per_key: Mutex::new(FxHashMap::default()),
            pending: Mutex::new(VecDeque::new()),
            l2_order: Mutex::new(VecDeque::new()),
            l1_capacity,
            l2_capacity: l2_capacity.max(1),
            metrics: CacheMetrics::default(),
        }
    }

    /// Request-path lookup: L1, then L2; on miss the query is queued for
    /// the next batch cycle and `None` returns immediately.
    pub fn get(&self, query: &str) -> Option<(Arc<StructuredFeatures>, CacheLayer)> {
        if let Some(f) = self.l1.read().get(query) {
            self.metrics.l1_hits.fetch_add(1, Ordering::Relaxed);
            return Some((f.clone(), CacheLayer::L1));
        }
        if let Some(f) = self.l2.read().get(query) {
            self.metrics.l2_hits.fetch_add(1, Ordering::Relaxed);
            *self
                .l2_hits_per_key
                .lock()
                .entry(query.to_string())
                .or_insert(0) += 1;
            return Some((f.clone(), CacheLayer::L2));
        }
        self.metrics.misses.fetch_add(1, Ordering::Relaxed);
        self.pending.lock().push_back(query.to_string());
        None
    }

    /// Drain up to `max` distinct pending queries for batch processing.
    pub fn drain_pending(&self, max: usize) -> Vec<String> {
        let mut pending = self.pending.lock();
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        while out.len() < max {
            let Some(q) = pending.pop_front() else { break };
            if seen.insert(q.clone()) {
                out.push(q);
            }
        }
        out
    }

    /// Number of queued (possibly duplicate) pending queries.
    pub fn pending_len(&self) -> usize {
        self.pending.lock().len()
    }

    /// Batch-processor write path: install computed features into L2,
    /// evicting the oldest entries beyond the L2 capacity.
    pub fn install(&self, features: Vec<Arc<StructuredFeatures>>) {
        let mut l2 = self.l2.write();
        let mut order = self.l2_order.lock();
        for f in features {
            if l2.insert(f.query.clone(), f.clone()).is_none() {
                order.push_back(f.query.clone());
            }
            while l2.len() > self.l2_capacity {
                let Some(oldest) = order.pop_front() else { break };
                l2.remove(&oldest);
            }
        }
    }

    /// Daily refresh: promote the hottest L2 entries into L1 (up to the L1
    /// capacity), then clear L2 — "adapt to daily traffic patterns".
    /// Returns the number of promoted entries.
    pub fn daily_refresh(&self) -> usize {
        let mut l2 = self.l2.write();
        let mut hits = self.l2_hits_per_key.lock();
        let mut scored: Vec<(u64, String)> = l2
            .keys()
            .map(|k| (hits.get(k).copied().unwrap_or(0), k.clone()))
            .collect();
        scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        let old_l1 = self.l1.read().clone();
        let mut new_l1: FxHashMap<String, Arc<StructuredFeatures>> = (*old_l1).clone();
        let mut promoted = 0usize;
        for (_, key) in scored {
            if new_l1.len() >= self.l1_capacity {
                break;
            }
            if let Some(f) = l2.get(&key) {
                if new_l1.insert(key.clone(), f.clone()).is_none() {
                    promoted += 1;
                }
            }
        }
        *self.l1.write() = Arc::new(new_l1);
        l2.clear();
        self.l2_order.lock().clear();
        hits.clear();
        promoted
    }

    /// Sizes of `(L1, L2)`.
    pub fn sizes(&self) -> (usize, usize) {
        (self.l1.read().len(), self.l2.read().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(q: &str) -> StructuredFeatures {
        StructuredFeatures {
            query: q.to_string(),
            intents: vec![],
            subcategory: vec![0.0; 4],
            strong_intent: None,
        }
    }

    #[test]
    fn l1_hits_preloaded() {
        let cache = CacheStore::new(vec![feat("camping")], 10);
        let (f, layer) = cache.get("camping").unwrap();
        assert_eq!(layer, CacheLayer::L1);
        assert_eq!(f.query, "camping");
        assert_eq!(cache.metrics.l1_hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn miss_enqueues_then_l2_serves() {
        let cache = CacheStore::new(vec![], 10);
        assert!(cache.get("new query").is_none());
        assert_eq!(cache.pending_len(), 1);
        let drained = cache.drain_pending(10);
        assert_eq!(drained, vec!["new query"]);
        cache.install(vec![Arc::new(feat("new query"))]);
        let (_, layer) = cache.get("new query").unwrap();
        assert_eq!(layer, CacheLayer::L2);
    }

    #[test]
    fn drain_dedupes() {
        let cache = CacheStore::new(vec![], 10);
        for _ in 0..5 {
            let _ = cache.get("dup");
        }
        assert_eq!(cache.drain_pending(10).len(), 1);
    }

    #[test]
    fn daily_refresh_promotes_hot_entries() {
        let cache = CacheStore::new(vec![feat("old")], 3);
        cache.install(vec![Arc::new(feat("hot")), Arc::new(feat("cold"))]);
        // touch "hot" several times
        for _ in 0..4 {
            let _ = cache.get("hot");
        }
        let _ = cache.get("cold");
        let promoted = cache.daily_refresh();
        assert_eq!(promoted, 2, "capacity 3 fits old + both");
        let (l1, l2) = cache.sizes();
        assert_eq!((l1, l2), (3, 0));
        let (_, layer) = cache.get("hot").unwrap();
        assert_eq!(layer, CacheLayer::L1);
    }

    #[test]
    fn refresh_respects_l1_capacity() {
        let cache = CacheStore::new(vec![feat("a")], 2);
        cache.install(vec![Arc::new(feat("b")), Arc::new(feat("c"))]);
        for _ in 0..3 {
            let _ = cache.get("b");
        }
        let _ = cache.get("c");
        let promoted = cache.daily_refresh();
        assert_eq!(promoted, 1, "only one slot free");
        assert!(cache.get("b").is_some(), "hotter entry promoted");
        assert!(cache.get("c").is_none());
    }

    #[test]
    fn l2_capacity_evicts_oldest() {
        let cache = CacheStore::with_l2_capacity(vec![], 10, 2);
        cache.install(vec![Arc::new(feat("a")), Arc::new(feat("b")), Arc::new(feat("c"))]);
        assert_eq!(cache.sizes().1, 2);
        assert!(cache.get("a").is_none(), "oldest entry evicted");
        assert!(cache.get("b").is_some());
        assert!(cache.get("c").is_some());
        // reinstalling an existing key does not double-count the order
        cache.install(vec![Arc::new(feat("c")), Arc::new(feat("d"))]);
        assert_eq!(cache.sizes().1, 2);
        assert!(cache.get("d").is_some());
    }

    #[test]
    fn hit_rate_computation() {
        let cache = CacheStore::new(vec![feat("x")], 10);
        let _ = cache.get("x");
        let _ = cache.get("y");
        assert!((cache.metrics.hit_rate() - 0.5).abs() < 1e-9);
        cache.metrics.reset();
        assert_eq!(cache.metrics.hit_rate(), 0.0);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(CacheStore::new(vec![feat("hot")], 100));
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = cache.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let _ = c.get("hot");
                    let _ = c.get(&format!("miss-{t}-{i}"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.metrics.l1_hits.load(Ordering::Relaxed), 2000);
        assert_eq!(cache.metrics.misses.load(Ordering::Relaxed), 2000);
    }
}
