//! # cosmo-serving
//!
//! The online deployment of Figure 5: a sharded feature store that turns
//! COSMO-LM responses into structured features (intent key-value pairs,
//! semantic subcategory representations, strong-intent detection), a
//! two-layer asynchronous cache store, a persistent batch-worker pool,
//! daily model refresh with cache promotion, a feedback loop, and a
//! multi-day Zipf traffic simulator (sequential and concurrent) used by
//! the Figure 5 repro experiments.
//!
//! ## Hot-path architecture
//!
//! The cache's mutable state — the daily L2 layer, its hit counters, and
//! the pending-miss queue — is **sharded N ways by query hash**
//! ([`ServingConfig::shards`]), so concurrent request threads and the
//! batch writer only contend when they touch the same shard. Misses land
//! in a **bounded, deduplicated** pending queue: a membership set makes N
//! identical misses cost one slot, and an explicit [`AdmissionPolicy`]
//! (drop-oldest or reject-new) decides what happens when the queue is
//! full, with both outcomes surfaced in [`CacheMetrics`] and
//! [`protocol::OpsStats`]. Request latencies go into a fixed-bucket
//! log-scaled histogram ([`LatencyRecorder`]): O(1) lock-free record,
//! O(buckets) percentile.
//!
//! Batch processing runs on a **persistent worker pool** spawned once at
//! build time and fed over a channel — no per-cycle thread spawning. A
//! panicking worker chunk degrades the cycle ([`ServingError::BatchWorker`]:
//! the chunk is re-queued and counted) instead of killing the caller.
//!
//! ## Construction
//!
//! Systems are assembled with a validated builder:
//!
//! ```text
//! let system = ServingSystem::builder()
//!     .kg(kg)
//!     .lm(lm)
//!     .preload(["camping", "hiking gear"])
//!     .shards(16)
//!     .admission(AdmissionPolicy::RejectNew)
//!     .build()?;
//! ```
//!
//! ## Wire protocol
//!
//! The [`protocol`] module defines the typed request/response surface
//! ([`ServeRequest`], [`ServeResponse`], [`OpsStats`], …) with a
//! canonical std-only JSON encoding shared by the in-process path
//! ([`ServingSystem::serve`] / [`ServingSystem::handle`]) and the
//! `cosmo-http` network front end — both answer byte-identically for the
//! same cache state.
//!
//! Design constraint carried over from the paper: the request path is
//! cache-only and never blocks on model inference — a miss enqueues the
//! query for the next batch cycle, which is what lets the deployment meet
//! "Amazon's restricted search latency requirements" (§3.5.3).
//!
//! ## Hot snapshot swap
//!
//! Graph-derived state (the [`cosmo_kg::KgSnapshotView`], cache, and
//! feature store) is bundled into an immutable [`SnapshotGeneration`]
//! behind an RCU-style [`SnapshotHandle`]. `ServingSystem::swap_snapshot`
//! builds the whole next generation off to the side and publishes it with
//! one pointer store, so the daily refresh can replace the graph under
//! live traffic with zero dropped requests — see the [`swap`] module.

#![forbid(unsafe_code)]

pub mod cache;
pub mod error;
pub mod features;
pub mod histogram;
pub mod protocol;
pub mod sim;
pub mod swap;
pub mod system;
pub mod views;

pub use cache::{AdmissionPolicy, CacheConfig, CacheLayer, CacheLookup, CacheMetrics, CacheStore};
pub use error::ServingError;
pub use features::{compute_features, FeatureStore, StructuredFeatures};
pub use histogram::{bucket_index, LatencyRecorder};
pub use protocol::{
    ErrorBody, IntentItem, NavigateItem, NavigateRequest, NavigateResponse, OpsStats,
    ProtocolError, ReloadRequest, ReloadResponse, ServeRequest, ServeResponse, ServeStatus,
    SnapshotVersion, OPS_VERSION, PROTOCOL_VERSION,
};
pub use sim::{
    query_universe, simulate, simulate_concurrent, DayReport, ThroughputReport, TrafficConfig,
};
pub use swap::{SnapshotGeneration, SnapshotHandle};
#[allow(deprecated)] // deprecated shim stays importable until call sites finish migrating
pub use system::SystemSnapshot;
pub use system::{ServeResult, Served, ServingConfig, ServingSystem, ServingSystemBuilder};
#[allow(deprecated)] // deprecated shim stays importable until call sites finish migrating
pub use views::ops_view;
pub use views::{navigation_view, recommendation_view, relevance_view};
