//! # cosmo-serving
//!
//! The online deployment of Figure 5: a feature store that turns COSMO-LM
//! responses into structured features (intent key-value pairs, semantic
//! subcategory representations, strong-intent detection), a two-layer
//! asynchronous cache store (pre-loaded yearly-frequent searches + the
//! batch-processed daily layer), a batch processor on a crossbeam worker
//! pool, daily model refresh with cache promotion, a feedback loop, and a
//! multi-day Zipf traffic simulator used by the Figure 5 repro experiment.
//!
//! Design constraint carried over from the paper: the request path is
//! cache-only and never blocks on model inference — a miss enqueues the
//! query for the next batch cycle, which is what lets the deployment meet
//! "Amazon's restricted search latency requirements" (§3.5.3).

pub mod cache;
pub mod features;
pub mod sim;
pub mod system;
pub mod views;

pub use cache::{CacheLayer, CacheMetrics, CacheStore};
pub use features::{compute_features, FeatureStore, StructuredFeatures};
pub use sim::{query_universe, simulate, DayReport, TrafficConfig};
pub use system::{LatencyRecorder, ServeResult, ServingConfig, ServingSystem, SystemSnapshot};
pub use views::{navigation_view, recommendation_view, relevance_view};
