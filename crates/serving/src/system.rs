//! The deployed serving system (Figure 5, §3.5.2).
//!
//! Operational flow implemented here:
//!
//! * **Request handling** — "initial query checks against the Asynchronous
//!   Cache Store quickly retrieve responses for frequent queries or forward
//!   others for batch processing";
//! * **Batch processing and cache update** — pending queries are processed
//!   by a COSMO-LM worker pool (crossbeam scoped threads), formatted into
//!   structured features by the Feature Store, and installed into the
//!   daily cache layer;
//! * **Daily refresh** — the model ingests new behaviour logs (simulated
//!   as a refresh counter) and the cache promotes hot entries;
//! * **Feedback loop** — served interactions are recorded and can be fed
//!   back as new behaviour data.

use crate::cache::{CacheLayer, CacheStore};
use crate::features::{compute_features, FeatureStore, StructuredFeatures};
use cosmo_kg::KnowledgeGraph;
use cosmo_lm::CosmoLm;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Worker threads for batch processing.
    pub workers: usize,
    /// Max queries per batch cycle.
    pub batch_size: usize,
    /// L1 capacity (yearly-frequent layer).
    pub l1_capacity: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig { workers: 4, batch_size: 256, l1_capacity: 4096 }
    }
}

/// Response of the request path.
#[derive(Debug, Clone)]
pub struct ServeResult {
    /// Features when cached; `None` means the query was forwarded to batch
    /// processing and downstream applications fall back this request.
    pub features: Option<Arc<StructuredFeatures>>,
    /// Which layer answered (when cached).
    pub layer: Option<CacheLayer>,
    /// Request-path latency in microseconds.
    pub latency_us: u64,
}

/// Latency percentile recorder.
#[derive(Debug, Default)]
pub struct LatencyRecorder {
    samples_us: Mutex<Vec<u64>>,
}

impl LatencyRecorder {
    /// Record one sample.
    pub fn record(&self, us: u64) {
        self.samples_us.lock().push(us);
    }

    /// `p` in `[0,1]` percentile of recorded samples (0 when empty).
    pub fn percentile(&self, p: f64) -> u64 {
        let mut s = self.samples_us.lock().clone();
        if s.is_empty() {
            return 0;
        }
        s.sort_unstable();
        let idx = ((s.len() - 1) as f64 * p).round() as usize;
        s[idx]
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_us.lock().len()
    }

    /// True when no samples recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clear samples.
    pub fn reset(&self) {
        self.samples_us.lock().clear();
    }
}

/// One operational snapshot of the serving system (the quantities an ops
/// dashboard for Figure 5 would chart).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSnapshot {
    /// Entries in the pre-loaded L1 layer.
    pub l1_size: usize,
    /// Entries in the daily L2 layer.
    pub l2_size: usize,
    /// Queries queued for the next batch cycle.
    pub pending: usize,
    /// Cumulative cache hit rate.
    pub hit_rate: f64,
    /// p50 request latency (µs).
    pub p50_us: u64,
    /// p99 request latency (µs).
    pub p99_us: u64,
    /// Feature-store size.
    pub features: usize,
    /// Current model version.
    pub model_version: u64,
}

/// The full serving system.
pub struct ServingSystem {
    /// The two-layer cache.
    pub cache: CacheStore,
    /// The feature store.
    pub features: FeatureStore,
    /// Request-path latency.
    pub latency: LatencyRecorder,
    kg: Arc<KnowledgeGraph>,
    lm: Arc<CosmoLm>,
    cfg: ServingConfig,
    model_version: AtomicU64,
    feedback: Mutex<Vec<(String, String)>>,
}

impl ServingSystem {
    /// Build the system; `preload` seeds the L1 yearly-frequent layer
    /// (features are computed eagerly for those queries).
    pub fn new(
        kg: Arc<KnowledgeGraph>,
        lm: Arc<CosmoLm>,
        preload: &[String],
        cfg: ServingConfig,
    ) -> Self {
        let preloaded: Vec<StructuredFeatures> = preload
            .iter()
            .map(|q| compute_features(q, &kg, &lm))
            .collect();
        let features = FeatureStore::new();
        for f in &preloaded {
            features.put(f.clone());
        }
        ServingSystem {
            cache: CacheStore::new(preloaded, cfg.l1_capacity),
            features,
            latency: LatencyRecorder::default(),
            kg,
            lm,
            cfg,
            model_version: AtomicU64::new(1),
            feedback: Mutex::new(Vec::new()),
        }
    }

    /// Request path: cache-only, never blocks on model inference.
    pub fn handle_request(&self, query: &str) -> ServeResult {
        let start = Instant::now();
        let hit = self.cache.get(query);
        let latency_us = start.elapsed().as_micros() as u64;
        self.latency.record(latency_us);
        match hit {
            Some((f, layer)) => ServeResult { features: Some(f), layer: Some(layer), latency_us },
            None => ServeResult { features: None, layer: None, latency_us },
        }
    }

    /// One batch cycle: drain pending queries, compute features on the
    /// worker pool, install into L2 and the feature store. Returns the
    /// number of queries processed.
    pub fn run_batch_cycle(&self) -> usize {
        let queries = self.cache.drain_pending(self.cfg.batch_size);
        if queries.is_empty() {
            return 0;
        }
        let computed: Mutex<Vec<StructuredFeatures>> =
            Mutex::new(Vec::with_capacity(queries.len()));
        let chunk = queries.len().div_ceil(self.cfg.workers.max(1));
        let computed_ref = &computed;
        crossbeam::thread::scope(|scope| {
            for part in queries.chunks(chunk.max(1)) {
                scope.spawn(move |_| {
                    let mut local = Vec::with_capacity(part.len());
                    for q in part {
                        local.push(compute_features(q, &self.kg, &self.lm));
                    }
                    computed_ref.lock().extend(local);
                });
            }
        })
        .expect("batch worker panicked");
        let computed = computed.into_inner();
        let mut arcs = Vec::with_capacity(computed.len());
        for f in computed {
            arcs.push(self.features.put(f));
        }
        let n = arcs.len();
        self.cache.install(arcs);
        n
    }

    /// Daily refresh: bump the model version (simulating the SageMaker
    /// re-deployment with fresh behaviour logs) and rotate the cache.
    /// Returns the number of promoted L1 entries.
    pub fn daily_refresh(&self) -> usize {
        self.model_version.fetch_add(1, Ordering::Relaxed);
        self.cache.daily_refresh()
    }

    /// Current model version (increments per daily refresh).
    pub fn model_version(&self) -> u64 {
        self.model_version.load(Ordering::Relaxed)
    }

    /// Operational snapshot for dashboards/alerts.
    pub fn snapshot(&self) -> SystemSnapshot {
        let (l1_size, l2_size) = self.cache.sizes();
        SystemSnapshot {
            l1_size,
            l2_size,
            pending: self.cache.pending_len(),
            hit_rate: self.cache.metrics.hit_rate(),
            p50_us: self.latency.percentile(0.5),
            p99_us: self.latency.percentile(0.99),
            features: self.features.len(),
            model_version: self.model_version(),
        }
    }

    /// Feedback loop: record a served interaction (query, purchased
    /// product) for the next model refresh.
    pub fn record_feedback(&self, query: &str, product: &str) {
        self.feedback.lock().push((query.to_string(), product.to_string()));
    }

    /// Drain accumulated feedback (consumed by the next offline run).
    pub fn drain_feedback(&self) -> Vec<(String, String)> {
        std::mem::take(&mut self.feedback.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmo_kg::Relation;
    use cosmo_lm::StudentConfig;

    fn system(preload: &[&str]) -> ServingSystem {
        let lm = Arc::new(CosmoLm::new(
            StudentConfig::default(),
            vec![
                ("sleeping outdoors".into(), Some(Relation::UsedForFunc)),
                ("keeping warm".into(), Some(Relation::CapableOf)),
            ],
        ));
        let kg = Arc::new(KnowledgeGraph::new());
        let preload: Vec<String> = preload.iter().map(|s| s.to_string()).collect();
        ServingSystem::new(kg, lm, &preload, ServingConfig { workers: 2, ..Default::default() })
    }

    #[test]
    fn preloaded_queries_hit_l1() {
        let sys = system(&["camping"]);
        let r = sys.handle_request("camping");
        assert!(r.features.is_some());
        assert_eq!(r.layer, Some(CacheLayer::L1));
    }

    #[test]
    fn miss_then_batch_then_l2_hit() {
        let sys = system(&[]);
        let r = sys.handle_request("hiking gear");
        assert!(r.features.is_none(), "first request must not block");
        let processed = sys.run_batch_cycle();
        assert_eq!(processed, 1);
        let r2 = sys.handle_request("hiking gear");
        assert_eq!(r2.layer, Some(CacheLayer::L2));
        assert!(sys.features.get("hiking gear").is_some());
    }

    #[test]
    fn batch_cycle_uses_all_pending() {
        let sys = system(&[]);
        for i in 0..20 {
            let _ = sys.handle_request(&format!("query {i}"));
        }
        assert_eq!(sys.run_batch_cycle(), 20);
        assert_eq!(sys.run_batch_cycle(), 0, "queue drained");
    }

    #[test]
    fn daily_refresh_bumps_model_version() {
        let sys = system(&[]);
        assert_eq!(sys.model_version(), 1);
        let _ = sys.handle_request("q");
        sys.run_batch_cycle();
        let _ = sys.handle_request("q"); // L2 hit → promotion candidate
        let promoted = sys.daily_refresh();
        assert_eq!(sys.model_version(), 2);
        assert_eq!(promoted, 1);
        let r = sys.handle_request("q");
        assert_eq!(r.layer, Some(CacheLayer::L1));
    }

    #[test]
    fn snapshot_reflects_state() {
        let sys = system(&["hot"]);
        let _ = sys.handle_request("hot");
        let _ = sys.handle_request("cold");
        let snap = sys.snapshot();
        assert_eq!(snap.l1_size, 1);
        assert_eq!(snap.pending, 1);
        assert!((snap.hit_rate - 0.5).abs() < 1e-9);
        assert_eq!(snap.model_version, 1);
        sys.run_batch_cycle();
        let snap2 = sys.snapshot();
        assert_eq!(snap2.pending, 0);
        assert_eq!(snap2.l2_size, 1);
        assert!(snap2.features >= 2);
    }

    #[test]
    fn latency_recorder_percentiles() {
        let rec = LatencyRecorder::default();
        for v in [1u64, 2, 3, 4, 100] {
            rec.record(v);
        }
        assert_eq!(rec.percentile(0.5), 3);
        assert_eq!(rec.percentile(1.0), 100);
        assert_eq!(rec.len(), 5);
    }

    #[test]
    fn feedback_loop_roundtrip() {
        let sys = system(&[]);
        sys.record_feedback("camping", "acme tent");
        sys.record_feedback("camping", "acme mattress");
        let fb = sys.drain_feedback();
        assert_eq!(fb.len(), 2);
        assert!(sys.drain_feedback().is_empty());
    }
}
