//! The deployed serving system (Figure 5, §3.5.2).
//!
//! Operational flow implemented here:
//!
//! * **Request handling** — "initial query checks against the Asynchronous
//!   Cache Store quickly retrieve responses for frequent queries or forward
//!   others for batch processing"; the request path is cache-only and
//!   never blocks on model inference;
//! * **Batch processing and cache update** — pending queries are drained
//!   from the bounded queue and dispatched to the shared persistent
//!   worker pool ([`cosmo_exec::WorkerPool`], spawned once at build time
//!   and fed over a bounded channel — no per-cycle thread spawning),
//!   formatted into structured features by the Feature Store, and
//!   installed into the daily cache layer. A panicking worker chunk
//!   degrades the cycle (re-queued + surfaced in metrics) instead of
//!   killing the caller;
//! * **Daily refresh** — the model ingests new behaviour logs (simulated
//!   as a refresh counter) and the cache promotes hot entries;
//! * **Feedback loop** — served interactions are recorded and can be fed
//!   back as new behaviour data.
//!
//! Systems are built with [`ServingSystem::builder`]:
//!
//! ```text
//! let system = ServingSystem::builder()
//!     .kg(kg)
//!     .lm(lm)
//!     .preload(hot_queries)
//!     .workers(8)
//!     .shards(16)
//!     .build()?;
//! ```

use crate::cache::{AdmissionPolicy, CacheConfig, CacheLayer, CacheLookup, CacheStore};
use crate::error::ServingError;
use crate::features::{compute_features_batch, FeatureStore, StructuredFeatures};
pub use crate::histogram::LatencyRecorder;
use crate::protocol::{OpsStats, ServeRequest, ServeResponse, ServeStatus, OPS_VERSION};
use crate::swap::{SnapshotGeneration, SnapshotHandle};
use cosmo_exec::{ChunkResult, WorkerPool};
use cosmo_kg::{KgSnapshot, KgSnapshotView, KnowledgeGraph};
use cosmo_lm::CosmoLm;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Serving configuration: worker pool, batching, cache sizing, and
/// pending-queue admission, validated at build time.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Worker threads in the persistent batch pool.
    pub workers: usize,
    /// Max queries per batch cycle.
    pub batch_size: usize,
    /// L1 capacity (yearly-frequent layer).
    pub l1_capacity: usize,
    /// Total L2 capacity (daily layer, split across shards).
    pub l2_capacity: usize,
    /// Shard count for L2 / pending / hit-count / feature-store state.
    pub shards: usize,
    /// Total bound on queued pending queries (split across shards).
    pub pending_bound: usize,
    /// What to do with a miss when its pending queue shard is full.
    pub admission: AdmissionPolicy,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            workers: 4,
            batch_size: 256,
            l1_capacity: 4096,
            l2_capacity: 16384,
            shards: 8,
            pending_bound: 4096,
            admission: AdmissionPolicy::DropOldest,
        }
    }
}

impl ServingConfig {
    /// Reject configurations that cannot serve: zero workers, zero batch
    /// size, zero capacities, zero shards, or a zero queue bound.
    pub fn validate(&self) -> Result<(), ServingError> {
        for (value, what) in [
            (self.workers, "workers"),
            (self.batch_size, "batch_size"),
            (self.l1_capacity, "l1_capacity"),
            (self.l2_capacity, "l2_capacity"),
            (self.shards, "shards"),
            (self.pending_bound, "pending_bound"),
        ] {
            if value == 0 {
                return Err(ServingError::InvalidConfig(format!("{what} must be > 0")));
            }
        }
        Ok(())
    }

    fn cache_config(&self) -> CacheConfig {
        CacheConfig {
            l1_capacity: self.l1_capacity,
            l2_capacity: self.l2_capacity,
            shards: self.shards,
            pending_bound: self.pending_bound,
            admission: self.admission,
        }
    }
}

/// Response of the request path.
#[derive(Debug, Clone)]
pub struct ServeResult {
    /// Features when cached; `None` means the query was forwarded to batch
    /// processing and downstream applications fall back this request.
    pub features: Option<Arc<StructuredFeatures>>,
    /// Which layer answered (when cached).
    pub layer: Option<CacheLayer>,
    /// Request-path latency in microseconds.
    pub latency_us: u64,
}

/// A typed request answered in-process: the wire-identical
/// [`ServeResponse`] plus the in-process extras (the full feature object
/// and the measured latency) that deliberately stay off the wire.
#[derive(Debug, Clone)]
pub struct Served {
    /// The response, exactly as the HTTP front end would serialise it.
    pub response: ServeResponse,
    /// The full cached features on a hit (in-process callers get the
    /// whole object, not just the rendered intents).
    pub features: Option<Arc<StructuredFeatures>>,
    /// Request-path latency in microseconds (measured, not part of the
    /// response body — that is what keeps the body deterministic).
    pub latency_us: u64,
}

/// One operational snapshot of the serving system (the quantities an ops
/// dashboard for Figure 5 would chart).
#[deprecated(
    since = "0.6.0",
    note = "use the versioned `protocol::OpsStats` returned by `ServingSystem::ops()`"
)]
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSnapshot {
    /// Entries in the pre-loaded L1 layer.
    pub l1_size: usize,
    /// Entries in the daily L2 layer (all shards).
    pub l2_size: usize,
    /// Per-shard L2 entry counts.
    pub l2_shard_sizes: Vec<usize>,
    /// Distinct queries queued for the next batch cycle.
    pub pending: usize,
    /// Peak queue depth since the last metrics reset.
    pub queue_high_water: usize,
    /// Pending entries evicted under `AdmissionPolicy::DropOldest`.
    pub dropped: u64,
    /// Pending enqueues refused under `AdmissionPolicy::RejectNew`.
    pub rejected: u64,
    /// Batch-worker chunks that panicked (queries were re-queued).
    pub batch_failed_chunks: u64,
    /// Cumulative cache hit rate.
    pub hit_rate: f64,
    /// p50 request latency (µs).
    pub p50_us: u64,
    /// p99 request latency (µs).
    pub p99_us: u64,
    /// Feature-store size.
    pub features: usize,
    /// Current model version.
    pub model_version: u64,
}

/// Test hook: a query with this text makes a worker panic mid-chunk.
#[cfg(test)]
pub(crate) const PANIC_QUERY: &str = "__cosmo_injected_worker_panic__";

/// Builder for [`ServingSystem`]: named, validated configuration — the
/// only way to construct a system.
#[derive(Default)]
pub struct ServingSystemBuilder {
    kg: Option<Arc<KnowledgeGraph>>,
    snapshot: Option<Arc<KgSnapshot>>,
    view: Option<KgSnapshotView>,
    lm: Option<Arc<CosmoLm>>,
    preload: Vec<String>,
    cfg: ServingConfig,
}

impl ServingSystemBuilder {
    /// Knowledge graph backing feature computation. Frozen into a
    /// [`KgSnapshot`] at build time — serving only ever reads the graph,
    /// and the CSR snapshot answers lookups several times faster than the
    /// hashmap-backed builder. Pass a pre-frozen (or file-loaded) snapshot
    /// via [`ServingSystemBuilder::snapshot`] to skip the freeze; one of
    /// the two is required.
    pub fn kg(mut self, kg: Arc<KnowledgeGraph>) -> Self {
        self.kg = Some(kg);
        self
    }

    /// Frozen knowledge-graph snapshot backing feature computation —
    /// typically loaded from a file written offline ([`KgSnapshot::load`]),
    /// mirroring the paper's offline-materialise → online-serve boundary.
    /// Takes precedence over [`ServingSystemBuilder::kg`].
    pub fn snapshot(mut self, snapshot: Arc<KgSnapshot>) -> Self {
        self.snapshot = Some(snapshot);
        self
    }

    /// Snapshot view of either format version — the way to serve a
    /// zero-copy mapped v2 file ([`KgSnapshotView::open`]). Takes
    /// precedence over [`ServingSystemBuilder::snapshot`] and
    /// [`ServingSystemBuilder::kg`].
    pub fn view(mut self, view: KgSnapshotView) -> Self {
        self.view = Some(view);
        self
    }

    /// COSMO-LM student model for cold queries (required).
    pub fn lm(mut self, lm: Arc<CosmoLm>) -> Self {
        self.lm = Some(lm);
        self
    }

    /// Queries to pre-compute into the L1 yearly-frequent layer.
    pub fn preload<I, S>(mut self, queries: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.preload = queries.into_iter().map(Into::into).collect();
        self
    }

    /// Replace the whole configuration at once.
    pub fn config(mut self, cfg: ServingConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Worker threads in the persistent batch pool.
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// Max queries per batch cycle.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.cfg.batch_size = batch_size;
        self
    }

    /// L1 (yearly-frequent layer) capacity.
    pub fn l1_capacity(mut self, l1_capacity: usize) -> Self {
        self.cfg.l1_capacity = l1_capacity;
        self
    }

    /// Total L2 (daily layer) capacity.
    pub fn l2_capacity(mut self, l2_capacity: usize) -> Self {
        self.cfg.l2_capacity = l2_capacity;
        self
    }

    /// Shard count for cache and feature-store state.
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.shards = shards;
        self
    }

    /// Total bound on queued pending queries.
    pub fn pending_bound(mut self, pending_bound: usize) -> Self {
        self.cfg.pending_bound = pending_bound;
        self
    }

    /// Admission policy for a full pending queue.
    pub fn admission(mut self, admission: AdmissionPolicy) -> Self {
        self.cfg.admission = admission;
        self
    }

    /// Validate the configuration, pre-compute the preloaded features,
    /// spawn the worker pool, and assemble the system.
    pub fn build(self) -> Result<ServingSystem, ServingError> {
        self.cfg.validate()?;
        let view = match (self.view, self.snapshot, self.kg) {
            (Some(view), _, _) => view,
            (None, Some(snapshot), _) => {
                KgSnapshotView::Owned(Arc::try_unwrap(snapshot).unwrap_or_else(|a| (*a).clone()))
            }
            (None, None, Some(kg)) => KgSnapshotView::Owned(kg.freeze()),
            (None, None, None) => return Err(ServingError::MissingKnowledgeGraph),
        };
        let lm = self.lm.ok_or(ServingError::MissingModel)?;
        let generation =
            ServingSystem::build_generation(1, Arc::new(view), &self.preload, &self.cfg, &lm);
        let pool = WorkerPool::new(self.cfg.workers);
        Ok(ServingSystem {
            handle: SnapshotHandle::new(generation),
            latency: LatencyRecorder::default(),
            preload: self.preload,
            cfg: self.cfg,
            lm,
            pool,
            swap_lock: Mutex::new(()),
            batch_failed_chunks: AtomicU64::new(0),
            model_version: AtomicU64::new(1),
            feedback: Mutex::new(Vec::new()),
        })
    }
}

/// The full serving system.
///
/// All graph-derived state (view + cache + feature store) lives in the
/// current [`SnapshotGeneration`] behind the RCU [`SnapshotHandle`];
/// access it through [`ServingSystem::current`]. Latency, model version
/// and the worker pool are generation-independent and stay here.
pub struct ServingSystem {
    /// Request-path latency histogram (survives snapshot swaps).
    pub latency: LatencyRecorder,
    handle: SnapshotHandle,
    preload: Vec<String>,
    cfg: ServingConfig,
    lm: Arc<CosmoLm>,
    pool: WorkerPool,
    /// Serialises swaps so generation numbers are strictly increasing.
    swap_lock: Mutex<()>,
    batch_failed_chunks: AtomicU64,
    model_version: AtomicU64,
    feedback: Mutex<Vec<(String, String)>>,
}

impl ServingSystem {
    /// Start building a serving system.
    pub fn builder() -> ServingSystemBuilder {
        ServingSystemBuilder::default()
    }

    /// The active configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.cfg
    }

    /// The currently published snapshot generation (view + cache +
    /// feature store). Take it once per logical operation so a
    /// concurrent swap cannot tear your reads across generations.
    pub fn current(&self) -> Arc<SnapshotGeneration> {
        self.handle.load()
    }

    /// The current generation number (1 at build, +1 per swap).
    pub fn generation(&self) -> u64 {
        self.current().generation
    }

    /// The graph view the current generation answers from.
    pub fn kg_view(&self) -> Arc<KgSnapshotView> {
        Arc::clone(&self.current().view)
    }

    /// Atomically replace the serving snapshot under live traffic.
    ///
    /// The entire next generation — view, preload-warmed cache, feature
    /// store — is built off to the side and then published with one
    /// pointer store; requests in flight finish on the generation they
    /// started on. Returns the new generation number.
    pub fn swap_snapshot(&self, view: KgSnapshotView) -> u64 {
        let _serialised = self.swap_lock.lock();
        let next = self.handle.load().generation + 1;
        let generation =
            Self::build_generation(next, Arc::new(view), &self.preload, &self.cfg, &self.lm);
        self.handle.publish(generation);
        next
    }

    /// Assemble one generation: preload features computed against *its*
    /// view, a fresh cache warmed with them, a fresh feature store.
    fn build_generation(
        generation: u64,
        view: Arc<KgSnapshotView>,
        preload: &[String],
        cfg: &ServingConfig,
        lm: &Arc<CosmoLm>,
    ) -> SnapshotGeneration {
        let preload_refs: Vec<&str> = preload.iter().map(String::as_str).collect();
        let preloaded: Vec<StructuredFeatures> = compute_features_batch(&preload_refs, &*view, lm);
        let features = FeatureStore::with_shards(cfg.shards);
        for f in &preloaded {
            features.put(f.clone());
        }
        let cache = CacheStore::new(preloaded, cfg.cache_config());
        SnapshotGeneration {
            generation,
            view,
            cache,
            features,
        }
    }

    /// Typed request path: cache-only, never blocks on model inference.
    ///
    /// This is the single entry point both surfaces share — the HTTP
    /// front end serialises [`Served::response`] verbatim, so network
    /// and in-process callers get byte-identical answers for the same
    /// cache state.
    pub fn serve(&self, req: &ServeRequest) -> Served {
        let start = Instant::now();
        let generation = self.current();
        let lookup = generation.cache.lookup(&req.query);
        let latency_us = start.elapsed().as_micros() as u64;
        self.latency.record(latency_us);
        let model_version = self.model_version();
        let snapshot_generation = generation.generation;
        match lookup {
            CacheLookup::Hit(f, layer) => Served {
                response: ServeResponse::for_hit(
                    req,
                    &f,
                    layer,
                    model_version,
                    snapshot_generation,
                ),
                features: Some(f),
                latency_us,
            },
            CacheLookup::MissEnqueued => Served {
                response: ServeResponse::for_miss(
                    req,
                    ServeStatus::Enqueued,
                    model_version,
                    snapshot_generation,
                ),
                features: None,
                latency_us,
            },
            CacheLookup::MissRejected => Served {
                response: ServeResponse::for_miss(
                    req,
                    ServeStatus::Rejected,
                    model_version,
                    snapshot_generation,
                ),
                features: None,
                latency_us,
            },
        }
    }

    /// [`ServingSystem::serve`] reduced to the wire response.
    pub fn handle(&self, req: &ServeRequest) -> ServeResponse {
        self.serve(req).response
    }

    /// Untyped request path, kept for callers that only have a query
    /// string: a thin wrapper over [`ServingSystem::serve`].
    pub fn handle_request(&self, query: &str) -> ServeResult {
        let served = self.serve(&ServeRequest::new(query));
        ServeResult {
            layer: served.response.layer,
            features: served.features,
            latency_us: served.latency_us,
        }
    }

    /// One batch cycle: drain pending queries, compute features on the
    /// persistent worker pool, install into L2 and the feature store.
    ///
    /// Returns the number of queries processed. A panicking worker chunk
    /// does not kill the caller: its queries are re-queued for the next
    /// cycle, the failure is counted in the snapshot, the surviving
    /// chunks are still installed, and `Err(ServingError::BatchWorker)`
    /// reports the degradation.
    pub fn run_batch_cycle(&self) -> Result<usize, ServingError> {
        // The whole cycle runs against one generation: drained queries are
        // installed into the same cache they were drained from. If a swap
        // lands mid-cycle the installs go to the retiring generation and
        // die with it — the new generation starts from its own preload.
        let generation = self.current();
        let queries = generation.cache.drain_pending(self.cfg.batch_size);
        if queries.is_empty() {
            return Ok(0);
        }
        let chunk = queries.len().div_ceil(self.cfg.workers.max(1)).max(1);
        // Each worker scores its whole chunk through the student's batched
        // candidate path: one generation matmul for the chunk's cold
        // queries and one embedding matmul for the chunk, bitwise
        // identical to the per-query formulation.
        let outcomes = self.pool.try_map_slices(&queries, chunk, |_, qs| {
            #[cfg(test)]
            assert!(
                !qs.iter().any(|q| q == PANIC_QUERY),
                "injected worker panic"
            );
            let refs: Vec<&str> = qs.iter().map(String::as_str).collect();
            compute_features_batch(&refs, &*generation.view, &self.lm)
        });
        let mut installed = 0usize;
        let mut failed_chunks = 0usize;
        let mut requeued = 0usize;
        for outcome in outcomes {
            match outcome {
                ChunkResult::Computed { results, .. } => {
                    let mut arcs = Vec::with_capacity(results.len());
                    for f in results {
                        arcs.push(generation.features.put(f));
                    }
                    installed += arcs.len();
                    generation.cache.install(arcs);
                }
                ChunkResult::Panicked { start, len } => {
                    failed_chunks += 1;
                    if let Some(chunk) = queries.get(start..start + len) {
                        requeued += generation.cache.requeue(chunk);
                    }
                    self.batch_failed_chunks.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if failed_chunks > 0 {
            Err(ServingError::BatchWorker {
                failed_chunks,
                requeued,
            })
        } else {
            Ok(installed)
        }
    }

    /// Daily refresh: bump the model version (simulating the SageMaker
    /// re-deployment with fresh behaviour logs) and rotate the cache.
    /// Returns the number of promoted L1 entries.
    pub fn daily_refresh(&self) -> usize {
        self.model_version.fetch_add(1, Ordering::Relaxed);
        self.current().cache.daily_refresh()
    }

    /// Current model version (increments per daily refresh).
    pub fn model_version(&self) -> u64 {
        self.model_version.load(Ordering::Relaxed)
    }

    /// The versioned operational stats schema: everything the ops
    /// dashboard charts, identical between in-process callers and
    /// `GET /ops/stats` on the HTTP front end.
    pub fn ops(&self) -> OpsStats {
        let generation = self.current();
        let (l1_size, l2_size) = generation.cache.sizes();
        OpsStats {
            ops_version: OPS_VERSION,
            model_version: self.model_version(),
            l1_size,
            l2_size,
            l2_shard_sizes: generation.cache.l2_shard_sizes(),
            pending: generation.cache.pending_len(),
            pending_shard_depths: generation.cache.pending_shard_sizes(),
            queue_high_water: generation.cache.metrics.pending_high_water(),
            dropped: generation.cache.metrics.dropped.load(Ordering::Relaxed),
            rejected: generation.cache.metrics.rejected.load(Ordering::Relaxed),
            batch_failed_chunks: self.batch_failed_chunks.load(Ordering::Relaxed),
            l1_hits: generation.cache.metrics.l1_hits.load(Ordering::Relaxed),
            l2_hits: generation.cache.metrics.l2_hits.load(Ordering::Relaxed),
            misses: generation.cache.metrics.misses.load(Ordering::Relaxed),
            hit_rate: generation.cache.metrics.hit_rate(),
            p50_us: self.latency.percentile(0.5),
            p99_us: self.latency.percentile(0.99),
            latency_count: self.latency.len() as u64,
            latency_buckets: self.latency.nonzero_buckets(),
            features: generation.features.len(),
            snapshot_generation: generation.generation,
        }
    }

    /// Operational snapshot for dashboards/alerts.
    #[deprecated(since = "0.6.0", note = "use `ServingSystem::ops()`")]
    #[allow(deprecated)] // the deprecated shim must mention its own deprecated return type
    pub fn snapshot(&self) -> SystemSnapshot {
        let ops = self.ops();
        SystemSnapshot {
            l1_size: ops.l1_size,
            l2_size: ops.l2_size,
            l2_shard_sizes: ops.l2_shard_sizes,
            pending: ops.pending,
            queue_high_water: ops.queue_high_water,
            dropped: ops.dropped,
            rejected: ops.rejected,
            batch_failed_chunks: ops.batch_failed_chunks,
            hit_rate: ops.hit_rate,
            p50_us: ops.p50_us,
            p99_us: ops.p99_us,
            features: ops.features,
            model_version: ops.model_version,
        }
    }

    /// Feedback loop: record a served interaction (query, purchased
    /// product) for the next model refresh.
    pub fn record_feedback(&self, query: &str, product: &str) {
        self.feedback
            .lock()
            .push((query.to_string(), product.to_string()));
    }

    /// Drain accumulated feedback (consumed by the next offline run).
    pub fn drain_feedback(&self) -> Vec<(String, String)> {
        std::mem::take(&mut self.feedback.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmo_kg::Relation;
    use cosmo_lm::StudentConfig;

    fn parts() -> (Arc<KnowledgeGraph>, Arc<CosmoLm>) {
        let lm = Arc::new(CosmoLm::new(
            StudentConfig::default(),
            vec![
                ("sleeping outdoors".into(), Some(Relation::UsedForFunc)),
                ("keeping warm".into(), Some(Relation::CapableOf)),
            ],
        ));
        (Arc::new(KnowledgeGraph::new()), lm)
    }

    fn system(preload: &[&str]) -> ServingSystem {
        let (kg, lm) = parts();
        ServingSystem::builder()
            .kg(kg)
            .lm(lm)
            .preload(preload.iter().copied())
            .workers(2)
            .build()
            .unwrap()
    }

    #[test]
    fn preloaded_queries_hit_l1() {
        let sys = system(&["camping"]);
        let r = sys.handle_request("camping");
        assert!(r.features.is_some());
        assert_eq!(r.layer, Some(CacheLayer::L1));
    }

    #[test]
    fn miss_then_batch_then_l2_hit() {
        let sys = system(&[]);
        let r = sys.handle_request("hiking gear");
        assert!(r.features.is_none(), "first request must not block");
        let processed = sys.run_batch_cycle().unwrap();
        assert_eq!(processed, 1);
        let r2 = sys.handle_request("hiking gear");
        assert_eq!(r2.layer, Some(CacheLayer::L2));
        assert!(sys.current().features.get("hiking gear").is_some());
    }

    #[test]
    fn batch_cycle_uses_all_pending() {
        let sys = system(&[]);
        for i in 0..20 {
            let _ = sys.handle_request(&format!("query {i}"));
        }
        assert_eq!(sys.run_batch_cycle().unwrap(), 20);
        assert_eq!(sys.run_batch_cycle().unwrap(), 0, "queue drained");
    }

    #[test]
    fn daily_refresh_bumps_model_version() {
        let sys = system(&[]);
        assert_eq!(sys.model_version(), 1);
        let _ = sys.handle_request("q");
        sys.run_batch_cycle().unwrap();
        let _ = sys.handle_request("q"); // L2 hit → promotion candidate
        let promoted = sys.daily_refresh();
        assert_eq!(sys.model_version(), 2);
        assert_eq!(promoted, 1);
        let r = sys.handle_request("q");
        assert_eq!(r.layer, Some(CacheLayer::L1));
    }

    #[test]
    fn ops_reflects_state() {
        let sys = system(&["hot"]);
        let _ = sys.handle_request("hot");
        let _ = sys.handle_request("cold");
        let ops = sys.ops();
        assert_eq!(ops.ops_version, OPS_VERSION);
        assert_eq!(ops.l1_size, 1);
        assert_eq!(ops.pending, 1);
        assert_eq!(ops.pending_shard_depths.iter().sum::<usize>(), 1);
        assert_eq!(ops.queue_high_water, 1);
        assert_eq!((ops.l1_hits, ops.l2_hits, ops.misses), (1, 0, 1));
        assert!((ops.hit_rate - 0.5).abs() < 1e-9);
        assert_eq!(ops.model_version, 1);
        assert_eq!(ops.dropped + ops.rejected, 0);
        assert_eq!(ops.latency_count, 2);
        assert_eq!(
            ops.latency_buckets.iter().map(|(_, c)| c).sum::<u64>(),
            2,
            "histogram buckets account for every sample"
        );
        sys.run_batch_cycle().unwrap();
        let ops2 = sys.ops();
        assert_eq!(ops2.pending, 0);
        assert_eq!(ops2.l2_size, 1);
        assert_eq!(ops2.l2_shard_sizes.iter().sum::<usize>(), 1);
        assert!(ops2.features >= 2);
        // the ops schema round-trips over its own wire encoding
        use crate::protocol::OpsStats;
        assert_eq!(OpsStats::from_json(&ops2.to_json()).unwrap(), ops2);
    }

    #[test]
    fn typed_serve_matches_untyped_path() {
        let sys = system(&["hot"]);
        let served = sys.serve(&ServeRequest::new("hot"));
        assert_eq!(served.response.status, ServeStatus::Hit);
        assert_eq!(served.response.layer, Some(CacheLayer::L1));
        assert!(served.features.is_some());
        assert!(!served.response.intents.is_empty());
        // a miss reports the admission outcome on the wire
        let miss = sys.handle(&ServeRequest::new("cold"));
        assert_eq!(miss.status, ServeStatus::Enqueued);
        assert_eq!(miss.layer, None);
        // handle_request stays a thin wrapper over serve
        let r = sys.handle_request("hot");
        assert_eq!(r.layer, Some(CacheLayer::L1));
        assert!(r.features.is_some());
    }

    #[test]
    fn rejected_miss_is_surfaced_in_response() {
        let (kg, lm) = parts();
        let sys = ServingSystem::builder()
            .kg(kg)
            .lm(lm)
            .shards(1)
            .pending_bound(1)
            .admission(AdmissionPolicy::RejectNew)
            .build()
            .unwrap();
        assert_eq!(
            sys.handle(&ServeRequest::new("a")).status,
            ServeStatus::Enqueued
        );
        assert_eq!(
            sys.handle(&ServeRequest::new("b")).status,
            ServeStatus::Rejected
        );
        assert_eq!(sys.ops().rejected, 1);
    }

    #[test]
    #[allow(deprecated)] // locks the deprecated SystemSnapshot shim to the ops() values
    fn deprecated_snapshot_shim_matches_ops() {
        let sys = system(&["hot"]);
        let _ = sys.handle_request("hot");
        let _ = sys.handle_request("cold");
        let snap = sys.snapshot();
        let ops = sys.ops();
        assert_eq!(snap.l1_size, ops.l1_size);
        assert_eq!(snap.pending, ops.pending);
        assert_eq!(snap.hit_rate, ops.hit_rate);
        assert_eq!(snap.model_version, ops.model_version);
    }

    #[test]
    fn builder_validates_config() {
        let (kg, lm) = parts();
        let err = ServingSystem::builder().kg(kg).lm(lm).workers(0).build();
        assert!(matches!(err, Err(ServingError::InvalidConfig(_))));
    }

    #[test]
    fn builder_requires_kg_and_lm() {
        let (kg, lm) = parts();
        assert_eq!(
            ServingSystem::builder().lm(lm.clone()).build().err(),
            Some(ServingError::MissingKnowledgeGraph)
        );
        assert_eq!(
            ServingSystem::builder().kg(kg).build().err(),
            Some(ServingError::MissingModel)
        );
    }

    #[test]
    fn worker_panic_degrades_instead_of_killing_caller() {
        let sys = system(&[]);
        let _ = sys.handle_request(PANIC_QUERY);
        for i in 0..7 {
            let _ = sys.handle_request(&format!("healthy {i}"));
        }
        let err = sys.run_batch_cycle().unwrap_err();
        let ServingError::BatchWorker {
            failed_chunks,
            requeued,
        } = err
        else {
            panic!("expected BatchWorker error");
        };
        assert_eq!(failed_chunks, 1, "only the poisoned chunk fails");
        assert!(requeued >= 1, "poisoned chunk re-queued");
        assert_eq!(sys.current().cache.pending_len(), requeued);
        let ops = sys.ops();
        assert_eq!(ops.batch_failed_chunks, 1);
        assert_eq!(
            ops.l2_size,
            8 - requeued,
            "surviving chunks are still installed"
        );
        // the poisoned query keeps failing but never panics the caller
        assert!(sys.run_batch_cycle().is_err());
    }

    #[test]
    fn feedback_loop_roundtrip() {
        let sys = system(&[]);
        sys.record_feedback("camping", "acme tent");
        sys.record_feedback("camping", "acme mattress");
        let fb = sys.drain_feedback();
        assert_eq!(fb.len(), 2);
        assert!(sys.drain_feedback().is_empty());
    }
}
