//! Typed wire protocol shared by the in-process serving path and the
//! HTTP front end (`cosmo-http`).
//!
//! Every message the serving tier exchanges with a client has a typed
//! struct here plus a hand-rolled, std-only JSON encoding:
//!
//! * [`ServeRequest`] / [`ServeResponse`] — `POST /v1/serve-intents` and
//!   [`crate::ServingSystem::handle`];
//! * [`NavigateRequest`] / [`NavigateResponse`] — `POST /v1/navigate`;
//! * [`SnapshotVersion`] — `GET /v1/snapshot-version`;
//! * [`OpsStats`] — the versioned operational schema returned by both
//!   [`crate::ServingSystem::ops`] and `GET /ops/stats`;
//! * [`ErrorBody`] — the body of every non-2xx protocol error.
//!
//! **Byte identity.** Encoding is canonical: fixed field order, no
//! whitespace, shortest round-trip float formatting. The HTTP layer
//! serialises the exact structs the in-process path returns, so for the
//! same system state `POST /v1/serve-intents` answers byte-for-byte what
//! `handle(ServeRequest).to_json()` produces (locked by a tier-1
//! integration test in `cosmo-http`).
//!
//! **Versioning rules.** `protocol_version` / `ops_version` bump only on
//! breaking changes (field removal, meaning change, reordering). Adding
//! a field at the end of the canonical order is non-breaking: decoders
//! here ignore unknown fields and fill defaulted ones. Responses always
//! carry the version so clients can refuse what they do not speak.
//!
//! The decoder is a small recursive-descent JSON parser (strings with
//! full escape/surrogate handling, numbers kept as raw text so `u64`
//! counters and `f32` scores round-trip exactly, depth-capped). No
//! external crates: the wire layer must stay std-only.

use crate::cache::CacheLayer;
use crate::features::StructuredFeatures;
use std::fmt;

/// Version of the request/response wire schema.
pub const PROTOCOL_VERSION: u32 = 1;

/// Version of the [`OpsStats`] schema.
pub const OPS_VERSION: u32 = 1;

/// Everything that can go wrong while decoding a protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload is not valid JSON (position, description).
    Json(usize, String),
    /// A required field is absent.
    MissingField(&'static str),
    /// A field is present but has the wrong type or an invalid value.
    BadField(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Json(pos, msg) => write!(f, "invalid json at byte {pos}: {msg}"),
            ProtocolError::MissingField(name) => write!(f, "missing field `{name}`"),
            ProtocolError::BadField(name) => write!(f, "invalid field `{name}`"),
        }
    }
}

impl std::error::Error for ProtocolError {}

// ---------------------------------------------------------------------------
// JSON: canonical encoder helpers + recursive-descent decoder.
// ---------------------------------------------------------------------------

/// Append a JSON string literal (with escapes) to `out`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append an `f32` in shortest round-trip form (Rust's `Display` emits the
/// shortest decimal that parses back to the same bits).
fn push_f32(out: &mut String, v: f32) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
        // `Display` prints integral floats without a decimal point; JSON
        // numbers allow that, but keep the token unambiguous for readers.
    } else {
        // Scores and rates are always finite; clamp pathological values
        // instead of emitting invalid JSON.
        out.push('0');
    }
}

/// Append an `f64` in shortest round-trip form.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push('0');
    }
}

/// A parsed JSON value. Numbers keep their raw text so integer counters
/// and float scores can be re-parsed at full precision by the accessor
/// that knows the target type.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw source text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing non-whitespace rejected).
    pub fn parse(src: &str) -> Result<Json, ProtocolError> {
        let bytes = src.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(ProtocolError::Json(p.pos, "trailing characters".into()));
        }
        Ok(v)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// `u64` accessor (re-parses the raw number text).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// `f32` accessor (re-parses the raw number text — bit-exact for
    /// values produced by [`push_f32`]).
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// `f64` accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Maximum nesting depth the decoder accepts (the protocol needs 4).
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ProtocolError {
        ProtocolError::Json(self.pos, msg.to_string())
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ProtocolError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ProtocolError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &'static str, v: Json) -> Result<Json, ProtocolError> {
        let rest = self.bytes.get(self.pos..).unwrap_or(&[]);
        if rest.starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ProtocolError> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ProtocolError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ProtocolError> {
        let quad = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(quad).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair: require \uXXXX low half
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect_byte(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid code point"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character")),
                Some(_) => {
                    // copy one UTF-8 code point (input is a &str, so the
                    // byte stream is valid UTF-8 by construction)
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| (b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    let span = self.bytes.get(start..self.pos).unwrap_or(&[]);
                    out.push_str(std::str::from_utf8(span).map_err(|_| self.err("invalid utf-8"))?);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ProtocolError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("invalid number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("invalid number fraction"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("invalid number exponent"));
            }
        }
        let span = self.bytes.get(start..self.pos).unwrap_or(&[]);
        let raw = std::str::from_utf8(span)
            .map_err(|_| self.err("invalid number"))?
            .to_string();
        Ok(Json::Num(raw))
    }
}

// ---------------------------------------------------------------------------
// Field extraction helpers.
// ---------------------------------------------------------------------------

fn req_str(obj: &Json, name: &'static str) -> Result<String, ProtocolError> {
    obj.get(name)
        .ok_or(ProtocolError::MissingField(name))?
        .as_str()
        .map(str::to_string)
        .ok_or(ProtocolError::BadField(name))
}

fn req_u64(obj: &Json, name: &'static str) -> Result<u64, ProtocolError> {
    obj.get(name)
        .ok_or(ProtocolError::MissingField(name))?
        .as_u64()
        .ok_or(ProtocolError::BadField(name))
}

fn opt_u64(obj: &Json, name: &'static str, default: u64) -> Result<u64, ProtocolError> {
    match obj.get(name) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v.as_u64().ok_or(ProtocolError::BadField(name)),
    }
}

// ---------------------------------------------------------------------------
// ServeRequest / ServeResponse.
// ---------------------------------------------------------------------------

/// A serve-intents request: the query plus how many intents to render.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRequest {
    /// The search query.
    pub query: String,
    /// Max intent key-value pairs rendered into the response.
    pub top_k: usize,
}

/// Default intent count when the request does not specify one.
pub const DEFAULT_TOP_K: usize = 5;

impl ServeRequest {
    /// A request with the default `top_k`.
    pub fn new(query: impl Into<String>) -> Self {
        ServeRequest {
            query: query.into(),
            top_k: DEFAULT_TOP_K,
        }
    }

    /// Canonical JSON encoding.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"query\":");
        push_json_str(&mut out, &self.query);
        out.push_str(&format!(",\"top_k\":{}}}", self.top_k));
        out
    }

    /// Decode from JSON (`query` required, `top_k` optional).
    pub fn from_json(src: &str) -> Result<Self, ProtocolError> {
        let v = Json::parse(src)?;
        let query = req_str(&v, "query")?;
        let top_k = opt_u64(&v, "top_k", DEFAULT_TOP_K as u64)? as usize;
        Ok(ServeRequest { query, top_k })
    }
}

/// How the request path answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeStatus {
    /// Features served from the cache.
    Hit,
    /// Miss: the query is queued (or already queued) for the next
    /// asynchronous batch cycle; retry shortly.
    Enqueued,
    /// Miss: the pending queue is full under
    /// [`crate::AdmissionPolicy::RejectNew`] — the HTTP layer maps this
    /// to `503` with `Retry-After`.
    Rejected,
}

impl ServeStatus {
    /// Wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            ServeStatus::Hit => "hit",
            ServeStatus::Enqueued => "enqueued",
            ServeStatus::Rejected => "rejected",
        }
    }

    /// Parse a wire token.
    pub fn parse(s: &str) -> Option<ServeStatus> {
        match s {
            "hit" => Some(ServeStatus::Hit),
            "enqueued" => Some(ServeStatus::Enqueued),
            "rejected" => Some(ServeStatus::Rejected),
            _ => None,
        }
    }
}

/// One rendered intent key-value pair.
#[derive(Debug, Clone, PartialEq)]
pub struct IntentItem {
    /// Relation name (e.g. `USED_FOR_FUNC`).
    pub relation: String,
    /// Intention tail text.
    pub tail: String,
    /// Serving-time score.
    pub score: f32,
}

/// The serve-intents response. Deterministic for a given cache state —
/// request latency is deliberately *not* part of the body (clients
/// measure it; [`crate::ServeResult::latency_us`] carries it in-process),
/// which is what makes the HTTP and in-process answers byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// Wire schema version ([`PROTOCOL_VERSION`]).
    pub protocol_version: u32,
    /// The query echoed back.
    pub query: String,
    /// How the request path answered.
    pub status: ServeStatus,
    /// Which cache layer answered (hits only).
    pub layer: Option<CacheLayer>,
    /// Model version serving this response.
    pub model_version: u64,
    /// Rendered intents, best first (hits only; capped at `top_k`).
    pub intents: Vec<IntentItem>,
    /// Detected strong intent (hits only).
    pub strong_intent: Option<String>,
    /// Snapshot generation that answered (increments per hot swap;
    /// appended field — decoders default it to 0).
    pub snapshot_generation: u64,
}

fn layer_str(layer: CacheLayer) -> &'static str {
    match layer {
        CacheLayer::L1 => "l1",
        CacheLayer::L2 => "l2",
    }
}

impl ServeResponse {
    /// Response for a cache hit: render up to `top_k` intents.
    pub fn for_hit(
        req: &ServeRequest,
        features: &StructuredFeatures,
        layer: CacheLayer,
        model_version: u64,
        snapshot_generation: u64,
    ) -> Self {
        ServeResponse {
            protocol_version: PROTOCOL_VERSION,
            query: req.query.clone(),
            status: ServeStatus::Hit,
            layer: Some(layer),
            model_version,
            intents: features
                .intents
                .iter()
                .take(req.top_k)
                .map(|(rel, tail, score)| IntentItem {
                    relation: rel.name().to_string(),
                    tail: tail.clone(),
                    score: *score,
                })
                .collect(),
            strong_intent: features.strong_intent.clone(),
            snapshot_generation,
        }
    }

    /// Response for a miss (enqueued or rejected).
    pub fn for_miss(
        req: &ServeRequest,
        status: ServeStatus,
        model_version: u64,
        snapshot_generation: u64,
    ) -> Self {
        ServeResponse {
            protocol_version: PROTOCOL_VERSION,
            query: req.query.clone(),
            status,
            layer: None,
            model_version,
            intents: Vec::new(),
            strong_intent: None,
            snapshot_generation,
        }
    }

    /// Canonical JSON encoding (fixed field order, no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"protocol_version\":");
        out.push_str(&self.protocol_version.to_string());
        out.push_str(",\"query\":");
        push_json_str(&mut out, &self.query);
        out.push_str(",\"status\":\"");
        out.push_str(self.status.as_str());
        out.push_str("\",\"layer\":");
        match self.layer {
            Some(layer) => {
                out.push('"');
                out.push_str(layer_str(layer));
                out.push('"');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"model_version\":");
        out.push_str(&self.model_version.to_string());
        out.push_str(",\"intents\":[");
        for (i, item) in self.intents.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"relation\":");
            push_json_str(&mut out, &item.relation);
            out.push_str(",\"tail\":");
            push_json_str(&mut out, &item.tail);
            out.push_str(",\"score\":");
            push_f32(&mut out, item.score);
            out.push('}');
        }
        out.push_str("],\"strong_intent\":");
        match &self.strong_intent {
            Some(s) => push_json_str(&mut out, s),
            None => out.push_str("null"),
        }
        out.push_str(",\"snapshot_generation\":");
        out.push_str(&self.snapshot_generation.to_string());
        out.push('}');
        out
    }

    /// Decode from JSON.
    pub fn from_json(src: &str) -> Result<Self, ProtocolError> {
        let v = Json::parse(src)?;
        let status =
            ServeStatus::parse(&req_str(&v, "status")?).ok_or(ProtocolError::BadField("status"))?;
        let layer = match v.get("layer") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => match s.as_str() {
                "l1" => Some(CacheLayer::L1),
                "l2" => Some(CacheLayer::L2),
                _ => return Err(ProtocolError::BadField("layer")),
            },
            Some(_) => return Err(ProtocolError::BadField("layer")),
        };
        let mut intents = Vec::new();
        for item in v
            .get("intents")
            .ok_or(ProtocolError::MissingField("intents"))?
            .as_arr()
            .ok_or(ProtocolError::BadField("intents"))?
        {
            intents.push(IntentItem {
                relation: req_str(item, "relation")?,
                tail: req_str(item, "tail")?,
                score: item
                    .get("score")
                    .ok_or(ProtocolError::MissingField("score"))?
                    .as_f32()
                    .ok_or(ProtocolError::BadField("score"))?,
            });
        }
        let strong_intent = match v.get("strong_intent") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => return Err(ProtocolError::BadField("strong_intent")),
        };
        Ok(ServeResponse {
            protocol_version: req_u64(&v, "protocol_version")? as u32,
            query: req_str(&v, "query")?,
            status,
            layer,
            model_version: req_u64(&v, "model_version")?,
            intents,
            strong_intent,
            snapshot_generation: opt_u64(&v, "snapshot_generation", 0)?,
        })
    }
}

// ---------------------------------------------------------------------------
// NavigateRequest / NavigateResponse.
// ---------------------------------------------------------------------------

/// A navigation request: broad query plus suggestion count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NavigateRequest {
    /// The broad query to interpret.
    pub query: String,
    /// Max suggestions returned.
    pub k: usize,
}

/// Default suggestion count.
pub const DEFAULT_NAV_K: usize = 5;

impl NavigateRequest {
    /// A request with the default `k`.
    pub fn new(query: impl Into<String>) -> Self {
        NavigateRequest {
            query: query.into(),
            k: DEFAULT_NAV_K,
        }
    }

    /// Canonical JSON encoding.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"query\":");
        push_json_str(&mut out, &self.query);
        out.push_str(&format!(",\"k\":{}}}", self.k));
        out
    }

    /// Decode from JSON (`query` required, `k` optional).
    pub fn from_json(src: &str) -> Result<Self, ProtocolError> {
        let v = Json::parse(src)?;
        Ok(NavigateRequest {
            query: req_str(&v, "query")?,
            k: opt_u64(&v, "k", DEFAULT_NAV_K as u64)? as usize,
        })
    }
}

/// One navigation suggestion on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NavigateItem {
    /// Suggestion kind: `intent`, `product_type`, or `attribute`.
    pub kind: String,
    /// Display label.
    pub label: String,
}

/// The navigation response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NavigateResponse {
    /// Wire schema version ([`PROTOCOL_VERSION`]).
    pub protocol_version: u32,
    /// The query echoed back.
    pub query: String,
    /// Ranked suggestions.
    pub suggestions: Vec<NavigateItem>,
}

impl NavigateResponse {
    /// Canonical JSON encoding.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"protocol_version\":");
        out.push_str(&self.protocol_version.to_string());
        out.push_str(",\"query\":");
        push_json_str(&mut out, &self.query);
        out.push_str(",\"suggestions\":[");
        for (i, s) in self.suggestions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"kind\":");
            push_json_str(&mut out, &s.kind);
            out.push_str(",\"label\":");
            push_json_str(&mut out, &s.label);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Decode from JSON.
    pub fn from_json(src: &str) -> Result<Self, ProtocolError> {
        let v = Json::parse(src)?;
        let mut suggestions = Vec::new();
        for item in v
            .get("suggestions")
            .ok_or(ProtocolError::MissingField("suggestions"))?
            .as_arr()
            .ok_or(ProtocolError::BadField("suggestions"))?
        {
            suggestions.push(NavigateItem {
                kind: req_str(item, "kind")?,
                label: req_str(item, "label")?,
            });
        }
        Ok(NavigateResponse {
            protocol_version: req_u64(&v, "protocol_version")? as u32,
            query: req_str(&v, "query")?,
            suggestions,
        })
    }
}

// ---------------------------------------------------------------------------
// SnapshotVersion.
// ---------------------------------------------------------------------------

/// Identity of the frozen KG snapshot a server is answering from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotVersion {
    /// Wire schema version ([`PROTOCOL_VERSION`]).
    pub protocol_version: u32,
    /// Binary snapshot format version (`cosmo_kg::snapshot::FORMAT_VERSION`).
    pub format_version: u32,
    /// Node count.
    pub nodes: u64,
    /// Merged edge count.
    pub edges: u64,
    /// Distinct relation types.
    pub relations: u64,
    /// Interned text arena size in bytes.
    pub arena_bytes: u64,
    /// Serving model version (increments per daily refresh).
    pub model_version: u64,
    /// Snapshot generation (increments per hot swap; appended field —
    /// decoders default it to 0).
    pub generation: u64,
}

impl SnapshotVersion {
    /// Canonical JSON encoding.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"protocol_version\":{},\"format_version\":{},\"nodes\":{},\"edges\":{},\
             \"relations\":{},\"arena_bytes\":{},\"model_version\":{},\"generation\":{}}}",
            self.protocol_version,
            self.format_version,
            self.nodes,
            self.edges,
            self.relations,
            self.arena_bytes,
            self.model_version,
            self.generation
        )
    }

    /// Decode from JSON.
    pub fn from_json(src: &str) -> Result<Self, ProtocolError> {
        let v = Json::parse(src)?;
        Ok(SnapshotVersion {
            protocol_version: req_u64(&v, "protocol_version")? as u32,
            format_version: req_u64(&v, "format_version")? as u32,
            nodes: req_u64(&v, "nodes")?,
            edges: req_u64(&v, "edges")?,
            relations: req_u64(&v, "relations")?,
            arena_bytes: req_u64(&v, "arena_bytes")?,
            model_version: req_u64(&v, "model_version")?,
            generation: opt_u64(&v, "generation", 0)?,
        })
    }
}

// ---------------------------------------------------------------------------
// ReloadRequest / ReloadResponse.
// ---------------------------------------------------------------------------

/// `POST /ops/reload`: ask a live server to load a snapshot file and
/// atomically publish it as the next generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReloadRequest {
    /// Path (on the server's filesystem) of the snapshot file to load.
    pub path: String,
}

impl ReloadRequest {
    /// Build a reload request.
    pub fn new(path: impl Into<String>) -> Self {
        ReloadRequest { path: path.into() }
    }

    /// Canonical JSON encoding.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"path\":");
        push_json_str(&mut out, &self.path);
        out.push('}');
        out
    }

    /// Decode from JSON.
    pub fn from_json(src: &str) -> Result<Self, ProtocolError> {
        let v = Json::parse(src)?;
        Ok(ReloadRequest {
            path: req_str(&v, "path")?,
        })
    }
}

/// Response to a successful `POST /ops/reload`: the identity of the
/// generation that is now live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReloadResponse {
    /// Wire schema version ([`PROTOCOL_VERSION`]).
    pub protocol_version: u32,
    /// The generation number just published.
    pub generation: u64,
    /// Binary format version of the loaded file (1 or 2).
    pub format_version: u32,
    /// Node count of the new snapshot.
    pub nodes: u64,
    /// Edge count of the new snapshot.
    pub edges: u64,
}

impl ReloadResponse {
    /// Canonical JSON encoding.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"protocol_version\":{},\"generation\":{},\"format_version\":{},\
             \"nodes\":{},\"edges\":{}}}",
            self.protocol_version, self.generation, self.format_version, self.nodes, self.edges
        )
    }

    /// Decode from JSON.
    pub fn from_json(src: &str) -> Result<Self, ProtocolError> {
        let v = Json::parse(src)?;
        Ok(ReloadResponse {
            protocol_version: req_u64(&v, "protocol_version")? as u32,
            generation: req_u64(&v, "generation")?,
            format_version: req_u64(&v, "format_version")? as u32,
            nodes: req_u64(&v, "nodes")?,
            edges: req_u64(&v, "edges")?,
        })
    }
}

// ---------------------------------------------------------------------------
// OpsStats.
// ---------------------------------------------------------------------------

/// The versioned operational schema: one struct covering everything the
/// old `SystemSnapshot` + `ops_view` pair exposed, plus queue shard
/// depths, raw hit/miss counters, and the latency histogram itself.
/// Returned by [`crate::ServingSystem::ops`] and `GET /ops/stats`.
#[derive(Debug, Clone, PartialEq)]
pub struct OpsStats {
    /// Ops schema version ([`OPS_VERSION`]).
    pub ops_version: u32,
    /// Current model version.
    pub model_version: u64,
    /// Entries in the pre-loaded L1 layer.
    pub l1_size: usize,
    /// Entries in the daily L2 layer (all shards).
    pub l2_size: usize,
    /// Per-shard L2 entry counts.
    pub l2_shard_sizes: Vec<usize>,
    /// Distinct queries queued for the next batch cycle.
    pub pending: usize,
    /// Per-shard pending-queue depths.
    pub pending_shard_depths: Vec<usize>,
    /// Peak queue depth since the last metrics reset.
    pub queue_high_water: usize,
    /// Pending entries evicted under drop-oldest admission.
    pub dropped: u64,
    /// Pending enqueues refused under reject-new admission.
    pub rejected: u64,
    /// Batch-worker chunks that panicked (queries were re-queued).
    pub batch_failed_chunks: u64,
    /// L1 hits since the last reset.
    pub l1_hits: u64,
    /// L2 hits since the last reset.
    pub l2_hits: u64,
    /// Misses since the last reset.
    pub misses: u64,
    /// Cumulative cache hit rate.
    pub hit_rate: f64,
    /// p50 request latency (µs).
    pub p50_us: u64,
    /// p99 request latency (µs).
    pub p99_us: u64,
    /// Latency samples recorded since the last reset.
    pub latency_count: u64,
    /// Non-empty latency histogram buckets as `(lower_bound_us, count)`.
    pub latency_buckets: Vec<(u64, u64)>,
    /// Feature-store size.
    pub features: usize,
    /// Snapshot generation currently serving (appended field — decoders
    /// default it to 0).
    pub snapshot_generation: u64,
}

impl OpsStats {
    /// Canonical JSON encoding.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"ops_version\":");
        out.push_str(&self.ops_version.to_string());
        out.push_str(&format!(",\"model_version\":{}", self.model_version));
        out.push_str(&format!(",\"l1_size\":{}", self.l1_size));
        out.push_str(&format!(",\"l2_size\":{}", self.l2_size));
        out.push_str(",\"l2_shard_sizes\":[");
        for (i, s) in self.l2_shard_sizes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_string());
        }
        out.push_str(&format!("],\"pending\":{}", self.pending));
        out.push_str(",\"pending_shard_depths\":[");
        for (i, s) in self.pending_shard_depths.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_string());
        }
        out.push_str(&format!("],\"queue_high_water\":{}", self.queue_high_water));
        out.push_str(&format!(",\"dropped\":{}", self.dropped));
        out.push_str(&format!(",\"rejected\":{}", self.rejected));
        out.push_str(&format!(
            ",\"batch_failed_chunks\":{}",
            self.batch_failed_chunks
        ));
        out.push_str(&format!(",\"l1_hits\":{}", self.l1_hits));
        out.push_str(&format!(",\"l2_hits\":{}", self.l2_hits));
        out.push_str(&format!(",\"misses\":{}", self.misses));
        out.push_str(",\"hit_rate\":");
        push_f64(&mut out, self.hit_rate);
        out.push_str(&format!(",\"p50_us\":{}", self.p50_us));
        out.push_str(&format!(",\"p99_us\":{}", self.p99_us));
        out.push_str(&format!(",\"latency_count\":{}", self.latency_count));
        out.push_str(",\"latency_buckets\":[");
        for (i, (lo, n)) in self.latency_buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{lo},{n}]"));
        }
        out.push_str(&format!("],\"features\":{}", self.features));
        out.push_str(&format!(
            ",\"snapshot_generation\":{}}}",
            self.snapshot_generation
        ));
        out
    }

    /// Decode from JSON.
    pub fn from_json(src: &str) -> Result<Self, ProtocolError> {
        let v = Json::parse(src)?;
        let usize_arr = |name: &'static str| -> Result<Vec<usize>, ProtocolError> {
            v.get(name)
                .ok_or(ProtocolError::MissingField(name))?
                .as_arr()
                .ok_or(ProtocolError::BadField(name))?
                .iter()
                .map(|x| {
                    x.as_u64()
                        .map(|u| u as usize)
                        .ok_or(ProtocolError::BadField(name))
                })
                .collect()
        };
        let mut latency_buckets = Vec::new();
        for pair in v
            .get("latency_buckets")
            .ok_or(ProtocolError::MissingField("latency_buckets"))?
            .as_arr()
            .ok_or(ProtocolError::BadField("latency_buckets"))?
        {
            let pair = pair
                .as_arr()
                .ok_or(ProtocolError::BadField("latency_buckets"))?;
            let [lo, n] = pair else {
                return Err(ProtocolError::BadField("latency_buckets"));
            };
            latency_buckets.push((
                lo.as_u64()
                    .ok_or(ProtocolError::BadField("latency_buckets"))?,
                n.as_u64()
                    .ok_or(ProtocolError::BadField("latency_buckets"))?,
            ));
        }
        Ok(OpsStats {
            ops_version: req_u64(&v, "ops_version")? as u32,
            model_version: req_u64(&v, "model_version")?,
            l1_size: req_u64(&v, "l1_size")? as usize,
            l2_size: req_u64(&v, "l2_size")? as usize,
            l2_shard_sizes: usize_arr("l2_shard_sizes")?,
            pending: req_u64(&v, "pending")? as usize,
            pending_shard_depths: usize_arr("pending_shard_depths")?,
            queue_high_water: req_u64(&v, "queue_high_water")? as usize,
            dropped: req_u64(&v, "dropped")?,
            rejected: req_u64(&v, "rejected")?,
            batch_failed_chunks: req_u64(&v, "batch_failed_chunks")?,
            l1_hits: req_u64(&v, "l1_hits")?,
            l2_hits: req_u64(&v, "l2_hits")?,
            misses: req_u64(&v, "misses")?,
            hit_rate: v
                .get("hit_rate")
                .ok_or(ProtocolError::MissingField("hit_rate"))?
                .as_f64()
                .ok_or(ProtocolError::BadField("hit_rate"))?,
            p50_us: req_u64(&v, "p50_us")?,
            p99_us: req_u64(&v, "p99_us")?,
            latency_count: req_u64(&v, "latency_count")?,
            latency_buckets,
            features: req_u64(&v, "features")? as usize,
            snapshot_generation: opt_u64(&v, "snapshot_generation", 0)?,
        })
    }

    /// Operator-facing one-line summary (the format the retired
    /// `ops_view` printed, so dashboards keep scraping unchanged).
    pub fn render(&self) -> String {
        let shard_spread = self
            .l2_shard_sizes
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("/");
        format!(
            "cache l1={} l2={} (shards {shard_spread}) | queue pending={} hwm={} \
             dropped={} rejected={} | batch failed_chunks={} | hit_rate={:.3} \
             p50={}us p99={}us | features={} model=v{}",
            self.l1_size,
            self.l2_size,
            self.pending,
            self.queue_high_water,
            self.dropped,
            self.rejected,
            self.batch_failed_chunks,
            self.hit_rate,
            self.p50_us,
            self.p99_us,
            self.features,
            self.model_version,
        )
    }
}

// ---------------------------------------------------------------------------
// ErrorBody.
// ---------------------------------------------------------------------------

/// Body of every non-2xx protocol error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorBody {
    /// Stable machine-readable error token (e.g. `bad_request`).
    pub error: String,
    /// Human-readable detail.
    pub detail: String,
}

impl ErrorBody {
    /// Build an error body.
    pub fn new(error: impl Into<String>, detail: impl Into<String>) -> Self {
        ErrorBody {
            error: error.into(),
            detail: detail.into(),
        }
    }

    /// Canonical JSON encoding.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"error\":");
        push_json_str(&mut out, &self.error);
        out.push_str(",\"detail\":");
        push_json_str(&mut out, &self.detail);
        out.push('}');
        out
    }

    /// Decode from JSON.
    pub fn from_json(src: &str) -> Result<Self, ProtocolError> {
        let v = Json::parse(src)?;
        Ok(ErrorBody {
            error: req_str(&v, "error")?,
            detail: req_str(&v, "detail")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_request_golden_round_trip() {
        let req = ServeRequest {
            query: "winter \"camping\" \\ gear".into(),
            top_k: 3,
        };
        let s = req.to_json();
        assert_eq!(s, r#"{"query":"winter \"camping\" \\ gear","top_k":3}"#);
        assert_eq!(ServeRequest::from_json(&s).unwrap(), req);
        // top_k defaults when absent
        let d = ServeRequest::from_json(r#"{"query":"camping"}"#).unwrap();
        assert_eq!(d.top_k, DEFAULT_TOP_K);
    }

    #[test]
    fn serve_response_golden_round_trip() {
        let resp = ServeResponse {
            protocol_version: PROTOCOL_VERSION,
            query: "camping".into(),
            status: ServeStatus::Hit,
            layer: Some(CacheLayer::L1),
            model_version: 2,
            intents: vec![
                IntentItem {
                    relation: "USED_FOR_EVE".into(),
                    tail: "sleeping outdoors".into(),
                    score: 0.9,
                },
                IntentItem {
                    relation: "CAPABLE_OF".into(),
                    tail: "keeping warm".into(),
                    score: 0.625,
                },
            ],
            strong_intent: Some("sleeping outdoors".into()),
            snapshot_generation: 4,
        };
        let s = resp.to_json();
        assert_eq!(
            s,
            "{\"protocol_version\":1,\"query\":\"camping\",\"status\":\"hit\",\
             \"layer\":\"l1\",\"model_version\":2,\"intents\":[\
             {\"relation\":\"USED_FOR_EVE\",\"tail\":\"sleeping outdoors\",\"score\":0.9},\
             {\"relation\":\"CAPABLE_OF\",\"tail\":\"keeping warm\",\"score\":0.625}],\
             \"strong_intent\":\"sleeping outdoors\",\"snapshot_generation\":4}"
        );
        assert_eq!(ServeResponse::from_json(&s).unwrap(), resp);
        // a pre-swap encoder omits the appended field; decoders default it
        let legacy = s.replace(",\"snapshot_generation\":4", "");
        let decoded = ServeResponse::from_json(&legacy).unwrap();
        assert_eq!(decoded.snapshot_generation, 0);
    }

    #[test]
    fn serve_response_miss_and_rejected_round_trip() {
        for status in [ServeStatus::Enqueued, ServeStatus::Rejected] {
            let resp = ServeResponse::for_miss(&ServeRequest::new("q"), status, 1, 1);
            let s = resp.to_json();
            assert!(s.contains(&format!("\"status\":\"{}\"", status.as_str())));
            assert!(s.contains("\"layer\":null"));
            assert_eq!(ServeResponse::from_json(&s).unwrap(), resp);
        }
    }

    #[test]
    fn scores_round_trip_bitwise() {
        // shortest round-trip formatting: parse(format(x)) == x bitwise
        for bits in [0x3F00_0000u32, 0x3E99_999A, 0x0000_0001, 0x7F7F_FFFF] {
            let score = f32::from_bits(bits);
            let resp = ServeResponse {
                protocol_version: 1,
                query: "q".into(),
                status: ServeStatus::Hit,
                layer: Some(CacheLayer::L2),
                model_version: 1,
                intents: vec![IntentItem {
                    relation: "USED_FOR_FUNC".into(),
                    tail: "t".into(),
                    score,
                }],
                strong_intent: None,
                snapshot_generation: 0,
            };
            let back = ServeResponse::from_json(&resp.to_json()).unwrap();
            assert_eq!(back.intents[0].score.to_bits(), score.to_bits());
        }
    }

    #[test]
    fn navigate_golden_round_trip() {
        let req = NavigateRequest {
            query: "camping".into(),
            k: 4,
        };
        assert_eq!(req.to_json(), r#"{"query":"camping","k":4}"#);
        assert_eq!(NavigateRequest::from_json(&req.to_json()).unwrap(), req);

        let resp = NavigateResponse {
            protocol_version: PROTOCOL_VERSION,
            query: "camping".into(),
            suggestions: vec![
                NavigateItem {
                    kind: "intent".into(),
                    label: "winter camping".into(),
                },
                NavigateItem {
                    kind: "product_type".into(),
                    label: "air mattress".into(),
                },
            ],
        };
        let s = resp.to_json();
        assert_eq!(
            s,
            "{\"protocol_version\":1,\"query\":\"camping\",\"suggestions\":[\
             {\"kind\":\"intent\",\"label\":\"winter camping\"},\
             {\"kind\":\"product_type\",\"label\":\"air mattress\"}]}"
        );
        assert_eq!(NavigateResponse::from_json(&s).unwrap(), resp);
    }

    #[test]
    fn snapshot_version_golden_round_trip() {
        let sv = SnapshotVersion {
            protocol_version: 1,
            format_version: 1,
            nodes: 6_300_000,
            edges: 29_000_000,
            relations: 15,
            arena_bytes: 123_456_789,
            model_version: 3,
            generation: 2,
        };
        let s = sv.to_json();
        assert_eq!(
            s,
            "{\"protocol_version\":1,\"format_version\":1,\"nodes\":6300000,\
             \"edges\":29000000,\"relations\":15,\"arena_bytes\":123456789,\
             \"model_version\":3,\"generation\":2}"
        );
        assert_eq!(SnapshotVersion::from_json(&s).unwrap(), sv);
        let legacy = s.replace(",\"generation\":2", "");
        assert_eq!(SnapshotVersion::from_json(&legacy).unwrap().generation, 0);
    }

    #[test]
    fn reload_round_trip() {
        let req = ReloadRequest::new("/tmp/next.snap");
        assert_eq!(req.to_json(), r#"{"path":"/tmp/next.snap"}"#);
        assert_eq!(ReloadRequest::from_json(&req.to_json()).unwrap(), req);

        let resp = ReloadResponse {
            protocol_version: PROTOCOL_VERSION,
            generation: 7,
            format_version: 2,
            nodes: 100,
            edges: 400,
        };
        let s = resp.to_json();
        assert_eq!(
            s,
            "{\"protocol_version\":1,\"generation\":7,\"format_version\":2,\
             \"nodes\":100,\"edges\":400}"
        );
        assert_eq!(ReloadResponse::from_json(&s).unwrap(), resp);
    }

    #[test]
    fn ops_stats_round_trip_and_render() {
        let ops = OpsStats {
            ops_version: OPS_VERSION,
            model_version: 3,
            l1_size: 10,
            l2_size: 7,
            l2_shard_sizes: vec![3, 4],
            pending: 2,
            pending_shard_depths: vec![1, 1],
            queue_high_water: 9,
            dropped: 5,
            rejected: 1,
            batch_failed_chunks: 0,
            l1_hits: 12,
            l2_hits: 2,
            misses: 2,
            hit_rate: 0.875,
            p50_us: 12,
            p99_us: 340,
            latency_count: 16,
            latency_buckets: vec![(12, 14), (336, 2)],
            features: 17,
            snapshot_generation: 1,
        };
        let s = ops.to_json();
        assert_eq!(OpsStats::from_json(&s).unwrap(), ops);
        // the render line keeps the old ops_view shape
        let line = ops.render();
        for token in [
            "l1=10",
            "shards 3/4",
            "pending=2",
            "hwm=9",
            "dropped=5",
            "rejected=1",
            "hit_rate=0.875",
            "p50=12us",
            "model=v3",
        ] {
            assert!(line.contains(token), "missing {token} in {line}");
        }
    }

    #[test]
    fn error_body_round_trip() {
        let e = ErrorBody::new("bad_request", "invalid field `query`");
        assert_eq!(
            e.to_json(),
            r#"{"error":"bad_request","detail":"invalid field `query`"}"#
        );
        assert_eq!(ErrorBody::from_json(&e.to_json()).unwrap(), e);
    }

    #[test]
    fn decoder_tolerates_whitespace_and_unknown_fields() {
        let src = "\n{\t\"query\" : \"camping\" ,\n  \"top_k\": 2, \"future_field\": [1, {\"x\": null}] }";
        let req = ServeRequest::from_json(src).unwrap();
        assert_eq!(req.query, "camping");
        assert_eq!(req.top_k, 2);
    }

    #[test]
    fn decoder_handles_escapes_and_surrogates() {
        let v = Json::parse(r#""a\u00e9b \ud83d\ude00 \n\t\\""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aéb 😀 \n\t\\");
        // encoder round-trips non-ascii text verbatim
        let mut out = String::new();
        push_json_str(&mut out, "aéb 😀");
        assert_eq!(Json::parse(&out).unwrap().as_str().unwrap(), "aéb 😀");
    }

    #[test]
    fn decoder_rejects_malformed_payloads() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1,2",
            "\"unterminated",
            "{\"a\": 01e}",
            "nul",
            "{\"a\":1} trailing",
            "\"\\ud800\"",
            "\"\\q\"",
            "{\"a\":--1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed: {bad:?}");
        }
        // depth bomb is rejected, not a stack overflow
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn numbers_preserve_u64_precision() {
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let v = Json::parse("1.5e3").unwrap();
        assert_eq!(v.as_f64(), Some(1500.0));
    }

    #[test]
    fn bad_typed_fields_are_reported() {
        assert_eq!(
            ServeRequest::from_json("{}").unwrap_err(),
            ProtocolError::MissingField("query")
        );
        assert_eq!(
            ServeRequest::from_json(r#"{"query": 7}"#).unwrap_err(),
            ProtocolError::BadField("query")
        );
        assert_eq!(
            ServeResponse::from_json(r#"{"protocol_version":1,"query":"q","status":"nope"}"#)
                .unwrap_err(),
            ProtocolError::BadField("status")
        );
    }
}
