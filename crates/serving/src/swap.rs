//! Hot snapshot swap: generation-tagged serving state behind an RCU-style
//! handle.
//!
//! The paper's system refreshes its knowledge daily; the serving endpoint
//! must pick the new graph up *without* dropping traffic. The mechanism
//! here is read-copy-update over an [`Arc`]:
//!
//! * Everything whose contents depend on the graph — the frozen
//!   [`KgSnapshotView`], the two-layer cache, and the feature store — is
//!   bundled into one immutable [`SnapshotGeneration`] with a
//!   monotonically increasing generation number.
//! * Readers take one [`SnapshotHandle::load`] (a read-locked `Arc`
//!   clone, no allocation) per request and answer entirely from that
//!   generation. A request can therefore never observe a torn mix of old
//!   graph and new cache: per generation, answers are byte-identical.
//! * A swap builds the *whole* next generation off to the side (load +
//!   verify the file, recompute the preload set) and only then publishes
//!   it with one pointer store. In-flight requests finish on the old
//!   generation, which is freed when its last `Arc` drops; late batch
//!   installs into a stale generation die with it by design.
//!
//! Bundling the cache with the view is what makes the swap *correct*
//! rather than merely atomic: a shared cache would race a generation load
//! against a cache lookup and could serve features computed on a graph
//! the response's generation tag disowns.

use crate::cache::CacheStore;
use crate::features::FeatureStore;
use cosmo_kg::KgSnapshotView;
use parking_lot::RwLock;
use std::sync::Arc;

/// One immutable generation of serving state: the graph view plus every
/// cache keyed off it.
pub struct SnapshotGeneration {
    /// Generation number (1 for the build-time snapshot, +1 per swap).
    pub generation: u64,
    /// The frozen knowledge-graph view this generation answers from.
    pub view: Arc<KgSnapshotView>,
    /// The sharded two-layer cache for this generation.
    pub cache: CacheStore,
    /// The sharded feature store for this generation.
    pub features: FeatureStore,
}

/// The RCU publication point: readers clone the current generation's
/// `Arc` cheaply; a writer replaces the pointer atomically.
pub struct SnapshotHandle {
    current: RwLock<Arc<SnapshotGeneration>>,
}

impl SnapshotHandle {
    /// Create a handle publishing `generation`.
    pub fn new(generation: SnapshotGeneration) -> Self {
        SnapshotHandle {
            current: RwLock::new(Arc::new(generation)),
        }
    }

    /// The currently published generation. Callers serve one request
    /// entirely from the returned `Arc` so a concurrent swap cannot tear
    /// the answer.
    pub fn load(&self) -> Arc<SnapshotGeneration> {
        Arc::clone(&self.current.read())
    }

    /// Atomically publish `next`, returning the generation it replaced.
    /// The old generation stays alive until its last reader drops it.
    pub fn publish(&self, next: SnapshotGeneration) -> Arc<SnapshotGeneration> {
        std::mem::replace(&mut *self.current.write(), Arc::new(next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;

    fn generation(n: u64) -> SnapshotGeneration {
        SnapshotGeneration {
            generation: n,
            view: Arc::new(KgSnapshotView::Owned(
                cosmo_kg::KnowledgeGraph::new().freeze(),
            )),
            cache: CacheStore::new(Vec::new(), CacheConfig::default()),
            features: FeatureStore::with_shards(2),
        }
    }

    #[test]
    fn publish_is_visible_and_old_readers_survive() {
        let handle = SnapshotHandle::new(generation(1));
        let before = handle.load();
        assert_eq!(before.generation, 1);
        let old = handle.publish(generation(2));
        assert_eq!(old.generation, 1);
        assert_eq!(handle.load().generation, 2);
        // the pre-swap reader still holds a fully usable generation
        assert_eq!(before.generation, 1);
        assert_eq!(before.view.num_nodes(), 0);
    }

    #[test]
    fn concurrent_readers_never_tear() {
        let handle = Arc::new(SnapshotHandle::new(generation(1)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let handle = Arc::clone(&handle);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let generation = handle.load();
                        // generations only move forward under a reader
                        assert!(generation.generation >= last);
                        last = generation.generation;
                    }
                })
            })
            .collect();
        for n in 2..50 {
            handle.publish(generation(n));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(handle.load().generation, 49);
    }
}
