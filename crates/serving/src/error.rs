//! Error surface of the serving crate.
//!
//! `ServingSystem` construction and batch processing report failures as
//! [`ServingError`] values instead of panicking: an invalid configuration
//! is rejected at build time, and a panicking batch worker degrades the
//! cycle (its chunk is re-queued and surfaced in metrics) rather than
//! killing the caller.

use std::fmt;

/// Everything that can go wrong in the serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServingError {
    /// A configuration field failed [`crate::ServingConfig::validate`].
    InvalidConfig(String),
    /// The builder was finalised without a knowledge graph.
    MissingKnowledgeGraph,
    /// The builder was finalised without a COSMO-LM model.
    MissingModel,
    /// One or more batch-worker chunks panicked during a cycle; the
    /// affected queries were re-queued for the next cycle.
    BatchWorker {
        /// Chunks that panicked this cycle.
        failed_chunks: usize,
        /// Queries from those chunks put back on the pending queue.
        requeued: usize,
    },
}

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServingError::InvalidConfig(msg) => write!(f, "invalid serving config: {msg}"),
            ServingError::MissingKnowledgeGraph => {
                write!(
                    f,
                    "serving system builder needs a knowledge graph (call .kg(...))"
                )
            }
            ServingError::MissingModel => {
                write!(
                    f,
                    "serving system builder needs a COSMO-LM model (call .lm(...))"
                )
            }
            ServingError::BatchWorker {
                failed_chunks,
                requeued,
            } => write!(
                f,
                "{failed_chunks} batch worker chunk(s) panicked; {requeued} queries re-queued"
            ),
        }
    }
}

impl std::error::Error for ServingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ServingError::InvalidConfig("workers must be > 0".into());
        assert!(e.to_string().contains("workers"));
        let e = ServingError::BatchWorker {
            failed_chunks: 2,
            requeued: 7,
        };
        assert!(e.to_string().contains('2') && e.to_string().contains('7'));
        assert!(ServingError::MissingKnowledgeGraph
            .to_string()
            .contains("knowledge graph"));
        assert!(ServingError::MissingModel.to_string().contains("model"));
    }
}
