//! Search-relevance architectures (§4.1.2, Figure 6).
//!
//! * **Bi-encoder** (two-tower): query and product are encoded
//!   *independently*; the MLP head sees only the concatenation of the two
//!   pooled representations — no token-level interaction;
//! * **Cross-encoder**: one joint encoder; we simulate its attention
//!   interactions with hashed query-token × product-token cross features;
//! * **Cross-encoder w/ Intent**: the input is `[Q, P, G]` where `G` is
//!   COSMO knowledge for the pair; G tokens and their crosses against Q and
//!   P let the model see the latent intent that actually determines the
//!   E/S/C/I label.
//!
//! The paper's *fixed vs trainable encoder* regimes map to freezing or
//! training the shared embedding table (heads always train).

use crate::dataset::{EsciDataset, EsciExample, EsciLabel};
use crate::metrics::Confusion;
use cosmo_nn::layers::{Embedding, Mlp};
use cosmo_nn::opt::Adam;
use cosmo_nn::train::{shard_ranges, ShardRunner};
use cosmo_nn::{ParamStore, Tape};
use cosmo_text::hash::hash_str_ns;
use cosmo_text::tokenize;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

const NS_Q: u32 = 41;
const NS_P: u32 = 42;
const NS_G: u32 = 43;
const NS_QP: u32 = 44;
const NS_QG: u32 = 45;

/// How many tokens per field participate in cross features (caps the
/// quadratic blowup).
const CROSS_CAP: usize = 6;

/// Model architecture (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Architecture {
    /// Two-tower bi-encoder.
    BiEncoder,
    /// Joint cross-encoder.
    CrossEncoder,
    /// Cross-encoder with COSMO intent features.
    CrossEncoderWithIntent,
}

impl Architecture {
    /// Display name as in Table 6.
    pub fn name(self) -> &'static str {
        match self {
            Architecture::BiEncoder => "Bi-encoder",
            Architecture::CrossEncoder => "Cross-encoder",
            Architecture::CrossEncoderWithIntent => "Cross-encoder w/ Intent",
        }
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RelevanceConfig {
    /// RNG seed.
    pub seed: u64,
    /// Hash buckets.
    pub buckets: usize,
    /// Embedding width.
    pub dim: usize,
    /// MLP hidden width.
    pub hidden: usize,
    /// Epochs.
    pub epochs: usize,
    /// Batch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// Train the encoder embedding (false = fixed-encoder regime).
    pub trainable_encoder: bool,
    /// Worker threads for sharded gradient steps (`0` = all cores,
    /// `1` = inline). Never changes the result — see `cosmo_nn::train`.
    #[serde(default = "default_threads")]
    pub threads: usize,
    /// Shard size for data-parallel gradient steps; `0` keeps each batch
    /// on a single tape (the exact whole-batch formulation).
    #[serde(default)]
    pub microbatch: usize,
}

fn default_threads() -> usize {
    1
}

impl Default for RelevanceConfig {
    fn default() -> Self {
        RelevanceConfig {
            seed: 0x4E1E,
            buckets: 1 << 13,
            dim: 32,
            hidden: 48,
            epochs: 12,
            batch: 64,
            lr: 0.01,
            trainable_encoder: true,
            threads: 1,
            microbatch: 0,
        }
    }
}

/// A trained relevance model.
pub struct RelevanceModel {
    store: ParamStore,
    emb: Embedding,
    head: Mlp,
    arch: Architecture,
    cfg: RelevanceConfig,
}

/// Train + test Macro/Micro F1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelevanceResult {
    /// Architecture evaluated.
    pub architecture: String,
    /// Encoder regime.
    pub trainable_encoder: bool,
    /// Test Macro F1 (%).
    pub macro_f1: f64,
    /// Test Micro F1 (%).
    pub micro_f1: f64,
}

fn bucket(h: u64, buckets: usize) -> usize {
    (h % buckets as u64) as usize
}

impl RelevanceModel {
    /// Fresh model.
    pub fn new(arch: Architecture, cfg: RelevanceConfig) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let emb = Embedding::new(&mut store, "rel.emb", cfg.buckets, cfg.dim, &mut rng);
        let head_in = match arch {
            Architecture::BiEncoder => 2 * cfg.dim,
            Architecture::CrossEncoder => cfg.dim,
            // [Q,P,QP] block + dedicated G block (segment embeddings)
            Architecture::CrossEncoderWithIntent => 2 * cfg.dim,
        };
        let head = Mlp::new(&mut store, "rel.head", head_in, cfg.hidden, 4, &mut rng);
        if !cfg.trainable_encoder {
            // freeze every parameter registered by the embedding
            // (the table is the single param added first)
            let ids = store.ids();
            store.freeze(ids[0]);
        }
        RelevanceModel {
            store,
            emb,
            head,
            arch,
            cfg,
        }
    }

    /// Forward a batch, returning logits `[n×4]`.
    fn forward_batch(&self, tape: &mut Tape, batch: &[&EsciExample]) -> cosmo_nn::Var {
        forward_examples(
            tape,
            &self.store,
            &self.emb,
            &self.head,
            self.arch,
            self.cfg.buckets,
            batch,
        )
    }

    /// Train on the dataset's train split.
    pub fn train(&mut self, dataset: &EsciDataset) {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x7141);
        let mut opt = Adam::new(self.cfg.lr);
        let mut runner = ShardRunner::new(self.cfg.threads);
        let mut order: Vec<usize> = (0..dataset.train.len()).collect();
        let (arch, buckets, microbatch) = (self.arch, self.cfg.buckets, self.cfg.microbatch);
        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(self.cfg.batch) {
                let batch: Vec<&EsciExample> = chunk.iter().map(|&i| &dataset.train[i]).collect();
                let shards = shard_ranges(batch.len(), microbatch);
                let batch_len = batch.len();
                let (emb, head) = (&self.emb, &self.head);
                runner.grad_step(&mut self.store, shards.len(), |tape, s, shard_i| {
                    let range = shards[shard_i].clone();
                    let shard = &batch[range.start..range.end];
                    let targets: Vec<usize> = shard.iter().map(|e| e.label.index()).collect();
                    let logits = forward_examples(tape, s, emb, head, arch, buckets, shard);
                    let loss = tape.cross_entropy(logits, &targets);
                    tape.scale(loss, range.len() as f32 / batch_len as f32)
                });
                opt.step(&mut self.store);
            }
        }
    }

    /// Predict labels for a batch.
    pub fn predict(&self, examples: &[&EsciExample]) -> Vec<EsciLabel> {
        let mut out = Vec::with_capacity(examples.len());
        for chunk in examples.chunks(256) {
            let mut tape = Tape::new();
            let logits = self.forward_batch(&mut tape, chunk);
            let v = tape.value(logits);
            for r in 0..chunk.len() {
                let row = v.row_slice(r);
                let argmax = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .unwrap()
                    .0;
                out.push(EsciLabel::ALL[argmax]);
            }
        }
        out
    }

    /// Evaluate on the test split.
    pub fn evaluate(&self, dataset: &EsciDataset) -> RelevanceResult {
        let refs: Vec<&EsciExample> = dataset.test.iter().collect();
        let preds = self.predict(&refs);
        let mut conf = Confusion::new(4);
        for (e, p) in refs.iter().zip(preds.iter()) {
            conf.record(e.label.index(), p.index());
        }
        RelevanceResult {
            architecture: self.arch.name().to_string(),
            trainable_encoder: self.cfg.trainable_encoder,
            macro_f1: conf.macro_f1() * 100.0,
            micro_f1: conf.micro_f1() * 100.0,
        }
    }
}

/// Hashed features per field for one example (free function so sharded
/// training closures can run it while the store is mutably borrowed).
fn field_features(arch: Architecture, b: usize, e: &EsciExample) -> (Vec<usize>, Vec<usize>) {
    let q_toks = tokenize(&e.query);
    let p_toks = tokenize(&e.product);
    let g_toks = tokenize(&e.knowledge);
    let mut qf: Vec<usize> = q_toks
        .iter()
        .map(|t| bucket(hash_str_ns(t, NS_Q), b))
        .collect();
    let mut pf: Vec<usize> = p_toks
        .iter()
        .map(|t| bucket(hash_str_ns(t, NS_P), b))
        .collect();
    match arch {
        Architecture::BiEncoder => {
            // strictly independent towers: (query feats, product feats)
            if qf.is_empty() {
                qf.push(0);
            }
            if pf.is_empty() {
                pf.push(0);
            }
            (qf, pf)
        }
        Architecture::CrossEncoder | Architecture::CrossEncoderWithIntent => {
            let mut joint = qf;
            joint.append(&mut pf);
            for q in q_toks.iter().take(CROSS_CAP) {
                for p in p_toks.iter().take(CROSS_CAP) {
                    joint.push(bucket(hash_str_ns(&format!("{q}|{p}"), NS_QP), b));
                }
            }
            if joint.is_empty() {
                joint.push(0);
            }
            let mut g_block = Vec::new();
            if arch == Architecture::CrossEncoderWithIntent {
                // Dedicated G segment: tails + bigram connection
                // markers pooled separately so the intent signal is not
                // diluted by the (much larger) lexical feature set.
                for g in &g_toks {
                    g_block.push(bucket(hash_str_ns(g, NS_G), b));
                }
                for w in g_toks.windows(2) {
                    g_block.push(bucket(hash_str_ns(&format!("{} {}", w[0], w[1]), NS_QG), b));
                }
                if g_block.is_empty() {
                    g_block.push(1);
                }
            }
            (joint, g_block)
        }
    }
}

/// Forward a batch of examples, returning logits `[n×4]`.
fn forward_examples(
    tape: &mut Tape,
    store: &ParamStore,
    emb: &Embedding,
    head: &Mlp,
    arch: Architecture,
    buckets: usize,
    batch: &[&EsciExample],
) -> cosmo_nn::Var {
    let table = emb.table(tape, store);
    let mut ids_a = Vec::new();
    let mut seg_a = Vec::new();
    let mut ids_b = Vec::new();
    let mut seg_b = Vec::new();
    for (s, e) in batch.iter().enumerate() {
        let (a, bfeat) = field_features(arch, buckets, e);
        for f in a {
            ids_a.push(f);
            seg_a.push(s);
        }
        for f in bfeat {
            ids_b.push(f);
            seg_b.push(s);
        }
    }
    let pooled_a = {
        let rows = tape.gather(table, &ids_a);
        tape.segment_mean(rows, &seg_a, batch.len())
    };
    let pooled = if arch == Architecture::CrossEncoder {
        pooled_a
    } else {
        // bi-encoder: second tower; w/ intent: the G segment
        let rows = tape.gather(table, &ids_b);
        let pooled_b = tape.segment_mean(rows, &seg_b, batch.len());
        tape.concat_cols(pooled_a, pooled_b)
    };
    head.forward(tape, store, pooled)
}

/// Train and evaluate one architecture on one dataset (Table 6 cell).
pub fn run_architecture(
    dataset: &EsciDataset,
    arch: Architecture,
    cfg: RelevanceConfig,
) -> RelevanceResult {
    let mut model = RelevanceModel::new(arch, cfg);
    model.train(dataset);
    model.evaluate(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{attach_knowledge, generate_locale, EsciConfig};
    use cosmo_synth::{World, WorldConfig};
    use std::sync::OnceLock;

    /// Shared dataset with an oracle-grade knowledge feature: the world's
    /// latent connection verbalised — what a well-trained COSMO-LM surfaces.
    fn dataset() -> &'static EsciDataset {
        static DS: OnceLock<EsciDataset> = OnceLock::new();
        DS.get_or_init(|| {
            let w = World::generate(WorldConfig::tiny(95));
            let cfg = EsciConfig {
                base_pairs: 1200,
                ..Default::default()
            };
            let mut ds = generate_locale(&w, &cfg, 0);
            let world = w;
            attach_knowledge(&mut ds, |q, p| oracle_knowledge(&world, q, p));
            ds
        })
    }

    /// Knowledge feature from ground truth (tests the architectures, not
    /// the student): shared intents + complement markers.
    fn oracle_knowledge(w: &World, query: &str, product: &str) -> String {
        // locate the query and product by surface text
        let q = w.queries.iter().find(|q| q.text == query);
        let prod = w.products.iter().find(|p| p.title == product);
        let (Some(q), Some(p)) = (q, prod) else {
            return String::new();
        };
        let pt = w.ptype(p.ptype);
        let mut parts = Vec::new();
        for &t in &q.target_types {
            let target = w.ptype(t);
            for (i, wt) in &target.profile {
                if *wt >= 0.5 && pt.weight_of(*i) >= 0.4 {
                    parts.push(format!("shared {}", w.intent(*i).tail));
                }
            }
            if target.complements.contains(&p.ptype) {
                parts.push(format!("complement {}", pt.base));
            }
            if t == p.ptype {
                parts.push(format!("target {}", pt.base));
            }
        }
        parts.join(" . ")
    }

    fn quick_cfg(trainable: bool) -> RelevanceConfig {
        RelevanceConfig {
            epochs: 5,
            trainable_encoder: trainable,
            ..Default::default()
        }
    }

    #[test]
    fn intent_features_beat_plain_cross_encoder() {
        let ds = dataset();
        let cross = run_architecture(ds, Architecture::CrossEncoder, quick_cfg(true));
        let intent = run_architecture(ds, Architecture::CrossEncoderWithIntent, quick_cfg(true));
        assert!(
            intent.macro_f1 > cross.macro_f1 + 3.0,
            "w/ intent {:.1} must clearly beat cross {:.1} (Table 6 shape)",
            intent.macro_f1,
            cross.macro_f1
        );
    }

    #[test]
    fn cross_encoder_beats_bi_encoder() {
        let ds = dataset();
        let bi = run_architecture(ds, Architecture::BiEncoder, quick_cfg(true));
        let cross = run_architecture(ds, Architecture::CrossEncoder, quick_cfg(true));
        // with the query-disjoint split both lexical models are weak; the
        // assertion is that cross attention interactions do not *hurt*
        assert!(
            cross.macro_f1 >= bi.macro_f1 - 4.0,
            "cross {:.1} should stay within noise of bi {:.1}",
            cross.macro_f1,
            bi.macro_f1
        );
    }

    #[test]
    fn trainable_encoder_beats_fixed() {
        let ds = dataset();
        let fixed = run_architecture(ds, Architecture::CrossEncoderWithIntent, quick_cfg(false));
        let tuned = run_architecture(ds, Architecture::CrossEncoderWithIntent, quick_cfg(true));
        assert!(
            tuned.macro_f1 > fixed.macro_f1,
            "trainable {:.1} must beat fixed {:.1}",
            tuned.macro_f1,
            fixed.macro_f1
        );
    }

    #[test]
    fn predictions_cover_test_set() {
        let ds = dataset();
        let model = RelevanceModel::new(Architecture::BiEncoder, quick_cfg(true));
        let refs: Vec<&EsciExample> = ds.test.iter().collect();
        assert_eq!(model.predict(&refs).len(), ds.test.len());
    }

    /// Sharded training must be byte-identical at `threads = 1` and
    /// `threads = 4` (same shard structure, fixed merge order).
    #[test]
    fn relevance_training_is_thread_count_invariant() {
        let ds = dataset();
        let run = |threads: usize| {
            run_architecture(
                ds,
                Architecture::CrossEncoderWithIntent,
                RelevanceConfig {
                    epochs: 2,
                    microbatch: 16,
                    threads,
                    ..Default::default()
                },
            )
        };
        assert_eq!(
            run(1),
            run(4),
            "relevance results diverged across thread counts"
        );
    }
}
