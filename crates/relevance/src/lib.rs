//! # cosmo-relevance
//!
//! Search-relevance application (§4.1): synthetic ESCI datasets for five
//! locales (Table 5), the three architectures of Figure 6 (bi-encoder,
//! cross-encoder, cross-encoder w/ COSMO intent) under fixed and trainable
//! encoder regimes, and Macro/Micro F1 evaluation — the machinery behind
//! Table 6 and Figure 7.

#![forbid(unsafe_code)]

pub mod dataset;
pub mod metrics;
pub mod models;

pub use dataset::{
    attach_knowledge, generate_locale, EsciConfig, EsciDataset, EsciExample, EsciLabel, LOCALES,
};
pub use metrics::{render_per_class, Confusion};
pub use models::{
    run_architecture, Architecture, RelevanceConfig, RelevanceModel, RelevanceResult,
};

use cosmo_kg::{KnowledgeGraph, NodeKind, Relation};
use cosmo_lm::CosmoLm;

/// The production knowledge feature `G` for a query–product pair (§4.1:
/// "we leverage COSMO-LM to generate commonsense knowledge G behind the
/// query-product pairs and explicitly enhance their connections"):
///
/// * intention tails for the query and the product — from the COSMO KG
///   when the node exists, otherwise generated on the fly by COSMO-LM
///   (the cold-query path of the serving stack);
/// * explicit `shared <tail>` markers when the two sides express the same
///   intention — the connection a cross-encoder's attention would
///   otherwise have to discover;
/// * `complement <tail>` markers when a query-side `USED_WITH` tail names
///   something the product title matches.
pub fn pair_knowledge(kg: &KnowledgeGraph, lm: &CosmoLm, query: &str, product: &str) -> String {
    let side_tails = |kind: NodeKind, text: &str, role: &str| -> Vec<(Option<Relation>, String)> {
        if let Some(n) = kg.find_node(kind, text) {
            let mut tails: Vec<(Option<Relation>, String)> = kg
                .top_intents(n, 4)
                .iter()
                .map(|e| (Some(e.relation), kg.node(e.tail).text.clone()))
                .collect();
            // USED_WITH tails carry the complement structure; surface the
            // best two even when they rank below the generic top-4
            let mut with: Vec<(usize, f32, String)> = kg
                .tails_of_rel(n, Relation::UsedWith)
                .enumerate()
                .map(|(i, e)| {
                    (
                        i,
                        e.typicality * (1.0 + e.support as f32).ln(),
                        kg.node(e.tail).text.clone(),
                    )
                })
                .collect();
            with.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            for (_, _, t) in with.into_iter().take(2) {
                if !tails.iter().any(|(_, x)| x == &t) {
                    tails.push((Some(Relation::UsedWith), t));
                }
            }
            if !tails.is_empty() {
                return tails;
            }
        }
        // cold entity: generate with the student
        let input =
            format!("generate a USED_FOR_FUNC explanation in domain unknown for: {role}: {text}");
        lm.generate(&input, None, 2)
            .into_iter()
            .map(|(t, _)| (None, t))
            .collect()
    };
    let q_tails = side_tails(NodeKind::Query, query, "search query");
    let p_tails = side_tails(NodeKind::Product, product, "purchased product");
    let mut parts: Vec<String> = Vec::new();
    for (_, t) in &q_tails {
        parts.push(format!("query intent {t}"));
    }
    for (_, t) in &p_tails {
        parts.push(format!("product intent {t}"));
    }
    for (_, t) in &q_tails {
        if p_tails.iter().any(|(_, pt)| pt == t) {
            parts.push(format!("shared {t}"));
        }
    }
    // complement markers: a USED_WITH tail on one side naming the other
    // side — either literally (tokens inside the surface text) or via the
    // other side's own tails
    let mut mark_complement =
        |tail: &str, other_text: &str, other_tails: &[(Option<Relation>, String)]| {
            let toks = cosmo_text::tokenize(tail);
            let literal =
                !toks.is_empty() && toks.iter().all(|tok| other_text.contains(tok.as_str()));
            let via_tails = other_tails.iter().any(|(_, t)| t == tail);
            if literal || via_tails {
                parts.push(format!("complement {tail}"));
            }
        };
    for (r, t) in &q_tails {
        if *r == Some(Relation::UsedWith) {
            mark_complement(t, product, &p_tails);
        }
    }
    for (r, t) in &p_tails {
        if *r == Some(Relation::UsedWith) {
            mark_complement(t, query, &q_tails);
        }
    }
    parts.join(" . ")
}
