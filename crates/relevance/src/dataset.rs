//! Synthetic ESCI dataset generation (§4.1.1, Table 5).
//!
//! The paper evaluates on the KDD Cup 2022 shopping-queries dataset plus
//! private per-locale datasets (US, CA, UK, IN). Task 2 labels each
//! query–product pair **E**xact / **S**ubstitute / **C**omplement /
//! **I**rrelevant. We generate the equivalent from the world model:
//!
//! * **Exact** — the product's type genuinely satisfies the query;
//! * **Substitute** — the product shares a typical intent with a target
//!   type but is not itself a target;
//! * **Complement** — the product's type complements a target type;
//! * **Irrelevant** — none of the above.
//!
//! The class mix is skewed towards Exact, as in Table 5 (`# Exact Pairs`
//! dominates). Per-locale variation: a locale-specific seed, spelling
//! shifts (e.g. "color"→"colour" for UK-style locales) and differing
//! volumes — enough to show generalisation without pretending to model
//! real market differences.
//!
//! Crucially, the generator preserves the **semantic gap**: broad queries
//! are intent phrases while product titles are brand + type tokens, so
//! lexical overlap alone cannot decide E vs S vs C — only the latent
//! intent does, which is exactly what the COSMO knowledge feature G
//! surfaces.

use cosmo_synth::{DomainId, ProductTypeId, World};
use cosmo_text::FxHashSet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// ESCI label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EsciLabel {
    /// Exact match.
    Exact,
    /// Substitute.
    Substitute,
    /// Complement.
    Complement,
    /// Irrelevant.
    Irrelevant,
}

impl EsciLabel {
    /// All four classes.
    pub const ALL: [EsciLabel; 4] = [
        EsciLabel::Exact,
        EsciLabel::Substitute,
        EsciLabel::Complement,
        EsciLabel::Irrelevant,
    ];

    /// Class index.
    pub fn index(self) -> usize {
        EsciLabel::ALL.iter().position(|&l| l == self).unwrap()
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EsciLabel::Exact => "Exact",
            EsciLabel::Substitute => "Substitute",
            EsciLabel::Complement => "Complement",
            EsciLabel::Irrelevant => "Irrelevant",
        }
    }
}

/// One labelled query–product pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EsciExample {
    /// Query surface text (locale-shifted).
    pub query: String,
    /// Product surface text (title + type, locale-shifted).
    pub product: String,
    /// COSMO knowledge feature `G` for the pair (filled by the caller —
    /// empty for the no-intent baselines).
    pub knowledge: String,
    /// Ground-truth label.
    pub label: EsciLabel,
}

/// A locale's dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EsciDataset {
    /// Locale name.
    pub locale: String,
    /// Training split.
    pub train: Vec<EsciExample>,
    /// Test split.
    pub test: Vec<EsciExample>,
}

impl EsciDataset {
    /// Table 5 statistics:
    /// `(train pairs, test pairs, exact pairs, unique queries, unique products)`.
    pub fn stats(&self) -> (usize, usize, usize, usize, usize) {
        let all = self.train.iter().chain(self.test.iter());
        let mut queries: FxHashSet<&str> = FxHashSet::default();
        let mut products: FxHashSet<&str> = FxHashSet::default();
        let mut exact = 0;
        for e in all {
            queries.insert(&e.query);
            products.insert(&e.product);
            exact += usize::from(e.label == EsciLabel::Exact);
        }
        (
            self.train.len(),
            self.test.len(),
            exact,
            queries.len(),
            products.len(),
        )
    }
}

/// Locale descriptors: `(name, seed offset, size multiplier, uk spelling)`.
pub const LOCALES: [(&str, u64, f64, bool); 5] = [
    ("KDD Cup", 0, 1.0, false),
    ("US", 1, 0.85, false),
    ("CA", 2, 0.18, false),
    ("UK", 3, 0.35, true),
    ("IN", 4, 1.05, true),
];

/// Dataset-size parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EsciConfig {
    /// RNG seed.
    pub seed: u64,
    /// Base pair count (scaled per locale).
    pub base_pairs: usize,
    /// Test fraction.
    pub test_fraction: f64,
    /// Class mixture `(exact, substitute, complement, irrelevant)` —
    /// Exact dominates as in Table 5.
    pub class_mix: [f64; 4],
    /// Fraction of pairs whose query is broad (the semantic-gap case that
    /// motivates COSMO — §4.1: "winter clothes" ↛ "keep warm" lexically).
    pub broad_fraction: f64,
}

impl Default for EsciConfig {
    fn default() -> Self {
        EsciConfig {
            seed: 0xE5C1,
            base_pairs: 6_000,
            test_fraction: 0.25,
            class_mix: [0.62, 0.16, 0.10, 0.12],
            broad_fraction: 0.8,
        }
    }
}

/// Apply a light spelling/locale shift to text.
fn localize(text: &str, uk: bool) -> String {
    if uk {
        text.replace("color", "colour")
            .replace("organize", "organise")
    } else {
        text.to_string()
    }
}

/// Generate the dataset for one locale. Knowledge features start empty;
/// use [`attach_knowledge`] to fill them.
pub fn generate_locale(world: &World, cfg: &EsciConfig, locale_idx: usize) -> EsciDataset {
    let (name, seed_off, size_mult, uk) = LOCALES[locale_idx];
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (seed_off.wrapping_mul(0x9E37_79B9)));
    let n = ((cfg.base_pairs as f64) * size_mult) as usize;
    let mut examples = Vec::with_capacity(n);

    // index: intent -> product types carrying it typically (for substitutes)
    let num_types = world.product_types.len();
    while examples.len() < n {
        // pick a query
        let d = DomainId(rng.gen_range(0..18u8));
        let want_broad = rng.gen_bool(cfg.broad_fraction);
        let qid = world.sample_query(d, &mut rng);
        let q = world.query(qid);
        if q.target_types.is_empty() {
            continue;
        }
        let is_broad = matches!(q.kind, cosmo_synth::QueryKind::Broad(_));
        if want_broad != is_broad {
            continue;
        }
        // decide the class
        let x: f64 = rng.gen_range(0.0..cfg.class_mix.iter().sum());
        let mut label = EsciLabel::Irrelevant;
        let mut acc = 0.0;
        for (i, &w) in cfg.class_mix.iter().enumerate() {
            acc += w;
            if x < acc {
                label = EsciLabel::ALL[i];
                break;
            }
        }
        // pick a product realising that class
        let target = q.target_types[rng.gen_range(0..q.target_types.len())];
        let ptype: Option<ProductTypeId> = match label {
            EsciLabel::Exact => Some(target),
            EsciLabel::Substitute => {
                // shares a typical intent with the target, but not a target
                let tgt_profile = &world.ptype(target).profile;
                let typical: Vec<_> = tgt_profile
                    .iter()
                    .filter(|(_, w)| *w >= 0.5)
                    .map(|(i, _)| *i)
                    .collect();
                let mut found = None;
                for _ in 0..40 {
                    let cand = ProductTypeId(rng.gen_range(0..num_types as u32));
                    if q.target_types.contains(&cand) || cand == target {
                        continue;
                    }
                    let pt = world.ptype(cand);
                    if typical.iter().any(|&i| pt.weight_of(i) >= 0.4) {
                        found = Some(cand);
                        break;
                    }
                }
                found
            }
            EsciLabel::Complement => {
                let comps = &world.ptype(target).complements;
                let eligible: Vec<_> = comps
                    .iter()
                    .copied()
                    .filter(|c| !q.target_types.contains(c))
                    .collect();
                eligible.choose(&mut rng).copied()
            }
            EsciLabel::Irrelevant => {
                // a type sharing nothing with the query targets
                let mut found = None;
                for _ in 0..40 {
                    let cand = ProductTypeId(rng.gen_range(0..num_types as u32));
                    if q.target_types.contains(&cand) {
                        continue;
                    }
                    let pt = world.ptype(cand);
                    let target_profile = &world.ptype(target).profile;
                    let shares = target_profile.iter().any(|(i, _)| pt.weight_of(*i) > 0.0);
                    let complements = world.ptype(target).complements.contains(&cand);
                    if !shares && !complements {
                        found = Some(cand);
                        break;
                    }
                }
                found
            }
        };
        let Some(ptype) = ptype else { continue };
        let prods = world.products_of_type(ptype);
        let product = world.product(prods[rng.gen_range(0..prods.len())]);
        examples.push(EsciExample {
            query: localize(&q.text, uk),
            product: localize(&product.title, uk),
            knowledge: String::new(),
            label,
        });
    }
    examples.shuffle(&mut rng);
    // Split by *query*, as the real ESCI task does: test queries never
    // appear in training, so the classifier cannot memorise per-query
    // lexical shortcuts and must rely on generalising features (which is
    // exactly where the COSMO knowledge earns its keep).
    let mut queries: Vec<&str> = examples.iter().map(|e| e.query.as_str()).collect();
    queries.sort_unstable();
    queries.dedup();
    let test_queries: FxHashSet<String> = queries
        .iter()
        .filter(|q| {
            let h = cosmo_text::hash::hash_str_ns(q, 99 + seed_off as u32);
            (h % 1000) as f64 / 1000.0 < cfg.test_fraction
        })
        .map(|q| q.to_string())
        .collect();
    let (test, train): (Vec<EsciExample>, Vec<EsciExample>) = examples
        .into_iter()
        .partition(|e| test_queries.contains(&e.query));
    EsciDataset {
        locale: name.to_string(),
        train,
        test,
    }
}

/// Attach COSMO knowledge features to every example using `knowledge_fn`
/// (typically the serving stack's `compute_features` or the student's
/// generation). The same function serves train and test, as in deployment.
pub fn attach_knowledge(
    dataset: &mut EsciDataset,
    mut knowledge_fn: impl FnMut(&str, &str) -> String,
) {
    for e in dataset.train.iter_mut().chain(dataset.test.iter_mut()) {
        e.knowledge = knowledge_fn(&e.query, &e.product);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmo_synth::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::tiny(91))
    }

    fn small_cfg() -> EsciConfig {
        EsciConfig {
            base_pairs: 600,
            ..Default::default()
        }
    }

    #[test]
    fn all_locales_generate() {
        let w = world();
        for i in 0..LOCALES.len() {
            let ds = generate_locale(&w, &small_cfg(), i);
            assert!(!ds.train.is_empty(), "{}", ds.locale);
            assert!(!ds.test.is_empty());
        }
    }

    #[test]
    fn exact_dominates_class_mix() {
        let w = world();
        let ds = generate_locale(&w, &small_cfg(), 0);
        let (train, test, exact, uq, up) = ds.stats();
        assert_eq!(train + test, ds.train.len() + ds.test.len());
        assert!(
            exact * 2 > train + test,
            "Exact should be the majority class"
        );
        assert!(uq > 10 && up > 10);
    }

    #[test]
    fn all_four_classes_present() {
        let w = world();
        let ds = generate_locale(&w, &small_cfg(), 0);
        for label in EsciLabel::ALL {
            assert!(
                ds.train.iter().any(|e| e.label == label),
                "missing class {label:?}"
            );
        }
    }

    #[test]
    fn locales_differ_in_size_and_content() {
        let w = world();
        let us = generate_locale(&w, &small_cfg(), 1);
        let ca = generate_locale(&w, &small_cfg(), 2);
        assert!(
            us.train.len() > ca.train.len() * 2,
            "US must dwarf CA (Table 5)"
        );
        let uk = generate_locale(&w, &small_cfg(), 3);
        let _ = uk; // UK spelling shift exercised in localize test below
    }

    #[test]
    fn uk_spelling_shift() {
        assert_eq!(localize("color organizer", true), "colour organiser");
        assert_eq!(localize("color", false), "color");
    }

    #[test]
    fn deterministic() {
        let w = world();
        let a = generate_locale(&w, &small_cfg(), 0);
        let b = generate_locale(&w, &small_cfg(), 0);
        assert_eq!(a.train.len(), b.train.len());
        assert_eq!(a.train[0].query, b.train[0].query);
    }

    #[test]
    fn attach_knowledge_fills_all() {
        let w = world();
        let mut ds = generate_locale(&w, &small_cfg(), 0);
        attach_knowledge(&mut ds, |q, _| format!("intent of {q}"));
        assert!(ds.train.iter().all(|e| !e.knowledge.is_empty()));
        assert!(ds.test.iter().all(|e| !e.knowledge.is_empty()));
    }
}
