//! Classification metrics: confusion matrix, Macro F1, Micro F1 (§4.1.1:
//! "Considering the class imbalance distribution, we report Macro F1 and
//! Micro F1 but focus more on the former one").

use serde::{Deserialize, Serialize};

/// A `k × k` confusion matrix (`rows = truth`, `cols = prediction`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Confusion {
    k: usize,
    counts: Vec<u64>,
}

// fields stay private; in-module helpers access them directly

impl Confusion {
    /// Empty `k`-class matrix.
    pub fn new(k: usize) -> Self {
        Confusion {
            k,
            counts: vec![0; k * k],
        }
    }

    /// Record one prediction.
    pub fn record(&mut self, truth: usize, pred: usize) {
        assert!(truth < self.k && pred < self.k);
        self.counts[truth * self.k + pred] += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-class F1 (0 when the class never appears in truth or pred).
    pub fn f1_per_class(&self) -> Vec<f64> {
        (0..self.k)
            .map(|c| {
                let tp = self.counts[c * self.k + c] as f64;
                let fp: f64 = (0..self.k)
                    .filter(|&r| r != c)
                    .map(|r| self.counts[r * self.k + c] as f64)
                    .sum();
                let fn_: f64 = (0..self.k)
                    .filter(|&p| p != c)
                    .map(|p| self.counts[c * self.k + p] as f64)
                    .sum();
                if tp == 0.0 {
                    0.0
                } else {
                    2.0 * tp / (2.0 * tp + fp + fn_)
                }
            })
            .collect()
    }

    /// Macro F1: unweighted mean of per-class F1.
    pub fn macro_f1(&self) -> f64 {
        let f1 = self.f1_per_class();
        f1.iter().sum::<f64>() / f1.len() as f64
    }

    /// Micro F1 (= accuracy for single-label classification).
    pub fn micro_f1(&self) -> f64 {
        let correct: u64 = (0..self.k).map(|c| self.counts[c * self.k + c]).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let mut c = Confusion::new(3);
        for class in 0..3 {
            for _ in 0..5 {
                c.record(class, class);
            }
        }
        assert!((c.macro_f1() - 1.0).abs() < 1e-12);
        assert!((c.micro_f1() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn macro_punishes_minority_failure_more_than_micro() {
        let mut c = Confusion::new(2);
        // 98 correct majority, 2 minority all wrong
        for _ in 0..98 {
            c.record(0, 0);
        }
        for _ in 0..2 {
            c.record(1, 0);
        }
        assert!(c.micro_f1() > 0.97);
        assert!(c.macro_f1() < 0.51);
    }

    #[test]
    fn known_f1_values() {
        let mut c = Confusion::new(2);
        // class 0: tp=3, fn=1; class1: tp=2, fp=1
        c.record(0, 0);
        c.record(0, 0);
        c.record(0, 0);
        c.record(0, 1);
        c.record(1, 1);
        c.record(1, 1);
        let f1 = c.f1_per_class();
        assert!((f1[0] - 6.0 / 7.0).abs() < 1e-12);
        assert!((f1[1] - 0.8).abs() < 1e-12);
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn empty_matrix_is_zero() {
        let c = Confusion::new(4);
        assert_eq!(c.micro_f1(), 0.0);
        assert_eq!(c.macro_f1(), 0.0);
    }
}

/// Per-class precision/recall/F1 report rendered from a confusion matrix,
/// with class names supplied by the caller — the diagnostic view behind
/// the Macro F1 headline (Substitute/Complement confusion is where our
/// models lose most of it).
pub fn render_per_class(conf: &Confusion, names: &[&str]) -> String {
    use std::fmt::Write as _;
    let f1 = conf.f1_per_class();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>9} {:>9} {:>9}",
        "Class", "Precision", "Recall", "F1"
    );
    for (c, name) in names.iter().enumerate() {
        let (p, r) = conf.precision_recall(c);
        let _ = writeln!(
            out,
            "{:<14} {:>8.1}% {:>8.1}% {:>8.1}%",
            name,
            p * 100.0,
            r * 100.0,
            f1[c] * 100.0
        );
    }
    let _ = writeln!(
        out,
        "{:<14} {:>29.1}% macro / {:.1}% micro",
        "Overall",
        conf.macro_f1() * 100.0,
        conf.micro_f1() * 100.0
    );
    out
}

impl Confusion {
    /// `(precision, recall)` of class `c` (0 when undefined).
    pub fn precision_recall(&self, c: usize) -> (f64, f64) {
        assert!(c < self.k);
        let tp = self.counts[c * self.k + c] as f64;
        let pred: f64 = (0..self.k)
            .map(|r| self.counts[r * self.k + c] as f64)
            .sum();
        let truth: f64 = (0..self.k)
            .map(|p| self.counts[c * self.k + p] as f64)
            .sum();
        (
            if pred == 0.0 { 0.0 } else { tp / pred },
            if truth == 0.0 { 0.0 } else { tp / truth },
        )
    }
}

#[cfg(test)]
mod per_class_tests {
    use super::*;

    #[test]
    fn precision_recall_known_values() {
        let mut c = Confusion::new(2);
        // truth 0 → pred 0 (x3), truth 0 → pred 1 (x1), truth 1 → pred 1 (x2)
        c.record(0, 0);
        c.record(0, 0);
        c.record(0, 0);
        c.record(0, 1);
        c.record(1, 1);
        c.record(1, 1);
        let (p0, r0) = c.precision_recall(0);
        assert!((p0 - 1.0).abs() < 1e-12);
        assert!((r0 - 0.75).abs() < 1e-12);
        let (p1, r1) = c.precision_recall(1);
        assert!((p1 - 2.0 / 3.0).abs() < 1e-12);
        assert!((r1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_contains_all_classes() {
        let mut c = Confusion::new(4);
        c.record(0, 0);
        c.record(1, 2);
        c.record(3, 3);
        let r = render_per_class(&c, &["Exact", "Substitute", "Complement", "Irrelevant"]);
        for n in ["Exact", "Substitute", "Complement", "Irrelevant", "Overall"] {
            assert!(r.contains(n), "missing {n}");
        }
    }

    #[test]
    fn empty_class_is_zero_not_nan() {
        let mut c = Confusion::new(3);
        c.record(0, 0);
        let (p, r) = c.precision_recall(2);
        assert_eq!((p, r), (0.0, 0.0));
    }
}
