//! Table 8 shape at reduced scale: COSMO-GNN must beat GCE-GNN (the model
//! it extends) and FPMC must trail the neural models.

use cosmo_sessrec::*;
use cosmo_synth::{World, WorldConfig};

fn dataset() -> SessionDataset {
    let w = World::generate(WorldConfig::tiny(131));
    let mut ds = generate_sessions(&w, &SessionConfig::clothing(9, 60));
    // sparse categorical encoding of the query's top intent (what the
    // student's constrained decoding produces)
    attach_knowledge(&mut ds, |text| {
        let mut v = vec![0.0f32; 32];
        v[(cosmo_text::hash::hash_str_ns(text, 77) % 32) as usize] = 1.0;
        v
    });
    ds
}

#[test]
fn cosmo_gnn_beats_gce_gnn_and_fpmc() {
    let ds = dataset();
    let cfg = TrainConfig {
        epochs: 3,
        dim: 16,
        ..Default::default()
    };
    let mut gce = GceGnn::new();
    gce.fit(&ds, &cfg);
    let gce_scores = evaluate(&gce, &ds, 10);

    let mut cosmo = CosmoGnn::new();
    cosmo.fit(&ds, &cfg);
    let cosmo_scores = evaluate(&cosmo, &ds, 10);

    let mut fpmc = Fpmc::new();
    fpmc.fit(&ds, &cfg);
    let fpmc_scores = evaluate(&fpmc, &ds, 10);

    assert!(
        cosmo_scores.hits > gce_scores.hits,
        "COSMO-GNN ({:.1}) must beat GCE-GNN ({:.1}) on Hits@10 — §4.2.4",
        cosmo_scores.hits,
        gce_scores.hits
    );
    assert!(
        cosmo_scores.hits > fpmc_scores.hits,
        "COSMO-GNN ({:.1}) must beat FPMC ({:.1})",
        cosmo_scores.hits,
        fpmc_scores.hits
    );
    assert!(cosmo_scores.ndcg > 0.0 && cosmo_scores.mrr > 0.0);
}

#[test]
fn every_model_trains_and_scores() {
    let w = World::generate(WorldConfig::tiny(132));
    let mut ds = generate_sessions(&w, &SessionConfig::electronics(10, 12));
    attach_knowledge(&mut ds, |text| vec![text.len() as f32 % 7.0; 8]);
    let cfg = TrainConfig {
        epochs: 1,
        dim: 8,
        max_sessions: 10,
        ..Default::default()
    };
    let results = run_all_models(&ds, &cfg, 10);
    assert_eq!(results.len(), 8);
    let names: Vec<&str> = results.iter().map(|r| r.model.as_str()).collect();
    assert_eq!(
        names,
        [
            "FPMC",
            "GRU4Rec",
            "STAMP",
            "CSRM",
            "SRGNN",
            "GC-SAN",
            "GCE-GNN",
            "COSMO-GNN"
        ]
    );
    for r in &results {
        assert!(r.hits >= 0.0 && r.hits <= 100.0);
        assert!(
            r.ndcg <= r.hits + 1e-9,
            "{}: ndcg must not exceed hits",
            r.model
        );
    }
}
