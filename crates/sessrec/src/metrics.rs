//! Ranking metrics for session-based recommendation (§4.2.1):
//! Hits@K, NDCG@K, MRR@K with a single ground-truth next item.

use serde::{Deserialize, Serialize};

/// Accumulated ranking metrics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RankMetrics {
    /// Evaluated predictions.
    pub n: usize,
    hits: f64,
    ndcg: f64,
    mrr: f64,
}

impl RankMetrics {
    /// Record one prediction: `scores` over the item vocabulary, `target`
    /// the true next item, cutoff `k`. Ties broken by item index
    /// (deterministic).
    pub fn record(&mut self, scores: &[f32], target: usize, k: usize) {
        // rank = number of items scoring strictly higher (+ ties with a
        // lower index)
        let ts = scores[target];
        let mut rank = 1usize;
        for (i, &s) in scores.iter().enumerate() {
            if i == target {
                continue;
            }
            if s > ts || (s == ts && i < target) {
                rank += 1;
            }
        }
        self.n += 1;
        if rank <= k {
            self.hits += 1.0;
            self.ndcg += 1.0 / ((rank as f64) + 1.0).log2();
            self.mrr += 1.0 / rank as f64;
        }
    }

    /// Hits@K (%).
    pub fn hits(&self) -> f64 {
        100.0 * self.hits / self.n.max(1) as f64
    }

    /// NDCG@K (%).
    pub fn ndcg(&self) -> f64 {
        100.0 * self.ndcg / self.n.max(1) as f64
    }

    /// MRR@K (%).
    pub fn mrr(&self) -> f64 {
        100.0 * self.mrr / self.n.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_rank_gives_full_credit() {
        let mut m = RankMetrics::default();
        m.record(&[0.1, 0.9, 0.2], 1, 10);
        assert_eq!(m.hits(), 100.0);
        assert_eq!(m.ndcg(), 100.0);
        assert_eq!(m.mrr(), 100.0);
    }

    #[test]
    fn outside_cutoff_gives_zero() {
        let mut m = RankMetrics::default();
        let mut scores = vec![1.0f32; 20];
        scores[19] = 0.0;
        m.record(&scores, 19, 10);
        assert_eq!(m.hits(), 0.0);
        assert_eq!(m.mrr(), 0.0);
    }

    #[test]
    fn rank_two_values() {
        let mut m = RankMetrics::default();
        m.record(&[0.9, 0.5, 0.1], 1, 10);
        assert_eq!(m.hits(), 100.0);
        assert!((m.mrr() - 50.0).abs() < 1e-9);
        assert!((m.ndcg() - 100.0 / 3f64.log2()).abs() < 1e-9);
    }

    #[test]
    fn ties_break_by_index() {
        let mut m = RankMetrics::default();
        // target 2 ties with item 0: item 0 wins the tie → rank 2
        m.record(&[0.5, 0.1, 0.5], 2, 10);
        assert!((m.mrr() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn averages_over_records() {
        let mut m = RankMetrics::default();
        m.record(&[0.9, 0.1], 0, 10); // rank 1
        m.record(&[0.9, 0.1], 1, 10); // rank 2
        assert_eq!(m.n, 2);
        assert!((m.hits() - 100.0).abs() < 1e-9);
        assert!((m.mrr() - 75.0).abs() < 1e-9);
    }
}
