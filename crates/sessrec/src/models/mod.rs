//! Session-based recommendation models (§4.2.2–§4.2.3).
//!
//! Eight models, each implemented around its defining mechanism:
//! [`seq`] hosts the sequential baselines (FPMC, GRU4Rec, STAMP, CSRM),
//! [`gnn`] the graph models (SR-GNN, GC-SAN, GCE-GNN) and COSMO-GNN.
//! They share this module's training/evaluation harness: next-item
//! prediction with full-softmax cross-entropy, evaluated with
//! Hits/NDCG/MRR@10 on the last item of each test session.

pub mod gnn;
pub mod seq;

use crate::dataset::SessionDataset;
use crate::metrics::RankMetrics;
use cosmo_text::FxHashMap;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Shared training configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// RNG seed.
    pub seed: u64,
    /// Embedding / hidden width.
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Per-session prefix instances for final-position models (session
    /// augmentation); 0 = use every prefix.
    pub prefixes_per_session: usize,
    /// Cap on training sessions per epoch (0 = all).
    pub max_sessions: usize,
    /// Worker threads for gradient steps (0 = all cores). Only sizes the
    /// pool: shard structure never depends on it, so any thread count
    /// produces byte-identical models.
    #[serde(default = "default_threads")]
    pub threads: usize,
    /// Gradient grouping knob. `0` keeps each model's original schedule
    /// bitwise (one optimizer step per prefix instance / session; FPMC's
    /// whole-chunk tape). A value `k > 0` groups `k` instances per
    /// optimizer step — one shard each, merged in instance order — and
    /// shards FPMC's chunk into groups of `k` transition pairs. The
    /// grouping depends only on the data and `k`, never on `threads`.
    #[serde(default)]
    pub batch_instances: usize,
}

fn default_threads() -> usize {
    1
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            seed: 0x5E55,
            dim: 32,
            epochs: 6,
            lr: 0.005,
            prefixes_per_session: 0,
            max_sessions: 0,
            threads: 1,
            batch_instances: 0,
        }
    }
}

/// The common model interface.
pub trait SessionModel {
    /// Model name as printed in Table 8.
    fn name(&self) -> &'static str;
    /// Train on the dataset's train split.
    fn fit(&mut self, ds: &SessionDataset, cfg: &TrainConfig);
    /// Score every item as the next item after the given prefix. `queries`
    /// carries one more entry than `items`: the search query active at the
    /// prediction step (the recommender always sees the current query,
    /// §4.2 — only COSMO-GNN exploits it).
    fn score_prefix(&self, ds: &SessionDataset, items: &[usize], queries: &[usize]) -> Vec<f32>;
}

/// One Table 8 cell triple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelScores {
    /// Model name.
    pub model: String,
    /// Hits@K (%).
    pub hits: f64,
    /// NDCG@K (%).
    pub ndcg: f64,
    /// MRR@K (%).
    pub mrr: f64,
}

/// Evaluate a trained model on the test split (predict the last item of
/// each session from its prefix).
pub fn evaluate(model: &dyn SessionModel, ds: &SessionDataset, k: usize) -> ModelScores {
    let mut m = RankMetrics::default();
    for s in &ds.test {
        let n = s.items.len();
        if n < 2 {
            continue;
        }
        let scores = model.score_prefix(ds, &s.items[..n - 1], &s.queries[..n]);
        m.record(&scores, s.items[n - 1], k);
    }
    ModelScores {
        model: model.name().to_string(),
        hits: m.hits(),
        ndcg: m.ndcg(),
        mrr: m.mrr(),
    }
}

/// Training instances for final-position models: `(session index,
/// prefix length)` pairs, up to `prefixes_per_session` per session,
/// always including the full prefix.
pub fn prefix_instances(
    ds: &SessionDataset,
    cfg: &TrainConfig,
    rng: &mut StdRng,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut session_ids: Vec<usize> = (0..ds.train.len()).collect();
    if cfg.max_sessions > 0 && cfg.max_sessions < session_ids.len() {
        session_ids.shuffle(rng);
        session_ids.truncate(cfg.max_sessions);
    }
    for &si in &session_ids {
        let n = ds.train[si].items.len();
        if n < 2 {
            continue;
        }
        if cfg.prefixes_per_session == 0 {
            // every prefix (matches the per-position training of the
            // sequential models)
            for len in 2..=n {
                out.push((si, len));
            }
        } else {
            out.push((si, n)); // full session: predict last from rest
            let extra = cfg.prefixes_per_session.saturating_sub(1);
            for _ in 0..extra {
                let len = 2 + (rand::Rng::gen_range(rng, 0..(n - 1)));
                out.push((si, len));
            }
        }
    }
    out.shuffle(rng);
    out
}

/// Global item co-occurrence neighbours (GCE-GNN's global graph): for each
/// item, its top-`k` co-occurring items (window ±1 within training
/// sessions) with normalised weights.
pub fn global_cooccurrence(ds: &SessionDataset, k: usize) -> Vec<Vec<(usize, f32)>> {
    let v = ds.num_items();
    let mut counts: Vec<FxHashMap<usize, u32>> = vec![FxHashMap::default(); v];
    for s in &ds.train {
        for w in s.items.windows(2) {
            if w[0] != w[1] {
                *counts[w[0]].entry(w[1]).or_insert(0) += 1;
                *counts[w[1]].entry(w[0]).or_insert(0) += 1;
            }
        }
    }
    counts
        .into_iter()
        .map(|m| {
            let mut pairs: Vec<(usize, u32)> = m.into_iter().collect();
            pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            pairs.truncate(k);
            let total: f32 = pairs.iter().map(|(_, c)| *c as f32).sum();
            pairs
                .into_iter()
                .map(|(i, c)| (i, c as f32 / total.max(1.0)))
                .collect()
        })
        .collect()
}

/// Deterministic RNG for a config.
pub fn rng_for(cfg: &TrainConfig) -> StdRng {
    StdRng::seed_from_u64(cfg.seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_sessions, SessionConfig};
    use cosmo_synth::{World, WorldConfig};

    fn ds() -> SessionDataset {
        let w = World::generate(WorldConfig::tiny(111));
        generate_sessions(&w, &SessionConfig::clothing(7, 30))
    }

    #[test]
    fn prefix_instances_include_full_sessions() {
        let ds = ds();
        let cfg = TrainConfig::default();
        let mut rng = rng_for(&cfg);
        let inst = prefix_instances(&ds, &cfg, &mut rng);
        assert!(inst.len() >= ds.train.len());
        for &(si, len) in &inst {
            assert!(len >= 2 && len <= ds.train[si].items.len());
        }
    }

    #[test]
    fn global_graph_symmetric_and_normalised() {
        let ds = ds();
        let g = global_cooccurrence(&ds, 5);
        assert_eq!(g.len(), ds.num_items());
        for nbrs in &g {
            assert!(nbrs.len() <= 5);
            if !nbrs.is_empty() {
                let sum: f32 = nbrs.iter().map(|(_, w)| w).sum();
                assert!(sum <= 1.0001);
            }
        }
    }

    /// Train a model with the given thread count and return its report
    /// plus raw scores for one probe prefix.
    fn fit_and_probe(
        model: &mut dyn SessionModel,
        ds: &SessionDataset,
        threads: usize,
    ) -> (ModelScores, Vec<f32>) {
        let cfg = TrainConfig {
            dim: 8,
            epochs: 1,
            prefixes_per_session: 1,
            max_sessions: 12,
            threads,
            batch_instances: 3,
            ..Default::default()
        };
        model.fit(ds, &cfg);
        let probe = ds
            .test
            .iter()
            .find(|s| s.items.len() >= 2)
            .expect("a scorable test session");
        let n = probe.items.len();
        let scores = model.score_prefix(ds, &probe.items[..n - 1], &probe.queries[..n]);
        (evaluate(model, ds, 10), scores)
    }

    /// The acceptance criterion: with a fixed `batch_instances` grouping,
    /// `threads = 1` and `threads = 4` must produce byte-identical models
    /// (reports and raw logits) for every training style — FPMC's sharded
    /// chunk tape, GRU4Rec's per-session tape, STAMP's per-instance tape
    /// and SR-GNN's graph pipeline.
    #[test]
    fn training_is_thread_count_invariant() {
        let ds = ds();
        let makers: Vec<fn() -> Box<dyn SessionModel>> = vec![
            || Box::new(super::seq::Fpmc::new()),
            || Box::new(super::seq::Gru4Rec::new()),
            || Box::new(super::seq::Stamp::new()),
            || Box::new(super::gnn::SrGnn::new()),
        ];
        for make in makers {
            let (r1, s1) = {
                let mut m = make();
                fit_and_probe(m.as_mut(), &ds, 1)
            };
            let (r4, s4) = {
                let mut m = make();
                fit_and_probe(m.as_mut(), &ds, 4)
            };
            assert_eq!(r1, r4, "report diverged across thread counts");
            assert_eq!(s1, s4, "probe scores diverged across thread counts");
        }
    }

    #[test]
    fn max_sessions_caps_instances() {
        let ds = ds();
        let cfg = TrainConfig {
            max_sessions: 5,
            prefixes_per_session: 1,
            ..Default::default()
        };
        let mut rng = rng_for(&cfg);
        let inst = prefix_instances(&ds, &cfg, &mut rng);
        assert!(inst.len() <= 5);
    }
}
