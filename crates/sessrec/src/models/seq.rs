//! Sequential baselines: FPMC, GRU4Rec, STAMP, CSRM (§4.2.2).
//!
//! Every fit loop runs through [`ShardRunner`], so the `threads` knob in
//! [`TrainConfig`] parallelises gradient work without changing results:
//! with the default `batch_instances = 0` each optimizer step replays the
//! original single-tape schedule bitwise, and any grouping is a function
//! of the data alone, never of the thread count.

use super::{prefix_instances, rng_for, SessionModel, TrainConfig};
use crate::dataset::SessionDataset;
use cosmo_nn::layers::{attention_pool, Embedding, GruCell, Linear};
use cosmo_nn::opt::Adam;
use cosmo_nn::train::{shard_ranges, ShardRunner};
use cosmo_nn::{ParamId, ParamStore, Tape, Tensor, Var};
use rand::Rng;

/// FPMC (Rendle et al. 2010): a factorized first-order Markov chain —
/// `score(i | last) = ⟨L[last], I[i]⟩ + b[i]`. Session-anonymous, so the
/// user factor of the original model drops out; only the transition
/// factorisation remains, which is exactly what the paper's baseline
/// measures (no history beyond the last item).
pub struct Fpmc {
    store: ParamStore,
    last_emb: Option<Embedding>,
    item_emb: Option<Embedding>,
    bias: Option<ParamId>,
}

impl Fpmc {
    /// Untrained model.
    pub fn new() -> Self {
        Fpmc {
            store: ParamStore::new(),
            last_emb: None,
            item_emb: None,
            bias: None,
        }
    }
}

impl Default for Fpmc {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionModel for Fpmc {
    fn name(&self) -> &'static str {
        "FPMC"
    }

    fn fit(&mut self, ds: &SessionDataset, cfg: &TrainConfig) {
        let mut rng = rng_for(cfg);
        let v = ds.num_items();
        self.last_emb = Some(Embedding::new(
            &mut self.store,
            "fpmc.last",
            v,
            cfg.dim,
            &mut rng,
        ));
        self.item_emb = Some(Embedding::new(
            &mut self.store,
            "fpmc.item",
            v,
            cfg.dim,
            &mut rng,
        ));
        self.bias = Some(self.store.add("fpmc.bias", Tensor::zeros(1, v)));
        let (last_emb, item_emb, bias) = (
            self.last_emb.unwrap(),
            self.item_emb.unwrap(),
            self.bias.unwrap(),
        );
        let mut opt = Adam::new(cfg.lr);
        let mut runner = ShardRunner::new(cfg.threads);
        for _ in 0..cfg.epochs {
            let mut order: Vec<usize> = (0..ds.train.len()).collect();
            use rand::seq::SliceRandom;
            order.shuffle(&mut rng);
            if cfg.max_sessions > 0 {
                order.truncate(cfg.max_sessions);
            }
            for chunk in order.chunks(16) {
                let mut lasts = Vec::new();
                let mut targets = Vec::new();
                for &si in chunk {
                    let s = &ds.train[si];
                    for w in s.items.windows(2) {
                        lasts.push(w[0]);
                        targets.push(w[1]);
                    }
                }
                if lasts.is_empty() {
                    continue;
                }
                let shards = shard_ranges(lasts.len(), cfg.batch_instances);
                let n_pairs = lasts.len();
                runner.grad_step(&mut self.store, shards.len(), |tape, st, i| {
                    let r = shards[i].clone();
                    let l = last_emb.forward(tape, st, &lasts[r.start..r.end]);
                    let table = item_emb.table(tape, st);
                    let logits = tape.matmul_nt(l, table);
                    let b = tape.param(st, bias);
                    let logits = tape.add_row(logits, b);
                    let loss = tape.cross_entropy(logits, &targets[r.start..r.end]);
                    tape.scale(loss, r.len() as f32 / n_pairs as f32)
                });
                opt.step(&mut self.store);
            }
        }
    }

    fn score_prefix(&self, _ds: &SessionDataset, items: &[usize], _queries: &[usize]) -> Vec<f32> {
        let last = *items.last().expect("non-empty prefix");
        let mut tape = Tape::new();
        let l = self
            .last_emb
            .unwrap()
            .forward(&mut tape, &self.store, &[last]);
        let table = self.item_emb.unwrap().table(&mut tape, &self.store);
        let logits = tape.matmul_nt(l, table);
        let b = tape.param(&self.store, self.bias.unwrap());
        let logits = tape.add_row(logits, b);
        tape.value(logits).row_slice(0).to_vec()
    }
}

/// Run a GRU over an item prefix, returning all hidden states `[T×d]`
/// stacked on the tape.
fn gru_hidden_states(
    emb: Embedding,
    gru: GruCell,
    dim: usize,
    tape: &mut Tape,
    store: &ParamStore,
    items: &[usize],
) -> Vec<Var> {
    let xs: Vec<Var> = items
        .iter()
        .map(|&i| emb.forward(tape, store, &[i]))
        .collect();
    let h0 = tape.input(Tensor::zeros(1, dim));
    gru.run(tape, store, &xs, h0)
}

/// GRU4Rec (Hidasi et al. 2016): item embeddings → GRU → hidden state →
/// full-softmax scores with tied output embeddings, trained on every
/// position of every session.
pub struct Gru4Rec {
    store: ParamStore,
    emb: Option<Embedding>,
    gru: Option<GruCell>,
    dim: usize,
}

impl Gru4Rec {
    /// Untrained model.
    pub fn new() -> Self {
        Gru4Rec {
            store: ParamStore::new(),
            emb: None,
            gru: None,
            dim: 0,
        }
    }
}

impl Default for Gru4Rec {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionModel for Gru4Rec {
    fn name(&self) -> &'static str {
        "GRU4Rec"
    }

    fn fit(&mut self, ds: &SessionDataset, cfg: &TrainConfig) {
        let mut rng = rng_for(cfg);
        self.dim = cfg.dim;
        self.emb = Some(Embedding::new(
            &mut self.store,
            "gru.emb",
            ds.num_items(),
            cfg.dim,
            &mut rng,
        ));
        self.gru = Some(GruCell::new(
            &mut self.store,
            "gru.cell",
            cfg.dim,
            cfg.dim,
            &mut rng,
        ));
        let (emb, gru, dim) = (self.emb.unwrap(), self.gru.unwrap(), self.dim);
        let mut opt = Adam::new(cfg.lr);
        let mut runner = ShardRunner::new(cfg.threads);
        let group = cfg.batch_instances.max(1);
        for _ in 0..cfg.epochs {
            let mut order: Vec<usize> = (0..ds.train.len()).collect();
            use rand::seq::SliceRandom;
            order.shuffle(&mut rng);
            if cfg.max_sessions > 0 {
                order.truncate(cfg.max_sessions);
            }
            order.retain(|&si| ds.train[si].items.len() >= 2);
            for batch in order.chunks(group) {
                let batch_len = batch.len();
                runner.grad_step(&mut self.store, batch_len, |tape, st, i| {
                    let s = &ds.train[batch[i]];
                    let hs =
                        gru_hidden_states(emb, gru, dim, tape, st, &s.items[..s.items.len() - 1]);
                    // stack hidden states via repeated concat-free gather trick:
                    // score each state against the table and stack losses
                    let table = emb.table(tape, st);
                    let targets: Vec<usize> = s.items[1..].to_vec();
                    let mut total: Option<Var> = None;
                    for (h, &t) in hs.iter().zip(targets.iter()) {
                        let logits = tape.matmul_nt(*h, table);
                        let loss = tape.cross_entropy(logits, &[t]);
                        total = Some(match total {
                            Some(acc) => tape.add(acc, loss),
                            None => loss,
                        });
                    }
                    let loss = tape.scale(total.unwrap(), 1.0 / targets.len() as f32);
                    tape.scale(loss, 1.0 / batch_len as f32)
                });
                opt.step(&mut self.store);
            }
        }
    }

    fn score_prefix(&self, _ds: &SessionDataset, items: &[usize], _queries: &[usize]) -> Vec<f32> {
        let mut tape = Tape::new();
        let hs = gru_hidden_states(
            self.emb.unwrap(),
            self.gru.unwrap(),
            self.dim,
            &mut tape,
            &self.store,
            items,
        );
        let table = self.emb.unwrap().table(&mut tape, &self.store);
        let logits = tape.matmul_nt(*hs.last().unwrap(), table);
        tape.value(logits).row_slice(0).to_vec()
    }
}

/// STAMP's session representation: attention over the history queried by
/// the *last* item plus the session mean, combined through two MLP
/// "cells".
fn stamp_rep(
    emb: Embedding,
    mlp_a: Linear,
    mlp_b: Linear,
    tape: &mut Tape,
    store: &ParamStore,
    items: &[usize],
) -> Var {
    let seq = emb.forward(tape, store, items); // [T×d]
    let last = emb.forward(tape, store, &[*items.last().unwrap()]);
    let mean = tape.mean_rows(seq);
    // attention with (last + mean) as the query
    let q = tape.add(last, mean);
    let ma = attention_pool(tape, q, seq);
    let hs = mlp_a.forward(tape, store, ma);
    let hs = tape.tanh(hs);
    let ht = mlp_b.forward(tape, store, last);
    let ht = tape.tanh(ht);
    tape.mul(hs, ht)
}

/// STAMP (Liu et al. 2018): short-term attention/memory priority — an
/// attention over the history queried by the *last* item plus the session
/// mean, combined through two MLP "cells", scored trilinearly against the
/// item table.
pub struct Stamp {
    store: ParamStore,
    emb: Option<Embedding>,
    mlp_a: Option<Linear>,
    mlp_b: Option<Linear>,
}

impl Stamp {
    /// Untrained model.
    pub fn new() -> Self {
        Stamp {
            store: ParamStore::new(),
            emb: None,
            mlp_a: None,
            mlp_b: None,
        }
    }
}

impl Default for Stamp {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionModel for Stamp {
    fn name(&self) -> &'static str {
        "STAMP"
    }

    fn fit(&mut self, ds: &SessionDataset, cfg: &TrainConfig) {
        let mut rng = rng_for(cfg);
        self.emb = Some(Embedding::new(
            &mut self.store,
            "stamp.emb",
            ds.num_items(),
            cfg.dim,
            &mut rng,
        ));
        self.mlp_a = Some(Linear::new(
            &mut self.store,
            "stamp.a",
            cfg.dim,
            cfg.dim,
            &mut rng,
        ));
        self.mlp_b = Some(Linear::new(
            &mut self.store,
            "stamp.b",
            cfg.dim,
            cfg.dim,
            &mut rng,
        ));
        let (emb, mlp_a, mlp_b) = (self.emb.unwrap(), self.mlp_a.unwrap(), self.mlp_b.unwrap());
        let mut opt = Adam::new(cfg.lr);
        let mut runner = ShardRunner::new(cfg.threads);
        let group = cfg.batch_instances.max(1);
        for _ in 0..cfg.epochs {
            let instances = prefix_instances(ds, cfg, &mut rng);
            for batch in instances.chunks(group) {
                let batch_len = batch.len();
                runner.grad_step(&mut self.store, batch_len, |tape, st, i| {
                    let (si, len) = batch[i];
                    let s = &ds.train[si];
                    let prefix = &s.items[..len - 1];
                    let target = s.items[len - 1];
                    let rep = stamp_rep(emb, mlp_a, mlp_b, tape, st, prefix);
                    let table = emb.table(tape, st);
                    let logits = tape.matmul_nt(rep, table);
                    let loss = tape.cross_entropy(logits, &[target]);
                    tape.scale(loss, 1.0 / batch_len as f32)
                });
                opt.step(&mut self.store);
            }
        }
    }

    fn score_prefix(&self, _ds: &SessionDataset, items: &[usize], _queries: &[usize]) -> Vec<f32> {
        let mut tape = Tape::new();
        let rep = stamp_rep(
            self.emb.unwrap(),
            self.mlp_a.unwrap(),
            self.mlp_b.unwrap(),
            &mut tape,
            &self.store,
            items,
        );
        let table = self.emb.unwrap().table(&mut tape, &self.store);
        let logits = tape.matmul_nt(rep, table);
        tape.value(logits).row_slice(0).to_vec()
    }
}

/// CSRM's session representation: inner GRU memory plus attention over a
/// learned matrix of latent session prototypes, fused through a linear
/// gate.
#[allow(clippy::too_many_arguments)]
fn csrm_rep(
    emb: Embedding,
    gru: GruCell,
    memory: ParamId,
    fuse: Linear,
    dim: usize,
    tape: &mut Tape,
    store: &ParamStore,
    items: &[usize],
) -> Var {
    let hs = gru_hidden_states(emb, gru, dim, tape, store, items);
    let inner = *hs.last().unwrap();
    let mem = tape.param(store, memory);
    let outer = attention_pool(tape, inner, mem);
    let cat = tape.concat_cols(inner, outer);
    fuse.forward(tape, store, cat)
}

/// CSRM (Wang et al. 2019): an inner memory encoder (GRU over the session)
/// plus an *outer* memory — attention over a learned matrix of latent
/// session prototypes — fused through a linear gate.
pub struct Csrm {
    store: ParamStore,
    emb: Option<Embedding>,
    gru: Option<GruCell>,
    memory: Option<ParamId>,
    fuse: Option<Linear>,
    dim: usize,
}

impl Csrm {
    /// Untrained model with `slots` memory prototypes.
    pub fn new() -> Self {
        Csrm {
            store: ParamStore::new(),
            emb: None,
            gru: None,
            memory: None,
            fuse: None,
            dim: 0,
        }
    }
}

impl Default for Csrm {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionModel for Csrm {
    fn name(&self) -> &'static str {
        "CSRM"
    }

    fn fit(&mut self, ds: &SessionDataset, cfg: &TrainConfig) {
        let mut rng = rng_for(cfg);
        self.dim = cfg.dim;
        self.emb = Some(Embedding::new(
            &mut self.store,
            "csrm.emb",
            ds.num_items(),
            cfg.dim,
            &mut rng,
        ));
        self.gru = Some(GruCell::new(
            &mut self.store,
            "csrm.gru",
            cfg.dim,
            cfg.dim,
            &mut rng,
        ));
        self.memory = Some(self.store.add(
            "csrm.memory",
            cosmo_nn::init::xavier_uniform(16, cfg.dim, &mut rng),
        ));
        self.fuse = Some(Linear::new(
            &mut self.store,
            "csrm.fuse",
            2 * cfg.dim,
            cfg.dim,
            &mut rng,
        ));
        let (emb, gru, memory, fuse, dim) = (
            self.emb.unwrap(),
            self.gru.unwrap(),
            self.memory.unwrap(),
            self.fuse.unwrap(),
            self.dim,
        );
        let mut opt = Adam::new(cfg.lr);
        let mut runner = ShardRunner::new(cfg.threads);
        let group = cfg.batch_instances.max(1);
        for _ in 0..cfg.epochs {
            let instances = prefix_instances(ds, cfg, &mut rng);
            for batch in instances.chunks(group) {
                let batch_len = batch.len();
                runner.grad_step(&mut self.store, batch_len, |tape, st, i| {
                    let (si, len) = batch[i];
                    let s = &ds.train[si];
                    let prefix = &s.items[..len - 1];
                    let target = s.items[len - 1];
                    let rep = csrm_rep(emb, gru, memory, fuse, dim, tape, st, prefix);
                    let table = emb.table(tape, st);
                    let logits = tape.matmul_nt(rep, table);
                    let loss = tape.cross_entropy(logits, &[target]);
                    tape.scale(loss, 1.0 / batch_len as f32)
                });
                opt.step(&mut self.store);
            }
        }
    }

    fn score_prefix(&self, _ds: &SessionDataset, items: &[usize], _queries: &[usize]) -> Vec<f32> {
        let mut tape = Tape::new();
        let rep = csrm_rep(
            self.emb.unwrap(),
            self.gru.unwrap(),
            self.memory.unwrap(),
            self.fuse.unwrap(),
            self.dim,
            &mut tape,
            &self.store,
            items,
        );
        let table = self.emb.unwrap().table(&mut tape, &self.store);
        let logits = tape.matmul_nt(rep, table);
        tape.value(logits).row_slice(0).to_vec()
    }
}

// rand::Rng is used by prefix_instances callers indirectly; silence lint
// in case of cfg changes.
#[allow(unused)]
fn _rng_assert(r: &mut impl Rng) {}
