//! Sequential baselines: FPMC, GRU4Rec, STAMP, CSRM (§4.2.2).

use super::{prefix_instances, rng_for, SessionModel, TrainConfig};
use crate::dataset::SessionDataset;
use cosmo_nn::layers::{attention_pool, Embedding, GruCell, Linear};
use cosmo_nn::opt::Adam;
use cosmo_nn::{ParamStore, Tape, Tensor, Var};
use rand::Rng;

/// FPMC (Rendle et al. 2010): a factorized first-order Markov chain —
/// `score(i | last) = ⟨L[last], I[i]⟩ + b[i]`. Session-anonymous, so the
/// user factor of the original model drops out; only the transition
/// factorisation remains, which is exactly what the paper's baseline
/// measures (no history beyond the last item).
pub struct Fpmc {
    store: ParamStore,
    last_emb: Option<Embedding>,
    item_emb: Option<Embedding>,
    bias: Option<cosmo_nn::ParamId>,
}

impl Fpmc {
    /// Untrained model.
    pub fn new() -> Self {
        Fpmc {
            store: ParamStore::new(),
            last_emb: None,
            item_emb: None,
            bias: None,
        }
    }
}

impl Default for Fpmc {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionModel for Fpmc {
    fn name(&self) -> &'static str {
        "FPMC"
    }

    fn fit(&mut self, ds: &SessionDataset, cfg: &TrainConfig) {
        let mut rng = rng_for(cfg);
        let v = ds.num_items();
        self.last_emb = Some(Embedding::new(
            &mut self.store,
            "fpmc.last",
            v,
            cfg.dim,
            &mut rng,
        ));
        self.item_emb = Some(Embedding::new(
            &mut self.store,
            "fpmc.item",
            v,
            cfg.dim,
            &mut rng,
        ));
        self.bias = Some(self.store.add("fpmc.bias", Tensor::zeros(1, v)));
        let mut opt = Adam::new(cfg.lr);
        for _ in 0..cfg.epochs {
            let mut order: Vec<usize> = (0..ds.train.len()).collect();
            use rand::seq::SliceRandom;
            order.shuffle(&mut rng);
            if cfg.max_sessions > 0 {
                order.truncate(cfg.max_sessions);
            }
            for chunk in order.chunks(16) {
                let mut lasts = Vec::new();
                let mut targets = Vec::new();
                for &si in chunk {
                    let s = &ds.train[si];
                    for w in s.items.windows(2) {
                        lasts.push(w[0]);
                        targets.push(w[1]);
                    }
                }
                if lasts.is_empty() {
                    continue;
                }
                let mut tape = Tape::new();
                let l = self
                    .last_emb
                    .unwrap()
                    .forward(&mut tape, &self.store, &lasts);
                let table = self.item_emb.unwrap().table(&mut tape, &self.store);
                let logits = tape.matmul_nt(l, table);
                let b = tape.param(&self.store, self.bias.unwrap());
                let logits = tape.add_row(logits, b);
                let loss = tape.cross_entropy(logits, &targets);
                tape.backward(loss);
                self.store.zero_grads();
                tape.accumulate_param_grads(&mut self.store);
                opt.step(&mut self.store);
            }
        }
    }

    fn score_prefix(&self, _ds: &SessionDataset, items: &[usize], _queries: &[usize]) -> Vec<f32> {
        let last = *items.last().expect("non-empty prefix");
        let mut tape = Tape::new();
        let l = self
            .last_emb
            .unwrap()
            .forward(&mut tape, &self.store, &[last]);
        let table = self.item_emb.unwrap().table(&mut tape, &self.store);
        let logits = tape.matmul_nt(l, table);
        let b = tape.param(&self.store, self.bias.unwrap());
        let logits = tape.add_row(logits, b);
        tape.value(logits).row_slice(0).to_vec()
    }
}

/// GRU4Rec (Hidasi et al. 2016): item embeddings → GRU → hidden state →
/// full-softmax scores with tied output embeddings, trained on every
/// position of every session.
pub struct Gru4Rec {
    store: ParamStore,
    emb: Option<Embedding>,
    gru: Option<GruCell>,
    dim: usize,
}

impl Gru4Rec {
    /// Untrained model.
    pub fn new() -> Self {
        Gru4Rec {
            store: ParamStore::new(),
            emb: None,
            gru: None,
            dim: 0,
        }
    }

    /// Run the GRU over an item prefix, returning all hidden states
    /// `[T×d]` stacked on the tape.
    fn hidden_states(&self, tape: &mut Tape, items: &[usize]) -> Vec<Var> {
        let xs: Vec<Var> = items
            .iter()
            .map(|&i| self.emb.unwrap().forward(tape, &self.store, &[i]))
            .collect();
        let h0 = tape.input(Tensor::zeros(1, self.dim));
        self.gru.unwrap().run(tape, &self.store, &xs, h0)
    }
}

impl Default for Gru4Rec {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionModel for Gru4Rec {
    fn name(&self) -> &'static str {
        "GRU4Rec"
    }

    fn fit(&mut self, ds: &SessionDataset, cfg: &TrainConfig) {
        let mut rng = rng_for(cfg);
        self.dim = cfg.dim;
        self.emb = Some(Embedding::new(
            &mut self.store,
            "gru.emb",
            ds.num_items(),
            cfg.dim,
            &mut rng,
        ));
        self.gru = Some(GruCell::new(
            &mut self.store,
            "gru.cell",
            cfg.dim,
            cfg.dim,
            &mut rng,
        ));
        let mut opt = Adam::new(cfg.lr);
        for _ in 0..cfg.epochs {
            let mut order: Vec<usize> = (0..ds.train.len()).collect();
            use rand::seq::SliceRandom;
            order.shuffle(&mut rng);
            if cfg.max_sessions > 0 {
                order.truncate(cfg.max_sessions);
            }
            for &si in &order {
                let s = &ds.train[si];
                if s.items.len() < 2 {
                    continue;
                }
                let mut tape = Tape::new();
                let hs = self.hidden_states(&mut tape, &s.items[..s.items.len() - 1]);
                // stack hidden states via repeated concat-free gather trick:
                // score each state against the table and stack losses
                let table = self.emb.unwrap().table(&mut tape, &self.store);
                let targets: Vec<usize> = s.items[1..].to_vec();
                let mut total: Option<Var> = None;
                for (h, &t) in hs.iter().zip(targets.iter()) {
                    let logits = tape.matmul_nt(*h, table);
                    let loss = tape.cross_entropy(logits, &[t]);
                    total = Some(match total {
                        Some(acc) => tape.add(acc, loss),
                        None => loss,
                    });
                }
                let loss = tape.scale(total.unwrap(), 1.0 / targets.len() as f32);
                tape.backward(loss);
                self.store.zero_grads();
                tape.accumulate_param_grads(&mut self.store);
                opt.step(&mut self.store);
            }
        }
    }

    fn score_prefix(&self, _ds: &SessionDataset, items: &[usize], _queries: &[usize]) -> Vec<f32> {
        let mut tape = Tape::new();
        let hs = self.hidden_states(&mut tape, items);
        let table = self.emb.unwrap().table(&mut tape, &self.store);
        let logits = tape.matmul_nt(*hs.last().unwrap(), table);
        tape.value(logits).row_slice(0).to_vec()
    }
}

/// STAMP (Liu et al. 2018): short-term attention/memory priority — an
/// attention over the history queried by the *last* item plus the session
/// mean, combined through two MLP "cells", scored trilinearly against the
/// item table.
pub struct Stamp {
    store: ParamStore,
    emb: Option<Embedding>,
    mlp_a: Option<Linear>,
    mlp_b: Option<Linear>,
}

impl Stamp {
    /// Untrained model.
    pub fn new() -> Self {
        Stamp {
            store: ParamStore::new(),
            emb: None,
            mlp_a: None,
            mlp_b: None,
        }
    }

    fn session_rep(&self, tape: &mut Tape, items: &[usize]) -> Var {
        let emb = self.emb.unwrap();
        let seq = emb.forward(tape, &self.store, items); // [T×d]
        let last = emb.forward(tape, &self.store, &[*items.last().unwrap()]);
        let mean = tape.mean_rows(seq);
        // attention with (last + mean) as the query
        let q = tape.add(last, mean);
        let ma = attention_pool(tape, q, seq);
        let hs = self.mlp_a.unwrap().forward(tape, &self.store, ma);
        let hs = tape.tanh(hs);
        let ht = self.mlp_b.unwrap().forward(tape, &self.store, last);
        let ht = tape.tanh(ht);
        tape.mul(hs, ht)
    }
}

impl Default for Stamp {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionModel for Stamp {
    fn name(&self) -> &'static str {
        "STAMP"
    }

    fn fit(&mut self, ds: &SessionDataset, cfg: &TrainConfig) {
        let mut rng = rng_for(cfg);
        self.emb = Some(Embedding::new(
            &mut self.store,
            "stamp.emb",
            ds.num_items(),
            cfg.dim,
            &mut rng,
        ));
        self.mlp_a = Some(Linear::new(
            &mut self.store,
            "stamp.a",
            cfg.dim,
            cfg.dim,
            &mut rng,
        ));
        self.mlp_b = Some(Linear::new(
            &mut self.store,
            "stamp.b",
            cfg.dim,
            cfg.dim,
            &mut rng,
        ));
        let mut opt = Adam::new(cfg.lr);
        for _ in 0..cfg.epochs {
            let instances = prefix_instances(ds, cfg, &mut rng);
            for (si, len) in instances {
                let s = &ds.train[si];
                let prefix = &s.items[..len - 1];
                let target = s.items[len - 1];
                let mut tape = Tape::new();
                let rep = self.session_rep(&mut tape, prefix);
                let table = self.emb.unwrap().table(&mut tape, &self.store);
                let logits = tape.matmul_nt(rep, table);
                let loss = tape.cross_entropy(logits, &[target]);
                tape.backward(loss);
                self.store.zero_grads();
                tape.accumulate_param_grads(&mut self.store);
                opt.step(&mut self.store);
            }
        }
    }

    fn score_prefix(&self, _ds: &SessionDataset, items: &[usize], _queries: &[usize]) -> Vec<f32> {
        let mut tape = Tape::new();
        let rep = self.session_rep(&mut tape, items);
        let table = self.emb.unwrap().table(&mut tape, &self.store);
        let logits = tape.matmul_nt(rep, table);
        tape.value(logits).row_slice(0).to_vec()
    }
}

/// CSRM (Wang et al. 2019): an inner memory encoder (GRU over the session)
/// plus an *outer* memory — attention over a learned matrix of latent
/// session prototypes — fused through a linear gate.
pub struct Csrm {
    store: ParamStore,
    emb: Option<Embedding>,
    gru: Option<GruCell>,
    memory: Option<cosmo_nn::ParamId>,
    fuse: Option<Linear>,
    dim: usize,
}

impl Csrm {
    /// Untrained model with `slots` memory prototypes.
    pub fn new() -> Self {
        Csrm {
            store: ParamStore::new(),
            emb: None,
            gru: None,
            memory: None,
            fuse: None,
            dim: 0,
        }
    }

    fn session_rep(&self, tape: &mut Tape, items: &[usize]) -> Var {
        let xs: Vec<Var> = items
            .iter()
            .map(|&i| self.emb.unwrap().forward(tape, &self.store, &[i]))
            .collect();
        let h0 = tape.input(Tensor::zeros(1, self.dim));
        let hs = self.gru.unwrap().run(tape, &self.store, &xs, h0);
        let inner = *hs.last().unwrap();
        let mem = tape.param(&self.store, self.memory.unwrap());
        let outer = attention_pool(tape, inner, mem);
        let cat = tape.concat_cols(inner, outer);
        self.fuse.unwrap().forward(tape, &self.store, cat)
    }
}

impl Default for Csrm {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionModel for Csrm {
    fn name(&self) -> &'static str {
        "CSRM"
    }

    fn fit(&mut self, ds: &SessionDataset, cfg: &TrainConfig) {
        let mut rng = rng_for(cfg);
        self.dim = cfg.dim;
        self.emb = Some(Embedding::new(
            &mut self.store,
            "csrm.emb",
            ds.num_items(),
            cfg.dim,
            &mut rng,
        ));
        self.gru = Some(GruCell::new(
            &mut self.store,
            "csrm.gru",
            cfg.dim,
            cfg.dim,
            &mut rng,
        ));
        self.memory = Some(self.store.add(
            "csrm.memory",
            cosmo_nn::init::xavier_uniform(16, cfg.dim, &mut rng),
        ));
        self.fuse = Some(Linear::new(
            &mut self.store,
            "csrm.fuse",
            2 * cfg.dim,
            cfg.dim,
            &mut rng,
        ));
        let mut opt = Adam::new(cfg.lr);
        for _ in 0..cfg.epochs {
            let instances = prefix_instances(ds, cfg, &mut rng);
            for (si, len) in instances {
                let s = &ds.train[si];
                let prefix = &s.items[..len - 1];
                let target = s.items[len - 1];
                let mut tape = Tape::new();
                let rep = self.session_rep(&mut tape, prefix);
                let table = self.emb.unwrap().table(&mut tape, &self.store);
                let logits = tape.matmul_nt(rep, table);
                let loss = tape.cross_entropy(logits, &[target]);
                tape.backward(loss);
                self.store.zero_grads();
                tape.accumulate_param_grads(&mut self.store);
                opt.step(&mut self.store);
            }
        }
    }

    fn score_prefix(&self, _ds: &SessionDataset, items: &[usize], _queries: &[usize]) -> Vec<f32> {
        let mut tape = Tape::new();
        let rep = self.session_rep(&mut tape, items);
        let table = self.emb.unwrap().table(&mut tape, &self.store);
        let logits = tape.matmul_nt(rep, table);
        tape.value(logits).row_slice(0).to_vec()
    }
}

// rand::Rng is used by prefix_instances callers indirectly; silence lint
// in case of cfg changes.
#[allow(unused)]
fn _rng_assert(r: &mut impl Rng) {}
