//! Graph models: SR-GNN, GC-SAN, GCE-GNN and COSMO-GNN (§4.2.2–§4.2.3).
//!
//! The shared fit loop ([`gnn_fit_loop!`]) trains through
//! [`ShardRunner`]: the default `batch_instances = 0` replays the original
//! one-step-per-instance schedule bitwise, while `batch_instances = k`
//! groups `k` prefix instances per optimizer step (one shard each, merged
//! in instance order) so the `threads` knob scales throughput without
//! changing any result.

use super::{global_cooccurrence, prefix_instances, rng_for, SessionModel, TrainConfig};
use crate::dataset::SessionDataset;
use cosmo_nn::layers::{attention_pool, Embedding, Linear, Mlp};
use cosmo_nn::opt::Adam;
use cosmo_nn::train::ShardRunner;
use cosmo_nn::{ParamStore, Tape, Tensor, Var};
use cosmo_text::FxHashMap;

/// Build the directed session graph: unique nodes, per-position alias, and
/// the in/out normalised adjacency matrices of SR-GNN.
pub fn session_graph(items: &[usize]) -> (Vec<usize>, Vec<usize>, Tensor, Tensor) {
    let mut nodes: Vec<usize> = Vec::new();
    let mut index: FxHashMap<usize, usize> = FxHashMap::default();
    let mut alias = Vec::with_capacity(items.len());
    for &it in items {
        let idx = *index.entry(it).or_insert_with(|| {
            nodes.push(it);
            nodes.len() - 1
        });
        alias.push(idx);
    }
    let n = nodes.len();
    let mut a_out = Tensor::zeros(n, n);
    for w in alias.windows(2) {
        if w[0] != w[1] {
            let v = a_out.get(w[0], w[1]);
            a_out.set(w[0], w[1], v + 1.0);
        }
    }
    let a_in = normalize_rows(&a_out.transpose());
    let a_out = normalize_rows(&a_out);
    (nodes, alias, a_in, a_out)
}

fn normalize_rows(t: &Tensor) -> Tensor {
    let mut out = t.clone();
    for r in 0..out.rows() {
        let sum: f32 = out.row_slice(r).iter().sum();
        if sum > 0.0 {
            for x in out.row_slice_mut(r) {
                *x /= sum;
            }
        }
    }
    out
}

/// The graph propagation shared by SR-GNN / GC-SAN / GCE-GNN: residual
/// message passing `H ← H + tanh(concat[A_in·H·W_in, A_out·H·W_out]·W_m)`
/// over the session graph's nodes. (SR-GNN's original GRU gate is replaced
/// by the residual form, which preserves item identity at initialisation —
/// essential at this data scale; the learned message path plays the same
/// structural role.)
struct GgnnCore {
    emb: Embedding,
    w_in: Linear,
    w_out: Linear,
    merge: Linear,
    readout_combine: Linear,
    dim: usize,
}

impl GgnnCore {
    fn new(
        store: &mut ParamStore,
        name: &str,
        v: usize,
        dim: usize,
        rng: &mut impl rand::Rng,
    ) -> Self {
        GgnnCore {
            emb: Embedding::new(store, &format!("{name}.emb"), v, dim, rng),
            w_in: Linear::new(store, &format!("{name}.win"), dim, dim, rng),
            w_out: Linear::new(store, &format!("{name}.wout"), dim, dim, rng),
            merge: Linear::new(store, &format!("{name}.merge"), 2 * dim, dim, rng),
            readout_combine: Linear::new(store, &format!("{name}.combine"), 3 * dim, dim, rng),
            dim,
        }
    }

    /// Propagated node representations `[n×d]`.
    fn propagate(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        nodes: &[usize],
        a_in: &Tensor,
        a_out: &Tensor,
        steps: usize,
    ) -> Var {
        let mut h = self.emb.forward(tape, store, nodes);
        let ain = tape.input(a_in.clone());
        let aout = tape.input(a_out.clone());
        for _ in 0..steps {
            let hw_in = self.w_in.forward(tape, store, h);
            let hw_out = self.w_out.forward(tape, store, h);
            let m_in = tape.matmul(ain, hw_in);
            let m_out = tape.matmul(aout, hw_out);
            let a = tape.concat_cols(m_in, m_out);
            let msg = self.merge.forward(tape, store, a);
            let msg = tape.tanh(msg);
            let msg = tape.scale(msg, 0.4);
            h = tape.add(h, msg);
        }
        h
    }

    /// SR-GNN readout: attention over nodes queried by the last item's
    /// node, combined with the last item representation and the session
    /// mean (soft global preference).
    fn readout(&self, tape: &mut Tape, store: &ParamStore, h: Var, alias: &[usize]) -> Var {
        let last = tape.gather(h, &[*alias.last().unwrap()]);
        let mean = tape.mean_rows(h);
        let q = tape.add(last, mean);
        let pooled = attention_pool(tape, q, h);
        let a = tape.concat_cols(pooled, last);
        let cat = tape.concat_cols(a, mean);
        self.readout_combine.forward(tape, store, cat)
    }
}

/// SR-GNN session representation: propagate over the session graph, then
/// the standard attention readout.
fn ggnn_rep(core: &GgnnCore, store: &ParamStore, tape: &mut Tape, items: &[usize]) -> Var {
    let (nodes, alias, a_in, a_out) = session_graph(items);
    let h = core.propagate(tape, store, &nodes, &a_in, &a_out, 1);
    core.readout(tape, store, h, &alias)
}

/// Global aggregation matrix for a session's nodes: `[n×V]` rows of
/// neighbour weights, multiplied against the full item table.
fn global_matrix(global_nbrs: &[Vec<(usize, f32)>], nodes: &[usize], v: usize) -> Tensor {
    let mut g = Tensor::zeros(nodes.len(), v);
    for (r, &node) in nodes.iter().enumerate() {
        for &(nbr, w) in &global_nbrs[node] {
            g.set(r, nbr, w);
        }
    }
    g
}

macro_rules! gnn_fit_loop {
    ($self:ident, $ds:ident, $cfg:ident, $rng:ident, $core:ident, $rep_fn:expr) => {{
        let mut opt = Adam::new($cfg.lr);
        let mut runner = ShardRunner::new($cfg.threads);
        let group = $cfg.batch_instances.max(1);
        for _ in 0..$cfg.epochs {
            let instances = prefix_instances($ds, $cfg, &mut $rng);
            for batch in instances.chunks(group) {
                let batch_len = batch.len();
                runner.grad_step(&mut $self.store, batch_len, |tape, st, i| {
                    let (si, len) = batch[i];
                    let s = &$ds.train[si];
                    let prefix = &s.items[..len - 1];
                    let queries = &s.queries[..len];
                    let target = s.items[len - 1];
                    // $rep_fn is a macro argument, not a literal closure
                    #[allow(clippy::redundant_closure_call)]
                    let rep: Var = ($rep_fn)(tape, st, $ds, prefix, queries);
                    let table = $core.emb.table(tape, st);
                    let logits = tape.matmul_nt(rep, table);
                    let loss = tape.cross_entropy(logits, &[target]);
                    tape.scale(loss, 1.0 / batch_len as f32)
                });
                opt.step(&mut $self.store);
            }
        }
    }};
}

/// SR-GNN (Wu et al. 2019): the first GNN session recommender — gated
/// graph propagation over the session graph with attention readout.
pub struct SrGnn {
    store: ParamStore,
    core: Option<GgnnCore>,
}

impl SrGnn {
    /// Untrained model.
    pub fn new() -> Self {
        SrGnn {
            store: ParamStore::new(),
            core: None,
        }
    }
}

impl Default for SrGnn {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionModel for SrGnn {
    fn name(&self) -> &'static str {
        "SRGNN"
    }

    fn fit(&mut self, ds: &SessionDataset, cfg: &TrainConfig) {
        let mut rng = rng_for(cfg);
        self.core = Some(GgnnCore::new(
            &mut self.store,
            "srgnn",
            ds.num_items(),
            cfg.dim,
            &mut rng,
        ));
        let core = self.core.as_ref().unwrap();
        gnn_fit_loop!(
            self,
            ds,
            cfg,
            rng,
            core,
            |tape: &mut Tape,
             st: &ParamStore,
             _ds: &SessionDataset,
             items: &[usize],
             _q: &[usize]| { ggnn_rep(core, st, tape, items) }
        );
    }

    fn score_prefix(&self, _ds: &SessionDataset, items: &[usize], _queries: &[usize]) -> Vec<f32> {
        let core = self.core.as_ref().unwrap();
        let mut tape = Tape::new();
        let rep = ggnn_rep(core, &self.store, &mut tape, items);
        let table = core.emb.table(&mut tape, &self.store);
        let logits = tape.matmul_nt(rep, table);
        tape.value(logits).row_slice(0).to_vec()
    }
}

/// GC-SAN session representation: SR-GNN propagation followed by a
/// single-head self-attention block over the position sequence,
/// residually combined.
fn gcsan_rep(
    core: &GgnnCore,
    wq: Linear,
    wk: Linear,
    wv: Linear,
    store: &ParamStore,
    tape: &mut Tape,
    items: &[usize],
) -> Var {
    let (nodes, alias, a_in, a_out) = session_graph(items);
    let h = core.propagate(tape, store, &nodes, &a_in, &a_out, 1);
    // sequence view + single-head self-attention
    let seq = tape.gather(h, &alias);
    let q = wq.forward(tape, store, seq);
    let k = wk.forward(tape, store, seq);
    let v = wv.forward(tape, store, seq);
    let scores = tape.matmul_nt(q, k);
    let scaled = tape.scale(scores, 1.0 / (core.dim as f32).sqrt());
    let attn = tape.softmax(scaled);
    let ctx = tape.matmul(attn, v);
    let ctx = tape.scale(ctx, 0.5);
    let residual = tape.add(ctx, seq);
    // readout: last position + attention pool + sequence mean
    let last = tape.gather(residual, &[alias.len() - 1]);
    let mean = tape.mean_rows(residual);
    let q = tape.add(last, mean);
    let pooled = attention_pool(tape, q, residual);
    let a = tape.concat_cols(pooled, last);
    let cat = tape.concat_cols(a, mean);
    core.readout_combine.forward(tape, store, cat)
}

/// GC-SAN (Xu et al. 2019): SR-GNN propagation followed by a self-attention
/// block over the position sequence, residually combined.
pub struct GcSan {
    store: ParamStore,
    core: Option<GgnnCore>,
    wq: Option<Linear>,
    wk: Option<Linear>,
    wv: Option<Linear>,
}

impl GcSan {
    /// Untrained model.
    pub fn new() -> Self {
        GcSan {
            store: ParamStore::new(),
            core: None,
            wq: None,
            wk: None,
            wv: None,
        }
    }
}

impl Default for GcSan {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionModel for GcSan {
    fn name(&self) -> &'static str {
        "GC-SAN"
    }

    fn fit(&mut self, ds: &SessionDataset, cfg: &TrainConfig) {
        let mut rng = rng_for(cfg);
        self.core = Some(GgnnCore::new(
            &mut self.store,
            "gcsan",
            ds.num_items(),
            cfg.dim,
            &mut rng,
        ));
        self.wq = Some(Linear::new(
            &mut self.store,
            "gcsan.wq",
            cfg.dim,
            cfg.dim,
            &mut rng,
        ));
        self.wk = Some(Linear::new(
            &mut self.store,
            "gcsan.wk",
            cfg.dim,
            cfg.dim,
            &mut rng,
        ));
        self.wv = Some(Linear::new(
            &mut self.store,
            "gcsan.wv",
            cfg.dim,
            cfg.dim,
            &mut rng,
        ));
        let core = self.core.as_ref().unwrap();
        let (wq, wk, wv) = (self.wq.unwrap(), self.wk.unwrap(), self.wv.unwrap());
        gnn_fit_loop!(
            self,
            ds,
            cfg,
            rng,
            core,
            |tape: &mut Tape,
             st: &ParamStore,
             _ds: &SessionDataset,
             items: &[usize],
             _q: &[usize]| { gcsan_rep(core, wq, wk, wv, st, tape, items) }
        );
    }

    fn score_prefix(&self, _ds: &SessionDataset, items: &[usize], _queries: &[usize]) -> Vec<f32> {
        let core = self.core.as_ref().unwrap();
        let mut tape = Tape::new();
        let rep = gcsan_rep(
            core,
            self.wq.unwrap(),
            self.wk.unwrap(),
            self.wv.unwrap(),
            &self.store,
            &mut tape,
            items,
        );
        let table = core.emb.table(&mut tape, &self.store);
        let logits = tape.matmul_nt(rep, table);
        tape.value(logits).row_slice(0).to_vec()
    }
}

/// GCE-GNN session representation: session-level propagation fused with
/// the global co-occurrence aggregation, then the standard readout.
fn gce_rep(
    core: &GgnnCore,
    global_proj: Linear,
    global_nbrs: &[Vec<(usize, f32)>],
    store: &ParamStore,
    tape: &mut Tape,
    items: &[usize],
) -> Var {
    let (nodes, alias, a_in, a_out) = session_graph(items);
    let h_sess = core.propagate(tape, store, &nodes, &a_in, &a_out, 1);
    // global-level aggregation
    let table = core.emb.table(tape, store);
    let g = tape.input(global_matrix(global_nbrs, &nodes, core.emb.vocab()));
    let h_glob_raw = tape.matmul(g, table);
    let h_glob = global_proj.forward(tape, store, h_glob_raw);
    let h = tape.add(h_sess, h_glob);
    core.readout(tape, store, h, &alias)
}

/// GCE-GNN (Wang et al. 2020): session-level propagation fused with a
/// *global* co-occurrence graph aggregation (neighbourhood statistics
/// pooled across all training sessions).
pub struct GceGnn {
    store: ParamStore,
    core: Option<GgnnCore>,
    global_proj: Option<Linear>,
    global_nbrs: Vec<Vec<(usize, f32)>>,
}

impl GceGnn {
    /// Untrained model.
    pub fn new() -> Self {
        GceGnn {
            store: ParamStore::new(),
            core: None,
            global_proj: None,
            global_nbrs: Vec::new(),
        }
    }
}

impl Default for GceGnn {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionModel for GceGnn {
    fn name(&self) -> &'static str {
        "GCE-GNN"
    }

    fn fit(&mut self, ds: &SessionDataset, cfg: &TrainConfig) {
        let mut rng = rng_for(cfg);
        self.core = Some(GgnnCore::new(
            &mut self.store,
            "gce",
            ds.num_items(),
            cfg.dim,
            &mut rng,
        ));
        self.global_proj = Some(Linear::new(
            &mut self.store,
            "gce.glob",
            cfg.dim,
            cfg.dim,
            &mut rng,
        ));
        self.global_nbrs = global_cooccurrence(ds, 8);
        let core = self.core.as_ref().unwrap();
        let global_proj = self.global_proj.unwrap();
        let global_nbrs = &self.global_nbrs;
        gnn_fit_loop!(
            self,
            ds,
            cfg,
            rng,
            core,
            |tape: &mut Tape,
             st: &ParamStore,
             _ds: &SessionDataset,
             items: &[usize],
             _q: &[usize]| { gce_rep(core, global_proj, global_nbrs, st, tape, items) }
        );
    }

    fn score_prefix(&self, _ds: &SessionDataset, items: &[usize], _queries: &[usize]) -> Vec<f32> {
        let core = self.core.as_ref().unwrap();
        let mut tape = Tape::new();
        let rep = gce_rep(
            core,
            self.global_proj.unwrap(),
            &self.global_nbrs,
            &self.store,
            &mut tape,
            items,
        );
        let table = core.emb.table(&mut tape, &self.store);
        let logits = tape.matmul_nt(rep, table);
        tape.value(logits).row_slice(0).to_vec()
    }
}

/// Per-query knowledge embedding matrix `[T×knowledge_dim]` for a
/// session's query sequence (zero rows where knowledge is missing).
fn knowledge_matrix(ds: &SessionDataset, queries: &[usize], knowledge_dim: usize) -> Tensor {
    let mut t = Tensor::zeros(queries.len(), knowledge_dim);
    for (r, &q) in queries.iter().enumerate() {
        let k = &ds.query_knowledge[q];
        if k.len() == knowledge_dim {
            t.row_slice_mut(r).copy_from_slice(k);
        }
    }
    t
}

/// COSMO-GNN session representation: GCE-GNN style fusion plus the
/// knowledge-conditioned readout of §4.2.3.
#[allow(clippy::too_many_arguments)]
fn cosmo_rep(
    core: &GgnnCore,
    global_proj: Linear,
    knowledge_mlp: Mlp,
    fuse: Linear,
    global_nbrs: &[Vec<(usize, f32)>],
    knowledge_dim: usize,
    store: &ParamStore,
    tape: &mut Tape,
    ds: &SessionDataset,
    items: &[usize],
    queries: &[usize],
) -> Var {
    let (nodes, alias, a_in, a_out) = session_graph(items);
    let h_sess = core.propagate(tape, store, &nodes, &a_in, &a_out, 1);
    let table = core.emb.table(tape, store);
    let g = tape.input(global_matrix(global_nbrs, &nodes, core.emb.vocab()));
    let h_glob_raw = tape.matmul(g, table);
    let h_glob = global_proj.forward(tape, store, h_glob_raw);
    let h = tape.add(h_sess, h_glob);
    // knowledge-conditioned readout: the current step's transformed
    // knowledge embedding joins the attention query, steering the
    // readout towards items serving the active intent
    let know_pre = tape.input(knowledge_matrix(ds, queries, knowledge_dim));
    let ghat_pre = knowledge_mlp.forward(tape, store, know_pre);
    let glast_pre = tape.gather(ghat_pre, &[queries.len() - 1]);
    let last_n = tape.gather(h, &[*alias.last().unwrap()]);
    let mean_n = tape.mean_rows(h);
    let q0 = tape.add(last_n, mean_n);
    let q = tape.add(q0, glast_pre);
    let pooled = attention_pool(tape, q, h);
    let a0 = tape.concat_cols(pooled, last_n);
    let cat0 = tape.concat_cols(a0, mean_n);
    let base = core.readout_combine.forward(tape, store, cat0);
    // per-step knowledge embeddings g_t → MLP → ĝ_t (§4.2.3: the same
    // LM vectorises the generated knowledge; a two-layer perceptron
    // aligns it with the GNN feature space)
    // average pooling over steps plus the current (last) step
    let gmean = tape.mean_rows(ghat_pre);
    let glast = tape.gather(ghat_pre, &[queries.len() - 1]);
    let kno = tape.concat_cols(gmean, glast);
    let all = tape.concat_cols(base, kno);
    fuse.forward(tape, store, all)
}

/// COSMO-GNN (§4.2.3): GCE-GNN extended with COSMO knowledge — each step's
/// item representation is concatenated with the (MLP-transformed) COSMO-LM
/// embedding of the knowledge generated for its `(query, item)` pair; the
/// session representation is the average pooling over the concatenated
/// step representations.
pub struct CosmoGnn {
    store: ParamStore,
    core: Option<GgnnCore>,
    global_proj: Option<Linear>,
    knowledge_mlp: Option<Mlp>,
    fuse: Option<Linear>,
    global_nbrs: Vec<Vec<(usize, f32)>>,
    knowledge_dim: usize,
}

impl CosmoGnn {
    /// Untrained model.
    pub fn new() -> Self {
        CosmoGnn {
            store: ParamStore::new(),
            core: None,
            global_proj: None,
            knowledge_mlp: None,
            fuse: None,
            global_nbrs: Vec::new(),
            knowledge_dim: 0,
        }
    }
}

impl Default for CosmoGnn {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionModel for CosmoGnn {
    fn name(&self) -> &'static str {
        "COSMO-GNN"
    }

    fn fit(&mut self, ds: &SessionDataset, cfg: &TrainConfig) {
        let mut rng = rng_for(cfg);
        self.knowledge_dim = ds
            .query_knowledge
            .iter()
            .map(|v| v.len())
            .find(|&l| l > 0)
            .expect("COSMO-GNN requires attach_knowledge() first");
        self.global_nbrs = global_cooccurrence(ds, 8);
        self.core = Some(GgnnCore::new(
            &mut self.store,
            "cosmo",
            ds.num_items(),
            cfg.dim,
            &mut rng,
        ));
        self.global_proj = Some(Linear::new(
            &mut self.store,
            "cosmo.glob",
            cfg.dim,
            cfg.dim,
            &mut rng,
        ));
        self.knowledge_mlp = Some(Mlp::new(
            &mut self.store,
            "cosmo.know",
            self.knowledge_dim,
            cfg.dim,
            cfg.dim,
            &mut rng,
        ));
        self.fuse = Some(Linear::new(
            &mut self.store,
            "cosmo.fuse",
            3 * cfg.dim,
            cfg.dim,
            &mut rng,
        ));
        let core = self.core.as_ref().unwrap();
        let (global_proj, knowledge_mlp, fuse) = (
            self.global_proj.unwrap(),
            self.knowledge_mlp.unwrap(),
            self.fuse.unwrap(),
        );
        let global_nbrs = &self.global_nbrs;
        let knowledge_dim = self.knowledge_dim;
        gnn_fit_loop!(
            self,
            ds,
            cfg,
            rng,
            core,
            |tape: &mut Tape,
             st: &ParamStore,
             ds: &SessionDataset,
             items: &[usize],
             q: &[usize]| {
                cosmo_rep(
                    core,
                    global_proj,
                    knowledge_mlp,
                    fuse,
                    global_nbrs,
                    knowledge_dim,
                    st,
                    tape,
                    ds,
                    items,
                    q,
                )
            }
        );
    }

    fn score_prefix(&self, ds: &SessionDataset, items: &[usize], queries: &[usize]) -> Vec<f32> {
        let core = self.core.as_ref().unwrap();
        let mut tape = Tape::new();
        let rep = cosmo_rep(
            core,
            self.global_proj.unwrap(),
            self.knowledge_mlp.unwrap(),
            self.fuse.unwrap(),
            &self.global_nbrs,
            self.knowledge_dim,
            &self.store,
            &mut tape,
            ds,
            items,
            queries,
        );
        let table = core.emb.table(&mut tape, &self.store);
        let logits = tape.matmul_nt(rep, table);
        tape.value(logits).row_slice(0).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_graph_structure() {
        // session 3 → 5 → 3 → 7
        let (nodes, alias, a_in, a_out) = session_graph(&[3, 5, 3, 7]);
        assert_eq!(nodes, vec![3, 5, 7]);
        assert_eq!(alias, vec![0, 1, 0, 2]);
        // out edges: 3→5, 5→3, 3→7; row for node 0 (item 3): edges to 5 and 7
        let row0: f32 = a_out.row_slice(0).iter().sum();
        assert!((row0 - 1.0).abs() < 1e-6, "out rows normalised");
        // in adjacency row for node 0 (item 3): from 5
        assert!(a_in.get(0, 1) > 0.0);
    }

    #[test]
    fn repeated_item_sessions_supported() {
        let (nodes, alias, a_in, a_out) = session_graph(&[1, 1, 1]);
        assert_eq!(nodes, vec![1]);
        assert_eq!(alias, vec![0, 0, 0]);
        assert_eq!(a_in.shape(), (1, 1));
        assert_eq!(a_out.get(0, 0), 0.0, "self loops excluded");
    }
}
