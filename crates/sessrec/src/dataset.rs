//! Session dataset generation (§4.2.1, Table 7).
//!
//! The paper collects one week of sessions from *clothing* and
//! *electronics* logs: each session is a chronological item sequence with
//! the search query issued at each step, capped at 20 minutes, ending in a
//! purchase; days 1–5 train, day 6 dev, day 7 test.
//!
//! The generator reproduces the Table 7 statistics that matter to the
//! models: electronics sessions are longer (≈12.3 vs ≈8.8 items) and have
//! far more *unique* queries per session (≈2.47 vs ≈1.36) — electronics
//! users revise their search terms as their intent sharpens, which is
//! exactly the signal COSMO-GNN exploits. Mechanically, a session follows
//! a latent intent; each step buys/clicks an item of a type serving the
//! intent; with a domain-specific probability the intent *drifts*, which
//! emits a new query.

use cosmo_synth::{DomainId, ProductId, QueryId, QueryKind, World};
use cosmo_text::FxHashMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One session: parallel item / query index sequences (indices into the
/// dataset vocabularies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// Item indices, chronological.
    pub items: Vec<usize>,
    /// Query index active at each step (same length as `items`).
    pub queries: Vec<usize>,
    /// Day of week (0–6).
    pub day: usize,
}

impl Session {
    /// Unique query count.
    pub fn unique_queries(&self) -> usize {
        let mut q: Vec<usize> = self.queries.clone();
        q.sort_unstable();
        q.dedup();
        q.len()
    }
}

/// A per-domain session dataset.
#[derive(Debug)]
pub struct SessionDataset {
    /// Domain display name ("clothing" / "electronics").
    pub domain: String,
    /// Item vocabulary (dataset index → world product).
    pub item_vocab: Vec<ProductId>,
    /// Item surface titles (for knowledge generation).
    pub item_titles: Vec<String>,
    /// Query vocabulary (dataset index → world query).
    pub query_vocab: Vec<QueryId>,
    /// Query surface texts.
    pub query_texts: Vec<String>,
    /// Per-query knowledge embeddings (filled by [`attach_knowledge`];
    /// empty vectors until then).
    pub query_knowledge: Vec<Vec<f32>>,
    /// Training sessions (days 0–4).
    pub train: Vec<Session>,
    /// Dev sessions (day 5).
    pub dev: Vec<Session>,
    /// Test sessions (day 6).
    pub test: Vec<Session>,
}

impl SessionDataset {
    /// Number of items in the vocabulary.
    pub fn num_items(&self) -> usize {
        self.item_vocab.len()
    }

    /// Table 7 row: `(sessions, avg session length, avg query length,
    /// avg unique query length)` for a split.
    pub fn split_stats(&self, split: &[Session]) -> (usize, f64, f64, f64) {
        let n = split.len().max(1) as f64;
        let avg_len = split.iter().map(|s| s.items.len()).sum::<usize>() as f64 / n;
        let avg_q = split.iter().map(|s| s.queries.len()).sum::<usize>() as f64 / n;
        let avg_uq = split.iter().map(|s| s.unique_queries()).sum::<usize>() as f64 / n;
        (split.len(), avg_len, avg_q, avg_uq)
    }
}

/// Generation parameters for one domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionConfig {
    /// RNG seed.
    pub seed: u64,
    /// World domain to draw from.
    pub domain: u8,
    /// Display name.
    pub name: String,
    /// Sessions per day.
    pub sessions_per_day: usize,
    /// Mean session length.
    pub mean_length: f64,
    /// Per-step probability the latent intent drifts (emitting a new
    /// query) — higher for electronics.
    pub drift: f64,
    /// Per-step probability of a purely random item (noise).
    pub noise: f64,
    /// Per-step probability the next item complements the previous one
    /// (bundle purchases — the second-order structure GNN models exploit).
    pub complement: f64,
    /// Per-step probability of revisiting an earlier session item.
    pub revisit: f64,
}

impl SessionConfig {
    /// The paper's *clothing* configuration (domain 0).
    pub fn clothing(seed: u64, sessions_per_day: usize) -> Self {
        SessionConfig {
            seed,
            domain: 0,
            name: "clothing".into(),
            sessions_per_day,
            mean_length: 8.8,
            drift: 0.055,
            noise: 0.05,
            complement: 0.15,
            revisit: 0.05,
        }
    }

    /// The paper's *electronics* configuration (domain 8).
    pub fn electronics(seed: u64, sessions_per_day: usize) -> Self {
        SessionConfig {
            seed,
            domain: 8,
            name: "electronics".into(),
            sessions_per_day,
            mean_length: 12.3,
            drift: 0.145,
            noise: 0.05,
            complement: 0.15,
            revisit: 0.05,
        }
    }
}

/// Generate the dataset for one domain.
pub fn generate_sessions(world: &World, cfg: &SessionConfig) -> SessionDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let d = DomainId(cfg.domain);

    // vocabularies: all products of the domain; broad queries of the domain
    let item_vocab: Vec<ProductId> = world.products_in_domain(d).to_vec();
    let item_index: FxHashMap<ProductId, usize> = item_vocab
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i))
        .collect();
    let query_vocab: Vec<QueryId> = world
        .queries_in_domain(d)
        .iter()
        .copied()
        .filter(|&q| matches!(world.query(q).kind, QueryKind::Broad(_)))
        .collect();
    assert!(!query_vocab.is_empty(), "domain must have broad queries");
    let query_index: FxHashMap<QueryId, usize> = query_vocab
        .iter()
        .enumerate()
        .map(|(i, &q)| (q, i))
        .collect();

    let mut splits: [Vec<Session>; 7] = Default::default();
    for (day, split) in splits.iter_mut().enumerate() {
        for _ in 0..cfg.sessions_per_day {
            let len = sample_length(cfg.mean_length, &mut rng);
            let mut items = Vec::with_capacity(len);
            let mut queries = Vec::with_capacity(len);
            // start with a random broad query (a latent intent)
            let mut q_idx = rng.gen_range(0..query_vocab.len());
            for _ in 0..len {
                // drift: the user revises the query
                if rng.gen_bool(cfg.drift) {
                    q_idx = rng.gen_range(0..query_vocab.len());
                }
                let q = world.query(query_vocab[q_idx]);
                let item = if rng.gen_bool(cfg.noise) || q.target_types.is_empty() {
                    // random click
                    item_vocab[rng.gen_range(0..item_vocab.len())]
                } else if !items.is_empty() && rng.gen_bool(cfg.revisit) {
                    // revisit an earlier item in the session
                    item_vocab[items[rng.gen_range(0..items.len())]]
                } else if !items.is_empty() && rng.gen_bool(cfg.complement) {
                    // bundle: complement of the previous item's type
                    let prev = world.product(item_vocab[*items.last().unwrap()]);
                    let comps: Vec<_> = world
                        .ptype(prev.ptype)
                        .complements
                        .iter()
                        .copied()
                        .filter(|&t| world.ptype(t).domain == d)
                        .collect();
                    if comps.is_empty() {
                        item_vocab[rng.gen_range(0..item_vocab.len())]
                    } else {
                        let t = comps[rng.gen_range(0..comps.len())];
                        let prods = world.products_of_type(t);
                        prods[rng.gen_range(0..prods.len())]
                    }
                } else {
                    let t = q.target_types[rng.gen_range(0..q.target_types.len())];
                    let prods = world.products_of_type(t);
                    // popularity-weighted pick within type
                    let weights: Vec<f64> =
                        prods.iter().map(|p| world.product(*p).popularity).collect();
                    let total: f64 = weights.iter().sum();
                    let mut x = rng.gen_range(0.0..total);
                    let mut chosen = prods[prods.len() - 1];
                    for (p, w) in prods.iter().zip(weights.iter()) {
                        if x < *w {
                            chosen = *p;
                            break;
                        }
                        x -= w;
                    }
                    chosen
                };
                items.push(item_index[&item]);
                queries.push(query_index[&query_vocab[q_idx]]);
            }
            split.push(Session {
                items,
                queries,
                day,
            });
        }
    }
    let mut train = Vec::new();
    for s in splits.iter().take(5) {
        train.extend_from_slice(s);
    }
    let dev = splits[5].clone();
    let test = splits[6].clone();

    let item_titles = item_vocab
        .iter()
        .map(|&p| world.product(p).title.clone())
        .collect();
    let query_texts: Vec<String> = query_vocab
        .iter()
        .map(|&q| world.query(q).text.clone())
        .collect();
    SessionDataset {
        domain: cfg.name.clone(),
        item_vocab,
        item_titles,
        query_knowledge: vec![Vec::new(); query_vocab.len()],
        query_vocab,
        query_texts,
        train,
        dev,
        test,
    }
}

/// Session lengths: shifted Poisson-ish via rounded exponential mixture,
/// min 3 (a session must have a prefix and a target).
fn sample_length(mean: f64, rng: &mut StdRng) -> usize {
    let lambda = mean - 3.0;
    // sum of 4 uniform draws approximates a concentrated distribution
    let x: f64 = (0..4).map(|_| rng.gen_range(0.0..lambda / 2.0)).sum();
    (3.0 + x).round() as usize
}

/// Fill per-query knowledge embeddings with `f(query_text) → vector`
/// (typically the COSMO-LM embedding of generated knowledge).
pub fn attach_knowledge(ds: &mut SessionDataset, mut f: impl FnMut(&str) -> Vec<f32>) {
    for (i, text) in ds.query_texts.iter().enumerate() {
        ds.query_knowledge[i] = f(text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmo_synth::WorldConfig;
    use std::sync::OnceLock;

    fn world() -> &'static World {
        static W: OnceLock<World> = OnceLock::new();
        W.get_or_init(|| World::generate(WorldConfig::tiny(101)))
    }

    #[test]
    fn splits_follow_days() {
        let ds = generate_sessions(world(), &SessionConfig::clothing(1, 40));
        assert_eq!(ds.train.len(), 200);
        assert_eq!(ds.dev.len(), 40);
        assert_eq!(ds.test.len(), 40);
        assert!(ds.train.iter().all(|s| s.day < 5));
        assert!(ds.test.iter().all(|s| s.day == 6));
    }

    #[test]
    fn electronics_sessions_longer_with_more_unique_queries() {
        let w = world();
        let c = generate_sessions(w, &SessionConfig::clothing(2, 120));
        let e = generate_sessions(w, &SessionConfig::electronics(2, 120));
        let (_, c_len, _, c_uq) = c.split_stats(&c.train);
        let (_, e_len, _, e_uq) = e.split_stats(&e.train);
        assert!(
            e_len > c_len + 1.5,
            "electronics {e_len:.1} vs clothing {c_len:.1}"
        );
        assert!(
            e_uq > c_uq + 0.4,
            "unique queries {e_uq:.2} vs {c_uq:.2} (Table 7)"
        );
        assert!(
            (c_len - 8.8).abs() < 1.5,
            "clothing length {c_len:.1} off Table 7"
        );
        assert!((c_uq - 1.36).abs() < 0.6, "clothing uniq queries {c_uq:.2}");
    }

    #[test]
    fn sessions_have_min_length_and_valid_indices() {
        let ds = generate_sessions(world(), &SessionConfig::electronics(3, 50));
        for s in ds.train.iter().chain(ds.test.iter()) {
            assert!(s.items.len() >= 3);
            assert_eq!(s.items.len(), s.queries.len());
            assert!(s.items.iter().all(|&i| i < ds.num_items()));
            assert!(s.queries.iter().all(|&q| q < ds.query_vocab.len()));
        }
    }

    #[test]
    fn items_mostly_serve_active_query() {
        let w = world();
        let ds = generate_sessions(w, &SessionConfig::clothing(4, 80));
        let mut on_target = 0;
        let mut total = 0;
        for s in &ds.train {
            for (&it, &qt) in s.items.iter().zip(s.queries.iter()) {
                let q = w.query(ds.query_vocab[qt]);
                let p = w.product(ds.item_vocab[it]);
                total += 1;
                on_target += usize::from(q.target_types.contains(&p.ptype));
            }
        }
        let frac = on_target as f64 / total as f64;
        assert!(frac > 0.85, "on-target fraction {frac}");
    }

    #[test]
    fn attach_knowledge_fills_embeddings() {
        let mut ds = generate_sessions(world(), &SessionConfig::clothing(5, 10));
        attach_knowledge(&mut ds, |text| vec![text.len() as f32; 8]);
        assert!(ds.query_knowledge.iter().all(|v| v.len() == 8));
    }

    #[test]
    fn deterministic() {
        let a = generate_sessions(world(), &SessionConfig::clothing(6, 20));
        let b = generate_sessions(world(), &SessionConfig::clothing(6, 20));
        assert_eq!(a.train, b.train);
    }
}
