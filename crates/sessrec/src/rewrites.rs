//! Query-rewrite analysis — the paper's explicit future work (§4.2.4:
//! "More investigations like how COSMO reduces query rewrites are left for
//! future work").
//!
//! Mechanism: a user rewrites their query when the current results don't
//! surface what they now want. A recommender that ranks well **right after
//! an intent drift** (the step where the query just changed) removes the
//! need for further refinement. We therefore split next-item evaluation
//! into *drift steps* (query at the prediction step differs from the
//! previous step) and *stable steps*, and report Hits@K on each.
//! A query-aware model (COSMO-GNN) should hold its accuracy on drift
//! steps, where history-only models have stale evidence.

use crate::dataset::SessionDataset;
use crate::metrics::RankMetrics;
use crate::models::SessionModel;
use serde::{Deserialize, Serialize};

/// Drift-vs-stable accuracy of one model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftReport {
    /// Model name.
    pub model: String,
    /// Hits@K on steps where the query just changed.
    pub drift_hits: f64,
    /// Hits@K on steps with an unchanged query.
    pub stable_hits: f64,
    /// Number of drift steps evaluated.
    pub n_drift: usize,
    /// Number of stable steps evaluated.
    pub n_stable: usize,
}

impl DriftReport {
    /// How much accuracy the model loses when the intent drifts
    /// (`stable − drift`, in points; lower = more rewrite-resistant).
    pub fn drift_penalty(&self) -> f64 {
        self.stable_hits - self.drift_hits
    }
}

/// Evaluate a trained model at every step of every test session, split by
/// whether the query drifted at the prediction step. Steps are capped per
/// session (`max_steps`) to bound cost; 0 = all.
pub fn drift_analysis(
    ds: &SessionDataset,
    model: &dyn SessionModel,
    k: usize,
    max_steps: usize,
) -> DriftReport {
    let mut drift = RankMetrics::default();
    let mut stable = RankMetrics::default();
    for s in &ds.test {
        let n = s.items.len();
        let upper = if max_steps == 0 {
            n
        } else {
            (2 + max_steps).min(n)
        };
        for t in 2..upper {
            let scores = model.score_prefix(ds, &s.items[..t], &s.queries[..t + 1]);
            if s.queries[t] != s.queries[t - 1] {
                drift.record(&scores, s.items[t], k);
            } else {
                stable.record(&scores, s.items[t], k);
            }
        }
    }
    DriftReport {
        model: model.name().to_string(),
        drift_hits: drift.hits(),
        stable_hits: stable.hits(),
        n_drift: drift.n,
        n_stable: stable.n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{attach_knowledge, generate_sessions, SessionConfig};
    use crate::models::gnn::CosmoGnn;
    use crate::models::seq::Gru4Rec;
    use crate::models::TrainConfig;
    use cosmo_synth::{World, WorldConfig};

    fn dataset() -> SessionDataset {
        let w = World::generate(WorldConfig::tiny(401));
        // electronics: frequent drift (Table 7's 2.47 unique queries)
        let mut ds = generate_sessions(&w, &SessionConfig::electronics(11, 80));
        attach_knowledge(&mut ds, |text| {
            let mut v = vec![0.0f32; 32];
            v[(cosmo_text::hash::hash_str_ns(text, 77) % 32) as usize] = 1.0;
            v
        });
        ds
    }

    #[test]
    fn cosmo_gnn_is_more_drift_resistant_than_gru() {
        let ds = dataset();
        let cfg = TrainConfig {
            epochs: 4,
            dim: 16,
            ..Default::default()
        };
        let mut cosmo = CosmoGnn::new();
        cosmo.fit(&ds, &cfg);
        let mut gru = Gru4Rec::new();
        gru.fit(&ds, &cfg);
        let rc = drift_analysis(&ds, &cosmo, 10, 6);
        let rg = drift_analysis(&ds, &gru, 10, 6);
        assert!(rc.n_drift > 30, "need drift steps: {}", rc.n_drift);
        assert!(
            rc.drift_hits > rg.drift_hits,
            "COSMO drift hits {:.1} must beat GRU {:.1} (the rewrite-reduction mechanism)",
            rc.drift_hits,
            rg.drift_hits
        );
    }

    #[test]
    fn stable_steps_are_easier_than_drift_steps() {
        let ds = dataset();
        let cfg = TrainConfig {
            epochs: 3,
            dim: 16,
            ..Default::default()
        };
        let mut gru = Gru4Rec::new();
        gru.fit(&ds, &cfg);
        let r = drift_analysis(&ds, &gru, 10, 6);
        assert!(
            r.drift_penalty() > 0.0,
            "a history-only model must lose accuracy on drift steps: {r:?}"
        );
    }

    #[test]
    fn step_counts_partition_the_session_steps() {
        let ds = dataset();
        let cfg = TrainConfig {
            epochs: 1,
            dim: 8,
            max_sessions: 10,
            ..Default::default()
        };
        let mut gru = Gru4Rec::new();
        gru.fit(&ds, &cfg);
        let r = drift_analysis(&ds, &gru, 10, 0);
        let expected: usize = ds
            .test
            .iter()
            .map(|s| s.items.len().saturating_sub(2))
            .sum();
        assert_eq!(r.n_drift + r.n_stable, expected);
    }
}
