//! # cosmo-sessrec
//!
//! Session-based recommendation (§4.2): the synthetic session datasets of
//! Table 7 (clothing / electronics, with the electronics domain showing
//! longer sessions and more query revisions), all seven baselines of
//! §4.2.2 (FPMC, GRU4Rec, STAMP, CSRM, SR-GNN, GC-SAN, GCE-GNN) and
//! COSMO-GNN (§4.2.3), trained with full-softmax next-item prediction and
//! evaluated with Hits/NDCG/MRR@10 — the machinery behind Table 8.

#![forbid(unsafe_code)]

pub mod dataset;
pub mod metrics;
pub mod models;
pub mod rewrites;

pub use dataset::{attach_knowledge, generate_sessions, Session, SessionConfig, SessionDataset};
pub use metrics::RankMetrics;
pub use models::gnn::{CosmoGnn, GcSan, GceGnn, SrGnn};
pub use models::seq::{Csrm, Fpmc, Gru4Rec, Stamp};
pub use models::{evaluate, ModelScores, SessionModel, TrainConfig};
pub use rewrites::{drift_analysis, DriftReport};

/// Run every Table 8 model on one dataset, in paper order.
pub fn run_all_models(ds: &SessionDataset, cfg: &TrainConfig, k: usize) -> Vec<ModelScores> {
    let mut results = Vec::new();
    macro_rules! run {
        ($model:expr) => {{
            let mut m = $model;
            m.fit(ds, cfg);
            results.push(evaluate(&m, ds, k));
        }};
    }
    run!(Fpmc::new());
    run!(Gru4Rec::new());
    run!(Stamp::new());
    run!(Csrm::new());
    run!(SrGnn::new());
    run!(GcSan::new());
    run!(GceGnn::new());
    run!(CosmoGnn::new());
    results
}
