//! Peak-RSS probing for the memory-budget benchmarks (Linux `/proc`).
//!
//! The streaming freeze's whole point is bounding resident memory, so the
//! kg-scaling bench measures it directly: reset the kernel's recorded
//! high-water mark, run the freeze, read `VmHWM` back. This lives in
//! cosmo-bench (not the library crates) deliberately — the deterministic
//! crates ban wall-clock/procfs access (audit lint A04), and the probe is
//! measurement, not semantics.

/// Reset the process's recorded peak RSS (`VmHWM`) to its *current* RSS.
///
/// Linux: write `"5"` to `/proc/self/clear_refs`. Returns `false` where
/// unsupported (non-Linux, restricted procfs) — callers degrade to
/// reporting the lifetime peak instead.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Peak resident set size in bytes (`VmHWM` from `/proc/self/status`),
/// since process start or the last [`reset_peak_rss`]. `None` where
/// procfs is unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_reads_and_grows_monotonically() {
        let Some(before) = peak_rss_bytes() else {
            return; // non-Linux: probe degrades to None, nothing to check
        };
        assert!(before > 0);
        // touch ~32 MiB so the high-water mark must move past any prior peak
        // only if it was below that; either way a second read still parses
        let buf = vec![1u8; 32 << 20];
        std::hint::black_box(&buf);
        let after = peak_rss_bytes().expect("probe worked a moment ago");
        assert!(after >= before, "peak RSS cannot shrink without a reset");
    }

    #[test]
    fn reset_narrows_the_window() {
        if !reset_peak_rss() {
            return; // restricted procfs: nothing to assert
        }
        let p = peak_rss_bytes().expect("VmHWM readable after clear_refs");
        assert!(p > 0);
    }
}
