//! Reproduction of the paper's figures and online experiments.

use crate::context::{Ctx, Scale};
use crate::tables::esci_with_knowledge;
use cosmo_kg::{IntentHierarchy, Relation};
use cosmo_lm::{simulated_comparison, CosmoLm};
use cosmo_nav::{run_abtest, AbTestConfig, NavSession, NavigationEngine};
use cosmo_relevance::{Architecture, RelevanceConfig};
use cosmo_serving::{
    query_universe, simulate, simulate_concurrent, ServingConfig, ServingSystem, TrafficConfig,
};
use cosmo_teacher::{cobuy_prompt, search_buy_prompt};
use std::fmt::Write as _;
use std::sync::Arc;

/// Figure 3: the QA prompts used for knowledge harvesting.
pub fn figure3(ctx: &Ctx) -> String {
    let world = &ctx.out.world;
    let sb = &ctx.out.log.search_buys[0];
    let cb = &ctx.out.log.cobuys[0];
    let p1 = search_buy_prompt(
        &world.query(sb.query).text,
        &world.product(sb.product).title,
        Relation::CapableOf,
    );
    let p2 = cobuy_prompt(
        &world.product(cb.p1).title,
        &world.product(cb.p2).title,
        Relation::UsedWith,
    );
    format!(
        "--- search-buy prompt ---\n{}\n\n--- co-buy prompt ---\n{}\n",
        p1.text, p2.text
    )
}

/// Figure 5: deployment traffic replay — per-day hit rates and latency.
pub fn figure5(ctx: &Ctx) -> String {
    let traffic = match ctx.scale {
        Scale::Tiny => TrafficConfig {
            days: 4,
            requests_per_day: 2_000,
            query_universe: 600,
            ..TrafficConfig::default()
        },
        _ => TrafficConfig::default(),
    };
    let universe = query_universe(&traffic);
    let preload: Vec<String> = universe
        .iter()
        .take(traffic.query_universe / 10)
        .cloned()
        .collect();
    let system = ServingSystem::builder()
        .kg(Arc::new(ctx.out.kg.clone()))
        .lm(ctx.student.clone())
        .preload(preload)
        .build()
        .expect("default serving config is valid");
    let reports = simulate(&system, &traffic);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>4} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Day", "HitRate", "L1 hits", "L2 hits", "Misses", "p50(µs)", "p99(µs)", "Promoted"
    );
    for r in &reports {
        let _ = writeln!(
            out,
            "{:>4} {:>8.1}% {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            r.day + 1,
            r.hit_rate * 100.0,
            r.l1_hits,
            r.l2_hits,
            r.misses,
            r.p50_us,
            r.p99_us,
            r.promoted
        );
    }
    let _ = writeln!(
        out,
        "(request path is cache-only: misses are answered asynchronously by batch cycles)"
    );
    out
}

/// Hot-path throughput: the multi-day Zipf replay driven by 4 request
/// threads racing a dedicated batch thread, once with a single-shard /
/// single-worker layout (approximating the pre-sharding design, where
/// all mutable cache state sat behind one set of locks) and once with
/// the default sharded configuration.
pub fn serving_throughput(ctx: &Ctx) -> String {
    let traffic = match ctx.scale {
        Scale::Tiny => TrafficConfig {
            days: 3,
            requests_per_day: 20_000,
            query_universe: 2_000,
            ..TrafficConfig::default()
        },
        _ => TrafficConfig {
            days: 5,
            requests_per_day: 100_000,
            ..TrafficConfig::default()
        },
    };
    let threads = 4;
    let universe = query_universe(&traffic);
    let preload: Vec<String> = universe
        .iter()
        .take(traffic.query_universe / 10)
        .cloned()
        .collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{threads} request threads + 1 batch thread, {} days x {} req/day",
        traffic.days, traffic.requests_per_day
    );
    let _ = writeln!(
        out,
        "{:<26} {:>9} {:>12} {:>11} {:>9} {:>9}",
        "Configuration", "shards", "req/s", "elapsed(s)", "final hit", "hwm"
    );
    for (name, cfg) in [
        (
            "single shard, 1 worker",
            ServingConfig {
                shards: 1,
                workers: 1,
                ..Default::default()
            },
        ),
        ("sharded (default)", ServingConfig::default()),
    ] {
        let system = ServingSystem::builder()
            .kg(Arc::new(ctx.out.kg.clone()))
            .lm(ctx.student.clone())
            .preload(preload.clone())
            .config(cfg.clone())
            .build()
            .expect("throughput config is valid");
        let report = simulate_concurrent(&system, &traffic, threads);
        let last = report.days.last().expect("at least one day");
        let _ = writeln!(
            out,
            "{:<26} {:>9} {:>12.0} {:>11.2} {:>8.1}% {:>9}",
            name,
            cfg.shards,
            report.requests_per_sec,
            report.elapsed_secs,
            last.hit_rate * 100.0,
            last.queue_high_water,
        );
        let _ = writeln!(out, "  {}", system.ops().render());
    }
    out
}

/// Figure 7: private ESCI results across four locales, fixed and tuned.
pub fn figure7(ctx: &Ctx) -> String {
    let base = match ctx.scale {
        Scale::Tiny => 700,
        Scale::Small => 2_500,
        Scale::Full => 5_000,
    };
    let epochs = if ctx.scale == Scale::Tiny { 10 } else { 14 };
    // the frozen-encoder regime trains only the head on random projections
    // and needs a longer schedule to surface the intent features
    let fixed_cfg = RelevanceConfig {
        epochs: epochs * 3,
        lr: 0.02,
        trainable_encoder: false,
        ..RelevanceConfig::default()
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:<26} {:>14} {:>14}",
        "Locale", "Method", "MacroF1 fixed", "MacroF1 tuned"
    );
    for locale_idx in 1..5 {
        let ds = esci_with_knowledge(ctx, locale_idx, base);
        for arch in [
            Architecture::CrossEncoder,
            Architecture::CrossEncoderWithIntent,
        ] {
            let fixed = crate::tables::run_avg(&ds, arch, &fixed_cfg, 3);
            let tuned = crate::tables::run_avg(
                &ds,
                arch,
                &RelevanceConfig {
                    epochs,
                    trainable_encoder: true,
                    ..RelevanceConfig::default()
                },
                3,
            );
            let _ = writeln!(
                out,
                "{:<8} {:<26} {:>14.2} {:>14.2}",
                ds.locale,
                arch.name(),
                fixed.macro_f1,
                tuned.macro_f1
            );
        }
    }
    out
}

/// Figure 8: a slice of the intent hierarchy.
pub fn figure8(ctx: &Ctx) -> String {
    let h = IntentHierarchy::build(&ctx.out.kg);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "intent hierarchy: {} nodes, {} roots, depth {}",
        h.len(),
        h.roots.len(),
        h.depth()
    );
    let mut shown = 0;
    for &r in &h.roots {
        let node = &h.nodes[r];
        if node.children.is_empty() {
            continue;
        }
        let _ = writeln!(out, "{}", node.text);
        for &c in node.children.iter().take(4) {
            let child = &h.nodes[c];
            let _ = writeln!(
                out,
                "  └─ {} ({} products)",
                child.text,
                child.products.len()
            );
            for &g in child.children.iter().take(2) {
                let _ = writeln!(out, "      └─ {}", h.nodes[g].text);
            }
        }
        shown += 1;
        if shown >= 6 {
            break;
        }
    }
    out
}

/// Figure 9: a multi-turn navigation session trace.
pub fn figure9(ctx: &Ctx) -> String {
    let engine = NavigationEngine::new(ctx.out.kg.clone());
    // pick a broad query with suggestions
    let mut out = String::new();
    for q in &ctx.out.world.queries {
        let (mut session, suggestions) = NavSession::start(&engine, &q.text, 5);
        if suggestions.len() < 2 || session.candidates.len() < 4 {
            continue;
        }
        let _ = writeln!(
            out,
            "query: \"{}\" ({} candidates)",
            q.text,
            session.candidates.len()
        );
        let _ = writeln!(
            out,
            "  turn 1 suggestions: {:?}",
            suggestions.iter().map(|s| s.label()).collect::<Vec<_>>()
        );
        let pick = suggestions[0].clone();
        let next = session.select(&pick, 5);
        let _ = writeln!(
            out,
            "  selected \"{}\" → {} candidates; turn 2 suggestions: {:?}",
            pick.label(),
            session.candidates.len(),
            next.iter().map(|s| s.label()).collect::<Vec<_>>()
        );
        if let Some(second) = next.first() {
            let third = session.select(second, 5);
            let _ = writeln!(
                out,
                "  selected \"{}\" → {} candidates; turn 3 suggestions: {:?}",
                second.label(),
                session.candidates.len(),
                third.iter().map(|s| s.label()).collect::<Vec<_>>()
            );
        }
        let _ = writeln!(
            out,
            "  final candidates: {:?}",
            session
                .candidates
                .iter()
                .take(4)
                .map(|(_, t)| t.as_str())
                .collect::<Vec<_>>()
        );
        break;
    }
    if out.is_empty() {
        out.push_str("(no navigable broad query found at this scale)\n");
    }
    out
}

/// Figure 10: one generation with its alternatives and scores.
pub fn figure10(ctx: &Ctx) -> String {
    let world = &ctx.out.world;
    let sb = &ctx.out.log.search_buys[3];
    let input = format!(
        "generate a USED_FOR_FUNC explanation in domain {} for: search query: {} | purchased product: {}",
        world.ptype_of(sb.product).domain.name(),
        world.query(sb.query).text,
        world.product(sb.product).title
    );
    let mut out = String::new();
    let _ = writeln!(out, "input: {input}");
    let _ = writeln!(out, "top-5 COSMO-LM generations:");
    for (tail, score) in ctx.student.generate(&input, None, 5) {
        let _ = writeln!(out, "  {score:>7.3}  {tail}");
    }
    out
}

/// §4.3.2: the online A/B experiment.
pub fn abtest(ctx: &Ctx) -> String {
    let engine = NavigationEngine::new(ctx.out.kg.clone());
    let users = match ctx.scale {
        Scale::Tiny => 200_000,
        Scale::Small => 500_000,
        Scale::Full => 1_000_000,
    };
    // The deployed widget had ~1% showroom visibility; at that level the
    // +0.7% lift needs months of live traffic to resolve, so we simulate
    // at 25% visibility (where the effect clears sampling noise) and
    // extrapolate linearly back — lift scales with the engaged fraction.
    let visibility = 0.25;
    let report = run_abtest(
        &ctx.out.world,
        &engine,
        &AbTestConfig {
            users,
            visibility,
            ..Default::default()
        },
    );
    let lift_at_deploy = report.sales_lift_pct * (0.012 / visibility);
    let eng_at_deploy = report.engagement_lift_pct * (0.012 / visibility);
    format!(
        "traffic: {} control / {} treatment ({}% allocation), widget visibility {:.0}%\n\
         sales rate: control {:.4} vs treatment {:.4} → relative lift {:+.2}%\n\
         extrapolated to the deployment's ~1.2% visibility: {:+.2}% (paper: +0.7%)\n\
         nav engagement: control {:.3}% vs treatment {:.3}% → relative lift {:+.1}%\n\
         extrapolated to deployment visibility: {:+.1}% (paper: +8%)\n",
        report.control_users,
        report.treatment_users,
        (report.treatment_users as f64 / (report.control_users + report.treatment_users) as f64
            * 100.0)
            .round(),
        visibility * 100.0,
        report.control_sales_rate,
        report.treatment_sales_rate,
        report.sales_lift_pct,
        lift_at_deploy,
        report.control_engagement * 100.0,
        report.treatment_engagement * 100.0,
        report.engagement_lift_pct,
        eng_at_deploy
    )
}

/// §1/§5: inference-efficiency comparison.
pub fn efficiency(ctx: &Ctx) -> String {
    let prompt = "The following search query caused the following product purchases. \
                  Query: camping. Product: acme air mattress. Question: why?";
    let generation = "1. they are capable of sleeping outdoors comfortably.";
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<40} {:>10} {:>14} {:>16}",
        "Configuration", "Params", "Latency (ms)", "FLOPs/request"
    );
    for row in simulated_comparison(prompt, generation) {
        let _ = writeln!(
            out,
            "{:<40} {:>9.0}B {:>14.1} {:>16.2e}",
            row.name,
            row.params / 1e9,
            row.sim_latency_ms,
            row.sim_flops_per_req
        );
    }
    let inputs: Vec<String> = ctx
        .out
        .world
        .queries
        .iter()
        .take(200)
        .map(|q| format!("generate explanation for: search query: {}", q.text))
        .collect();
    let tput = measured_student_throughput(&ctx.student, &inputs);
    let _ = writeln!(
        out,
        "\nmeasured: our COSMO-LM stand-in serves {tput:.0} generations/s single-threaded on this machine"
    );
    out
}

/// Measured student throughput: generations per second on this machine.
///
/// Lives here rather than in `cosmo-lm` because the student crate is
/// deterministic and may not read the clock (audit lint A04); benchmarks
/// are the designated wall-clock surface.
pub fn measured_student_throughput(student: &CosmoLm, inputs: &[String]) -> f64 {
    if inputs.is_empty() {
        return 0.0;
    }
    let start = std::time::Instant::now();
    let mut sink = 0usize;
    for input in inputs {
        sink += student.generate(input, None, 1).len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert!(sink > 0);
    inputs.len() as f64 / elapsed.max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmo_lm::StudentConfig;

    #[test]
    fn measured_throughput_positive() {
        let lm = CosmoLm::new(
            StudentConfig::default(),
            vec![
                ("sleeping outdoors".into(), None),
                ("peeling potatoes".into(), None),
            ],
        );
        let inputs: Vec<String> = (0..50)
            .map(|i| format!("user searched camping {i}"))
            .collect();
        let tput = measured_student_throughput(&lm, &inputs);
        assert!(tput > 0.0);
    }
}
