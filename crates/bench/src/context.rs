//! Shared experiment context: one pipeline run + trained student reused by
//! every table/figure reproduction.

use cosmo_core::{run, AnnotationConfig, CriticConfig, PipelineConfig, PipelineOutput};
use cosmo_kg::Relation;
use cosmo_lm::{build_instructions, CosmoLm, Instruction, StudentConfig, StudentReport};
use cosmo_synth::{BehaviorConfig, WorldConfig};
use std::sync::Arc;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast smoke scale (CI-sized).
    Tiny,
    /// Default reproduction scale (~1/1000 of the paper's volumes).
    Small,
    /// Larger run for the headline tables.
    Full,
}

impl Scale {
    /// Parse from a CLI token.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// The pipeline configuration at this scale.
    pub fn pipeline_config(self, seed: u64) -> PipelineConfig {
        match self {
            Scale::Tiny => PipelineConfig::tiny(seed),
            Scale::Small => PipelineConfig {
                world: WorldConfig {
                    seed,
                    ..WorldConfig::default()
                },
                behavior: BehaviorConfig {
                    seed: seed ^ 1,
                    total_search_buys: 15_000,
                    total_cobuys: 24_000,
                    ..BehaviorConfig::default()
                },
                annotation: AnnotationConfig {
                    budget_per_behavior: 1_500,
                    ..AnnotationConfig::default()
                },
                critic: CriticConfig {
                    epochs: 20,
                    dim: 48,
                    ..CriticConfig::default()
                },
                gens_per_searchbuy: 3,
                gens_per_cobuy: 4,
                ..PipelineConfig::default()
            },
            Scale::Full => PipelineConfig {
                world: WorldConfig {
                    seed,
                    ..WorldConfig::default()
                },
                behavior: BehaviorConfig {
                    seed: seed ^ 1,
                    total_search_buys: 40_000,
                    total_cobuys: 60_000,
                    ..BehaviorConfig::default()
                },
                annotation: AnnotationConfig {
                    budget_per_behavior: 3_000,
                    ..AnnotationConfig::default()
                },
                critic: CriticConfig {
                    epochs: 14,
                    ..CriticConfig::default()
                },
                gens_per_searchbuy: 4,
                gens_per_cobuy: 6,
                ..PipelineConfig::default()
            },
        }
    }
}

/// Everything the experiments share.
pub struct Ctx {
    /// The pipeline output (world, log, KG, stats, annotations, critic).
    pub out: PipelineOutput,
    /// The instruction dataset.
    pub instructions: Vec<Instruction>,
    /// The trained COSMO-LM student (shared with the serving stack).
    pub student: Arc<CosmoLm>,
    /// The student's training report.
    pub student_report: StudentReport,
    /// Scale used.
    pub scale: Scale,
    /// Base seed the context was built from (experiments that re-run the
    /// pipeline, e.g. `pipeline-scaling`, reuse it).
    pub seed: u64,
}

/// Build the shared context (pipeline → instructions → student).
pub fn build_context(scale: Scale, seed: u64) -> Ctx {
    let out = run(scale.pipeline_config(seed));
    let instructions = build_instructions(&out.world, &out.filtered, &out.annotation, seed ^ 2);
    let tails: Vec<(String, Option<Relation>)> = cosmo_lm::tail_vocab_from_pipeline(&out);
    let epochs = match scale {
        Scale::Tiny => 6,
        Scale::Small => 10,
        Scale::Full => 14,
    };
    let mut student = CosmoLm::new(
        StudentConfig {
            seed: seed ^ 3,
            epochs,
            ..StudentConfig::default()
        },
        tails,
    );
    let student_report = student.train(&instructions);
    Ctx {
        out,
        instructions,
        student: Arc::new(student),
        student_report,
        scale,
        seed,
    }
}
