//! KG-analytics experiment: structural diagnostics of the built graph
//! (global intent importance, connectivity, degree distribution) —
//! the health checks an operator of the production KG would watch.

use crate::context::Ctx;
use cosmo_kg::{connected_components, degree_histogram, giant_component_size, top_intents_global};
use std::fmt::Write as _;

/// Render the KG analytics report. The analytics iterate CSR slices, so
/// the built graph is frozen into a [`cosmo_kg::KgSnapshot`] first.
pub fn kgstats(ctx: &Ctx) -> String {
    let kg = ctx.out.kg.freeze();
    let kg = &kg;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "graph: {} nodes, {} edges, {} relation types",
        kg.num_nodes(),
        kg.num_edges(),
        kg.num_relations()
    );

    let (_, components) = connected_components(kg);
    let giant = giant_component_size(kg);
    let _ = writeln!(
        out,
        "connectivity: {} components; giant component covers {:.1}% of nodes",
        components,
        100.0 * giant as f64 / kg.num_nodes().max(1) as f64
    );

    // degree distribution summary (long-tail shape)
    let hist = degree_histogram(kg);
    let mut degrees: Vec<(usize, usize)> = hist.into_iter().collect();
    degrees.sort_unstable();
    let total_nodes: usize = degrees.iter().map(|(_, c)| c).sum();
    let mut cum = 0usize;
    let mut median_degree = 0;
    for &(d, c) in &degrees {
        cum += c;
        if cum * 2 >= total_nodes {
            median_degree = d;
            break;
        }
    }
    let max_degree = degrees.last().map(|(d, _)| *d).unwrap_or(0);
    let _ = writeln!(
        out,
        "degree distribution: median {median_degree}, max {max_degree} (long tail: {} nodes with degree ≥ 32)",
        degrees.iter().filter(|(d, _)| *d >= 32).map(|(_, c)| c).sum::<usize>()
    );

    let _ = writeln!(
        out,
        "\ntop intentions by PageRank (global behavioural mass):"
    );
    for (node, score) in top_intents_global(kg, 10) {
        let _ = writeln!(out, "  {:>8.5}  {}", score, kg.node_text(node));
    }
    out
}
