//! Reproduction of every table in the paper's evaluation.

use crate::context::{Ctx, Scale};
use cosmo_kg::{stats, BehaviorKind, Relation};
use cosmo_lm::{eval_generation, table9, task_histogram};
use cosmo_relevance::{
    attach_knowledge, generate_locale, pair_knowledge, run_architecture, Architecture, EsciConfig,
    EsciDataset, RelevanceConfig, RelevanceResult, LOCALES,
};
use cosmo_sessrec::{
    attach_knowledge as attach_session_knowledge, generate_sessions, run_all_models, SessionConfig,
    TrainConfig,
};
use cosmo_teacher::{mine_relations, render_table2, Teacher, TeacherConfig};
use std::fmt::Write as _;

/// Table 1: KG comparison — literature constants plus our measured row.
pub fn table1(ctx: &Ctx) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>8} {:>6}  {:<16} {:<12} {:<10} {:<18}",
        "KG", "#Nodes", "#Edges", "#Rels", "Source", "E-commerce", "Intention", "User Behavior"
    );
    for row in stats::table1_literature() {
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>8} {:>6}  {:<16} {:<12} {:<10} {:<18}",
            row.name,
            row.nodes,
            row.edges,
            row.rels,
            row.source,
            row.ecommerce,
            row.intention,
            row.behavior
        );
    }
    let sum = stats::summarize(&ctx.out.kg);
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>8} {:>6}  {:<16} {:<12} {:<10} {:<18}",
        "COSMO-rs (ours)",
        sum.nodes,
        sum.edges,
        sum.rels,
        "LLM Generation",
        format!("{} domains", sum.domains),
        "yes",
        "co-buy&search-buy"
    );
    out
}

/// Table 2: mined relation types with counts from a fresh generation sweep.
pub fn table2(ctx: &Ctx) -> String {
    let mut teacher = Teacher::new(&ctx.out.world, TeacherConfig::default());
    let mut cands = Vec::new();
    for sb in ctx.out.log.search_buys.iter().take(3_000) {
        cands.push(teacher.generate_search_buy(sb.query, sb.product));
    }
    for cb in ctx.out.log.cobuys.iter().take(3_000) {
        cands.push(teacher.generate_cobuy(cb.p1, cb.p2));
    }
    let mined = mine_relations(&cands);
    format!(
        "Seed relations: {:?}\n{}",
        Relation::SEEDS,
        render_table2(&mined)
    )
}

/// Table 3: per-category behaviour pairs / annotations / edges.
pub fn table3(ctx: &Ctx) -> String {
    ctx.out.stats.render_table3()
}

/// Table 4: plausibility / typicality ratios of the annotated data.
pub fn table4(ctx: &Ctx) -> String {
    let (sp, st) = ctx.out.annotation.table4_ratios(BehaviorKind::SearchBuy);
    let (cp, ct) = ctx.out.annotation.table4_ratios(BehaviorKind::CoBuy);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>14} {:>12}",
        "", "Plausibility", "Typicality"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>13.1}% {:>11.1}%",
        "Search-buy",
        sp * 100.0,
        st * 100.0
    );
    let _ = writeln!(
        out,
        "{:<12} {:>13.1}% {:>11.1}%",
        "Co-buy",
        cp * 100.0,
        ct * 100.0
    );
    let _ = writeln!(
        out,
        "(paper: search-buy typicality 35.0%; co-buy typicality 'notably low')"
    );
    let _ = writeln!(
        out,
        "audit accuracy {:.1}% (paper >90%), disagreement rate {:.1}%",
        ctx.out.annotation.audit_accuracy * 100.0,
        ctx.out.annotation.disagreement_rate * 100.0
    );
    out
}

/// Build one locale's ESCI dataset with knowledge attached from the KG.
pub fn esci_with_knowledge(ctx: &Ctx, locale_idx: usize, base_pairs: usize) -> EsciDataset {
    let cfg = EsciConfig {
        base_pairs,
        ..EsciConfig::default()
    };
    let mut ds = generate_locale(&ctx.out.world, &cfg, locale_idx);
    let kg = &ctx.out.kg;
    let lm = &ctx.student;
    attach_knowledge(&mut ds, |q, p| pair_knowledge(kg, lm, q, p));
    ds
}

/// Run an architecture with `n` different seeds and average the F1s —
/// individual runs at this scale carry ±2-point initialisation noise.
pub fn run_avg(
    ds: &EsciDataset,
    arch: Architecture,
    cfg: &RelevanceConfig,
    n: usize,
) -> RelevanceResult {
    let mut macro_f1 = 0.0;
    let mut micro_f1 = 0.0;
    let mut last = None;
    for k in 0..n {
        let r = run_architecture(
            ds,
            arch,
            RelevanceConfig {
                seed: cfg.seed ^ ((k as u64 + 1) * 0x9E37),
                ..cfg.clone()
            },
        );
        macro_f1 += r.macro_f1;
        micro_f1 += r.micro_f1;
        last = Some(r);
    }
    let mut r = last.unwrap();
    r.macro_f1 = macro_f1 / n as f64;
    r.micro_f1 = micro_f1 / n as f64;
    r
}

/// Table 5: ESCI dataset statistics per locale.
pub fn table5(ctx: &Ctx) -> String {
    let base = match ctx.scale {
        Scale::Tiny => 800,
        Scale::Small => 4_000,
        Scale::Full => 8_000,
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>12} {:>12} {:>14} {:>16}",
        "Locale", "# Train", "# Test", "# Exact", "# Uniq Queries", "# Uniq Products"
    );
    for i in 0..LOCALES.len() {
        let ds = esci_with_knowledge(ctx, i, base);
        let (train, test, exact, uq, up) = ds.stats();
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>12} {:>12} {:>14} {:>16}",
            ds.locale, train, test, exact, uq, up
        );
    }
    out
}

/// Table 6: ESCI results on the public (KDD Cup) locale — three
/// architectures × fixed/trainable encoders.
pub fn table6(ctx: &Ctx) -> String {
    let base = match ctx.scale {
        Scale::Tiny => 800,
        Scale::Small => 3_000,
        Scale::Full => 6_000,
    };
    let ds = esci_with_knowledge(ctx, 0, base);
    let epochs = if ctx.scale == Scale::Tiny { 10 } else { 14 };
    // the frozen-encoder regime trains only the head on random projections
    // and needs a longer schedule to surface the intent features
    let fixed_cfg = RelevanceConfig {
        epochs: epochs * 3,
        lr: 0.02,
        trainable_encoder: false,
        ..RelevanceConfig::default()
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<26} {:>9} {:>9} | {:>9} {:>9}",
        "Method", "MacroF1", "MicroF1", "MacroF1", "MicroF1"
    );
    let _ = writeln!(
        out,
        "{:<26} {:>9} {:>9} | {:>9} {:>9}",
        "", "(fixed)", "(fixed)", "(tuned)", "(tuned)"
    );
    for arch in [
        Architecture::BiEncoder,
        Architecture::CrossEncoder,
        Architecture::CrossEncoderWithIntent,
    ] {
        let fixed = run_avg(&ds, arch, &fixed_cfg, 3);
        let tuned = run_avg(
            &ds,
            arch,
            &RelevanceConfig {
                epochs,
                trainable_encoder: true,
                ..RelevanceConfig::default()
            },
            3,
        );
        let _ = writeln!(
            out,
            "{:<26} {:>9.2} {:>9.2} | {:>9.2} {:>9.2}",
            arch.name(),
            fixed.macro_f1,
            fixed.micro_f1,
            tuned.macro_f1,
            tuned.micro_f1
        );
    }
    out
}

/// Table 7: session dataset statistics for both domains.
pub fn table7(ctx: &Ctx) -> String {
    let per_day = match ctx.scale {
        Scale::Tiny => 60,
        Scale::Small => 250,
        Scale::Full => 500,
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:<8} {:>10} {:>12} {:>12} {:>16}",
        "Domain", "Split", "# Sessions", "Avg Sess L.", "Avg Q. L.", "Avg Uniq Q. L."
    );
    for cfg in [
        SessionConfig::clothing(0xDA7A, per_day),
        SessionConfig::electronics(0xDA7A, per_day),
    ] {
        let ds = generate_sessions(&ctx.out.world, &cfg);
        for (name, split) in [("Train", &ds.train), ("Dev", &ds.dev), ("Test", &ds.test)] {
            let (n, len, ql, uql) = ds.split_stats(split);
            let _ = writeln!(
                out,
                "{:<14} {:<8} {:>10} {:>12.2} {:>12.2} {:>16.2}",
                ds.domain, name, n, len, ql, uql
            );
        }
    }
    out
}

/// Table 8: session-based recommendation — all eight models on both domains.
pub fn table8(ctx: &Ctx) -> String {
    let per_day = match ctx.scale {
        Scale::Tiny => 40,
        Scale::Small => 300,
        Scale::Full => 500,
    };
    let epochs = if ctx.scale == Scale::Tiny { 3 } else { 12 };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "Method", "Hits@10", "NDCG@10", "MRR@10", "Hits@10", "NDCG@10", "MRR@10"
    );
    let _ = writeln!(
        out,
        "{:<12} | {:^27}| {:^26}",
        "", "clothing", "electronics"
    );
    let mut rows: Vec<Vec<String>> = Vec::new();
    for cfg in [
        SessionConfig::clothing(0xDA7A, per_day),
        SessionConfig::electronics(0xDA7A, per_day),
    ] {
        let mut ds = generate_sessions(&ctx.out.world, &cfg);
        // COSMO knowledge (§4.2.3) through the actual serving path: the
        // feature store computes structured features per query (KG intents
        // with a COSMO-LM fallback) and the recommendation view renders
        // them as the sparse knowledge vector COSMO-GNN consumes.
        let kg = &ctx.out.kg;
        let student = &ctx.student;
        attach_session_knowledge(&mut ds, |query| {
            let f = cosmo_serving::compute_features(query, kg, student);
            cosmo_serving::recommendation_view(&f, 128)
        });
        let results = run_all_models(
            &ds,
            &TrainConfig {
                epochs,
                ..TrainConfig::default()
            },
            10,
        );
        for (i, r) in results.iter().enumerate() {
            if rows.len() <= i {
                rows.push(vec![r.model.clone()]);
            }
            rows[i].push(format!("{:>8.2}", r.hits));
            rows[i].push(format!("{:>8.2}", r.ndcg));
            rows[i].push(format!("{:>8.2}", r.mrr));
        }
    }
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} | {} {} {} | {} {} {}",
            r[0], r[1], r[2], r[3], r[4], r[5], r[6]
        );
    }
    out
}

/// Table 9: example COSMO-LM generations per category (plus the instruction
/// dataset composition of §3.4).
pub fn table9_render(ctx: &Ctx) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Instruction data composition:");
    for (task, n) in task_histogram(&ctx.instructions) {
        let _ = writeln!(out, "  {:<30} {:>8}", task.name(), n);
    }
    let _ = writeln!(out, "\n{:<28} Example generation", "Category");
    for row in table9(&ctx.out.world, &ctx.out.log, &ctx.student) {
        let _ = writeln!(out, "{:<28} {}", row.category, row.example);
    }
    // headline quality comparison
    let mut teacher = Teacher::new(&ctx.out.world, TeacherConfig::default());
    // hold out the tail of the behaviour log (instruction data is drawn
    // from sampled pairs near the head)
    let skip = ctx.out.log.search_buys.len() * 2 / 3;
    let eval = eval_generation(
        &ctx.out.world,
        &ctx.out.log,
        &ctx.student,
        &mut teacher,
        skip,
        400,
    );
    let _ = writeln!(
        out,
        "\nHeld-out generation quality (oracle-judged, n={}):\n  COSMO-LM: typical {:.1}%, plausible {:.1}%\n  raw teacher: typical {:.1}%, plausible {:.1}%",
        eval.n,
        eval.student_typical * 100.0,
        eval.student_plausible * 100.0,
        eval.teacher_typical * 100.0,
        eval.teacher_plausible * 100.0
    );
    out
}
