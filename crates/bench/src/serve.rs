//! The `serve` experiment: stand up the real HTTP front end over a
//! frozen [`cosmo_kg::KgSnapshot`] and drive it closed-loop with
//! synthetic query streams, sweeping offered concurrency to saturation.
//!
//! Two modes:
//!
//! - **smoke** (`repro -- serve --smoke`, and the tier-1 gate): one short
//!   fixed-concurrency window at tiny load; asserts nonzero throughput
//!   and zero 5xx responses, so CI catches a wedged server in seconds.
//! - **full** (`repro -- serve`): doubles concurrency until sustained
//!   throughput stops improving ≥5% per step, reporting p50/p99 latency
//!   and drop/reject rates at every point.
//!
//! Both write `BENCH_serve.json` for machine consumption.

use crate::context::Ctx;
use cosmo_http::{run_load, sweep_to_saturation, HttpServer, LoadConfig, LoadReport, ServerConfig};
use cosmo_serving::{AdmissionPolicy, ServeRequest, ServingSystem};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Stand up the serving system + HTTP server, run the load shape, write
/// `BENCH_serve.json`, and render the human-readable summary.
pub fn serve(ctx: &Ctx, smoke: bool) -> String {
    let snapshot = Arc::new(ctx.out.kg.freeze());

    // synthetic query stream: the world's real generated queries, with a
    // slice of them preloaded so the sweep exercises the hit path too
    let queries: Vec<String> = ctx
        .out
        .world
        .queries
        .iter()
        .take(256)
        .map(|q| q.text.clone())
        .collect();
    let preload: Vec<String> = queries.iter().step_by(2).cloned().collect();
    let bodies: Vec<String> = queries
        .iter()
        .map(|q| ServeRequest::new(q.clone()).to_json())
        .collect();

    let system = Arc::new(
        ServingSystem::builder()
            .snapshot(snapshot)
            .lm(ctx.student.clone())
            .preload(preload)
            .build()
            .expect("default serving config is valid"),
    );

    let server_cfg = ServerConfig {
        conn_workers: if smoke { 2 } else { 8 },
        conn_backlog: 256,
        admission: AdmissionPolicy::RejectNew,
        ..ServerConfig::default()
    };
    let handle = HttpServer::start(Arc::clone(&system), server_cfg).expect("bind ephemeral port");
    let addr = handle.addr();

    // background batch thread: turn enqueued misses into L2 entries while
    // the load runs, like the Figure 5 async refresh path
    let stop_batch = Arc::new(AtomicBool::new(false));
    let batch = {
        let system = Arc::clone(&system);
        let stop = Arc::clone(&stop_batch);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let _ = system.run_batch_cycle();
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    let reports: Vec<LoadReport> = if smoke {
        vec![run_load(
            addr,
            &LoadConfig {
                concurrency: 2,
                duration: Duration::from_millis(400),
                bodies,
            },
        )]
    } else {
        sweep_to_saturation(addr, bodies, Duration::from_secs(2), 32, 0.05)
    };

    stop_batch.store(true, Ordering::Relaxed);
    let _ = batch.join();
    let http_stats = handle.stats();
    handle.shutdown();

    // render
    let mut out = String::new();
    let _ = writeln!(
        out,
        "HTTP front end over frozen snapshot ({} nodes / {} edges), {} mode",
        system.kg_snapshot().num_nodes(),
        system.kg_snapshot().num_edges(),
        if smoke { "smoke" } else { "sweep" }
    );
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "concurrency", "req/s", "requests", "ok", "rejected", "errors", "p50(us)", "p99(us)"
    );
    for r in &reports {
        let _ = writeln!(
            out,
            "{:<12} {:>10.1} {:>10} {:>9} {:>9} {:>9} {:>10} {:>10}",
            r.concurrency,
            r.throughput_rps,
            r.requests,
            r.ok,
            r.rejected,
            r.other_errors + r.transport_errors,
            r.p50_us,
            r.p99_us
        );
    }
    let best = reports
        .iter()
        .max_by(|a, b| a.throughput_rps.total_cmp(&b.throughput_rps))
        .expect("at least one load window ran");
    let _ = writeln!(
        out,
        "saturation: {:.1} req/s at concurrency {} (p99 {}us); \
         conns accepted {}, shed {}, rejected-at-accept {}",
        best.throughput_rps,
        best.concurrency,
        best.p99_us,
        http_stats.accepted,
        http_stats.shed_conns,
        http_stats.rejected_conns
    );

    let mut json = String::from("{");
    let _ = write!(
        json,
        "\"mode\":\"{}\",\"snapshot_nodes\":{},\"snapshot_edges\":{},\"runs\":[",
        if smoke { "smoke" } else { "sweep" },
        system.kg_snapshot().num_nodes(),
        system.kg_snapshot().num_edges()
    );
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&r.to_json());
    }
    let _ = write!(
        json,
        "],\"saturation_rps\":{:.1},\"saturation_concurrency\":{},\
         \"conns_accepted\":{},\"conns_shed\":{},\"conns_rejected\":{}}}",
        best.throughput_rps,
        best.concurrency,
        http_stats.accepted,
        http_stats.shed_conns,
        http_stats.rejected_conns
    );
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => {
            let _ = writeln!(out, "\nwrote BENCH_serve.json");
        }
        Err(e) => {
            let _ = writeln!(out, "\ncould not write BENCH_serve.json: {e}");
        }
    }

    if smoke {
        let total_5xx: u64 = reports.iter().map(|r| r.rejected + r.other_errors).sum();
        assert!(
            best.requests > 0 && best.throughput_rps > 0.0,
            "smoke: server answered no requests"
        );
        assert_eq!(
            total_5xx, 0,
            "smoke: server answered {total_5xx} 5xx responses"
        );
        let _ = writeln!(out, "smoke ok: nonzero throughput, zero 5xx");
    }
    out
}
