//! The `serve` experiment: stand up the real HTTP front end over a
//! frozen [`cosmo_kg::KgSnapshot`] and drive it closed-loop with
//! synthetic query streams, sweeping offered concurrency to saturation.
//!
//! Two modes:
//!
//! - **smoke** (`repro -- serve --smoke`, and the tier-1 gate): one short
//!   fixed-concurrency window at tiny load; asserts nonzero throughput
//!   and zero 5xx responses, so CI catches a wedged server in seconds.
//! - **full** (`repro -- serve`): doubles concurrency until sustained
//!   throughput stops improving ≥5% per step, reporting p50/p99 latency
//!   and drop/reject rates at every point.
//!
//! Both write `BENCH_serve.json` for machine consumption.

use crate::context::Ctx;
use cosmo_http::{
    run_load, sweep_to_saturation, HttpClient, HttpServer, LoadConfig, LoadReport, ServerConfig,
};
use cosmo_serving::{AdmissionPolicy, ServeRequest, ServeResponse, ServingSystem};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Stand up the serving system + HTTP server, run the load shape, write
/// `BENCH_serve.json`, and render the human-readable summary.
pub fn serve(ctx: &Ctx, smoke: bool) -> String {
    let snapshot = Arc::new(ctx.out.kg.freeze());

    // synthetic query stream: the world's real generated queries, with a
    // slice of them preloaded so the sweep exercises the hit path too
    let queries: Vec<String> = ctx
        .out
        .world
        .queries
        .iter()
        .take(256)
        .map(|q| q.text.clone())
        .collect();
    let preload: Vec<String> = queries.iter().step_by(2).cloned().collect();
    let bodies: Vec<String> = queries
        .iter()
        .map(|q| ServeRequest::new(q.clone()).to_json())
        .collect();

    let system = Arc::new(
        ServingSystem::builder()
            .snapshot(snapshot)
            .lm(ctx.student.clone())
            .preload(preload)
            .build()
            .expect("default serving config is valid"),
    );

    let server_cfg = ServerConfig {
        conn_workers: if smoke { 2 } else { 8 },
        conn_backlog: 256,
        admission: AdmissionPolicy::RejectNew,
        ..ServerConfig::default()
    };
    let handle = HttpServer::start(Arc::clone(&system), server_cfg).expect("bind ephemeral port");
    let addr = handle.addr();

    // background batch thread: turn enqueued misses into L2 entries while
    // the load runs, like the Figure 5 async refresh path
    let stop_batch = Arc::new(AtomicBool::new(false));
    let batch = {
        let system = Arc::clone(&system);
        let stop = Arc::clone(&stop_batch);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let _ = system.run_batch_cycle();
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    let reports: Vec<LoadReport> = if smoke {
        vec![run_load(
            addr,
            &LoadConfig {
                concurrency: 2,
                duration: Duration::from_millis(400),
                bodies,
            },
        )]
    } else {
        sweep_to_saturation(addr, bodies, Duration::from_secs(2), 32, 0.05)
    };

    stop_batch.store(true, Ordering::Relaxed);
    let _ = batch.join();
    let http_stats = handle.stats();
    handle.shutdown();

    // render
    let mut out = String::new();
    let _ = writeln!(
        out,
        "HTTP front end over frozen snapshot ({} nodes / {} edges), {} mode",
        system.kg_view().num_nodes(),
        system.kg_view().num_edges(),
        if smoke { "smoke" } else { "sweep" }
    );
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "concurrency", "req/s", "requests", "ok", "rejected", "errors", "p50(us)", "p99(us)"
    );
    for r in &reports {
        let _ = writeln!(
            out,
            "{:<12} {:>10.1} {:>10} {:>9} {:>9} {:>9} {:>10} {:>10}",
            r.concurrency,
            r.throughput_rps,
            r.requests,
            r.ok,
            r.rejected,
            r.other_errors + r.transport_errors,
            r.p50_us,
            r.p99_us
        );
    }
    let best = reports
        .iter()
        .max_by(|a, b| a.throughput_rps.total_cmp(&b.throughput_rps))
        .expect("at least one load window ran");
    let _ = writeln!(
        out,
        "saturation: {:.1} req/s at concurrency {} (p99 {}us); \
         conns accepted {}, shed {}, rejected-at-accept {}",
        best.throughput_rps,
        best.concurrency,
        best.p99_us,
        http_stats.accepted,
        http_stats.shed_conns,
        http_stats.rejected_conns
    );

    let mut json = String::from("{");
    let _ = write!(
        json,
        "\"mode\":\"{}\",\"snapshot_nodes\":{},\"snapshot_edges\":{},\"runs\":[",
        if smoke { "smoke" } else { "sweep" },
        system.kg_view().num_nodes(),
        system.kg_view().num_edges()
    );
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&r.to_json());
    }
    let _ = write!(
        json,
        "],\"saturation_rps\":{:.1},\"saturation_concurrency\":{},\
         \"conns_accepted\":{},\"conns_shed\":{},\"conns_rejected\":{}}}",
        best.throughput_rps,
        best.concurrency,
        http_stats.accepted,
        http_stats.shed_conns,
        http_stats.rejected_conns
    );
    let _ = writeln!(
        out,
        "\n{}",
        crate::output::write_bench_json("BENCH_serve.json", &json)
    );

    if smoke {
        let total_5xx: u64 = reports.iter().map(|r| r.rejected + r.other_errors).sum();
        assert!(
            best.requests > 0 && best.throughput_rps > 0.0,
            "smoke: server answered no requests"
        );
        assert_eq!(
            total_5xx, 0,
            "smoke: server answered {total_5xx} 5xx responses"
        );
        let _ = writeln!(out, "smoke ok: nonzero throughput, zero 5xx");
    }
    out
}

/// The `serve --swap` experiment: hot snapshot reloads under live
/// traffic.
///
/// Every query the clients send is preloaded, so each request must be a
/// cache hit — which makes "zero 5xx across N swaps" a hard assertion
/// rather than a statistical hope. Request threads additionally record
/// the response body per `(query, snapshot_generation)` pair and assert
/// byte-identity within each generation: a torn read across the RCU
/// boundary (old graph, new cache, or vice versa) would surface here.
///
/// Smoke mode (the tier-1 gate) runs 3 swaps with 2 client threads; the
/// full mode runs 10 swaps with 4. Writes `BENCH_serve_swap.json`.
pub fn serve_swap(ctx: &Ctx, smoke: bool) -> String {
    use std::collections::HashMap;
    use std::sync::Mutex;

    let swaps: u64 = if smoke { 3 } else { 10 };
    let client_threads = if smoke { 2 } else { 4 };
    let window = Duration::from_millis(if smoke { 25 } else { 60 });

    let queries: Vec<String> = ctx
        .out
        .world
        .queries
        .iter()
        .take(64)
        .map(|q| q.text.clone())
        .collect();
    let system = Arc::new(
        ServingSystem::builder()
            .snapshot(Arc::new(ctx.out.kg.freeze()))
            .lm(ctx.student.clone())
            .preload(queries.iter().cloned())
            .build()
            .expect("default serving config is valid"),
    );
    let handle = HttpServer::start(
        Arc::clone(&system),
        ServerConfig {
            conn_workers: client_threads + 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = handle.addr();

    // Pre-write the v2 snapshot files the reloads will map: the real
    // pipeline KG plus i extra nodes, so every generation differs.
    let dir = std::env::temp_dir().join(format!("cosmo_serve_swap_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("swap snapshot dir");
    let paths: Vec<std::path::PathBuf> = (1..=swaps)
        .map(|i| {
            let mut kg = ctx.out.kg.clone();
            for j in 0..i {
                let head = kg.intern_node(
                    cosmo_kg::NodeKind::Product,
                    &format!("swap-bench product {i}-{j}"),
                );
                let tail = kg.intern_node(cosmo_kg::NodeKind::Intention, "swap bench traffic");
                kg.add_edge(cosmo_kg::Edge {
                    head,
                    relation: cosmo_kg::Relation::UsedForFunc,
                    tail,
                    behavior: cosmo_kg::BehaviorKind::SearchBuy,
                    category: 0,
                    plausibility: 0.75,
                    typicality: 0.5,
                    support: 1,
                });
            }
            let path = dir.join(format!("gen_{i}.kg2"));
            kg.freeze().save_v2(&path).expect("v2 snapshot save");
            path
        })
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let fivexx = Arc::new(AtomicU64::new(0));
    let bodies_by_gen: Arc<Mutex<HashMap<(usize, u64), String>>> =
        Arc::new(Mutex::new(HashMap::new()));
    let divergent = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = (0..client_threads)
        .map(|t| {
            let stop = Arc::clone(&stop);
            let fivexx = Arc::clone(&fivexx);
            let bodies_by_gen = Arc::clone(&bodies_by_gen);
            let divergent = Arc::clone(&divergent);
            let queries = queries.clone();
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).expect("client connect");
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let qi = (t + served as usize) % queries.len();
                    let body = ServeRequest::new(queries[qi].clone()).to_json();
                    match client.request("POST", "/v1/serve-intents", &body) {
                        Ok(resp) => {
                            if resp.status >= 500 {
                                fivexx.fetch_add(1, Ordering::Relaxed);
                            } else if let Ok(decoded) = ServeResponse::from_json(&resp.body) {
                                let mut seen = bodies_by_gen.lock().expect("bodies map");
                                let prior = seen
                                    .entry((qi, decoded.snapshot_generation))
                                    .or_insert_with(|| resp.body.clone());
                                if *prior != resp.body {
                                    divergent.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            served += 1;
                        }
                        Err(_) => break,
                    }
                }
                served
            })
        })
        .collect();

    let mut ops = HttpClient::connect(addr).expect("ops client connect");
    let mut reload_secs = Vec::with_capacity(paths.len());
    for path in &paths {
        std::thread::sleep(window);
        let body = format!("{{\"path\":{:?}}}", path.display().to_string());
        let t0 = std::time::Instant::now();
        let resp = ops
            .request("POST", "/ops/reload", &body)
            .expect("reload request");
        reload_secs.push(t0.elapsed().as_secs_f64());
        assert_eq!(resp.status, 200, "reload refused: {}", resp.body);
    }
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let served: u64 = clients.into_iter().map(|c| c.join().expect("client")).sum();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let fivexx = fivexx.load(Ordering::Relaxed);
    let divergent = divergent.load(Ordering::Relaxed);
    let final_generation = system.generation();
    let generations: std::collections::BTreeSet<u64> = bodies_by_gen
        .lock()
        .expect("bodies map")
        .keys()
        .map(|&(_, g)| g)
        .collect();
    assert_eq!(fivexx, 0, "swap: {fivexx} 5xx responses under reload");
    assert_eq!(divergent, 0, "swap: bodies diverged within a generation");
    assert_eq!(
        final_generation,
        swaps + 1,
        "swap: generations are sequential"
    );
    assert!(served > 0, "swap: clients made no progress");

    let worst_reload = reload_secs.iter().cloned().fold(0.0f64, f64::max);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "hot swap under live traffic: {swaps} reloads, {served} requests on \
         {client_threads} connections, 0 5xx, 0 divergent bodies"
    );
    let _ = writeln!(
        out,
        "generations observed by traffic: {generations:?}; final generation {final_generation}; \
         worst reload {worst_reload:.4}s"
    );

    let mut json = String::from("{\"mode\":\"swap\",");
    let _ = write!(
        json,
        "\"swaps\":{swaps},\"requests\":{served},\"client_threads\":{client_threads},\
         \"fivexx\":{fivexx},\"divergent_bodies\":{divergent},\
         \"final_generation\":{final_generation},\"generations_observed\":{},\
         \"worst_reload_secs\":{worst_reload:.6}}}",
        generations.len()
    );
    let _ = writeln!(
        out,
        "\n{}",
        crate::output::write_bench_json("BENCH_serve_swap.json", &json)
    );
    out
}
