//! # cosmo-bench
//!
//! The experiment harness: one function per table/figure of the paper
//! (see DESIGN.md §4 for the experiment index), shared context building,
//! ablations, and the Criterion micro-benchmarks in `benches/`.
//!
//! Regenerate everything with:
//!
//! ```text
//! cargo run --release -p cosmo-bench --bin repro -- all
//! cargo run --release -p cosmo-bench --bin repro -- table6 --scale small
//! ```

#![forbid(unsafe_code)]

pub mod ablations;
pub mod context;
pub mod extensions;
pub mod figures;
pub mod kgstats;
pub mod output;
pub mod rss;
pub mod serve;
pub mod tables;

pub use context::{build_context, Ctx, Scale};

/// All experiment names accepted by the `repro` binary.
pub const EXPERIMENTS: [&str; 25] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "figure3",
    "figure5",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "abtest",
    "efficiency",
    "rewrites",
    "feedback",
    "kgstats",
    "throughput",
    "serve",
    "pipeline-scaling",
    "nn-scaling",
    "kg-scaling",
];

/// Run one experiment by name against a prepared context.
pub fn run_experiment(ctx: &Ctx, name: &str) -> Option<String> {
    let out = match name {
        "table1" => tables::table1(ctx),
        "table2" => tables::table2(ctx),
        "table3" => tables::table3(ctx),
        "table4" => tables::table4(ctx),
        "table5" => tables::table5(ctx),
        "table6" => tables::table6(ctx),
        "table7" => tables::table7(ctx),
        "table8" => tables::table8(ctx),
        "table9" => tables::table9_render(ctx),
        "figure3" => figures::figure3(ctx),
        "figure5" => figures::figure5(ctx),
        "figure7" => figures::figure7(ctx),
        "figure8" => figures::figure8(ctx),
        "figure9" => figures::figure9(ctx),
        "figure10" => figures::figure10(ctx),
        "abtest" => figures::abtest(ctx),
        "efficiency" => figures::efficiency(ctx),
        "throughput" => figures::serving_throughput(ctx),
        // smoke mode here keeps `repro -- all` fast; the full saturation
        // sweep is `repro -- serve` (without --smoke) via the binary
        "serve" => serve::serve(ctx, /*smoke=*/ true),
        "kgstats" => kgstats::kgstats(ctx),
        "rewrites" => extensions::rewrites(ctx),
        "feedback" => extensions::feedback_loop(ctx),
        "pipeline-scaling" => extensions::pipeline_scaling(ctx),
        "nn-scaling" => extensions::nn_scaling(ctx),
        // default tier here; `repro -- kg-scaling` adds --smoke/--paper
        "kg-scaling" => extensions::kg_scaling(ctx, extensions::KgTier::Default),
        "ablations" => ablations::ablations(ctx, 0xAB),
        _ => return None,
    };
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a full tiny-scale context and runs the thread-scaling sweep
    /// (four complete pipeline runs) — slow, so opt-in:
    /// `cargo test -q --release -- --ignored`.
    #[test]
    #[ignore = "slow: full context build plus four pipeline runs"]
    fn pipeline_scaling_experiment_runs() {
        let ctx = build_context(Scale::Tiny, 0xC05);
        let out = run_experiment(&ctx, "pipeline-scaling").expect("known experiment");
        assert!(out.contains("speedup"), "missing header:\n{out}");
        assert!(out.contains("1.00x"), "missing sequential baseline:\n{out}");
    }

    /// The blocked kernel must clearly beat the seed scalar loop at
    /// 256×256 (the ISSUE target is ≥3×; asserted loosely here so the
    /// test is robust on throttled CI machines). Timing-dependent, so
    /// opt-in: `cargo test -q --release -- --ignored`.
    /// CSR lookups must clearly beat the hashmap adjacency and snapshot
    /// loading must clearly beat rebuilding (ISSUE targets ≥3× and ≥5×;
    /// also re-asserts serving/nav identity over the snapshot).
    /// Timing-dependent, so opt-in: `cargo test -q --release -- --ignored`.
    #[test]
    #[ignore = "timing-dependent KG read-path speedup measurement"]
    fn kg_scaling_experiment_runs() {
        let ctx = build_context(Scale::Tiny, 0xC05);
        let out = run_experiment(&ctx, "kg-scaling").expect("known experiment");
        assert!(out.contains("csr"), "missing lookup table:\n{out}");
        assert!(
            out.contains("bitwise-identical"),
            "missing identity check:\n{out}"
        );
    }

    /// The full 6.3M-node / 29M-edge world of the paper: sharded parallel
    /// generation, streaming freeze with the 2x peak-RSS budget asserted,
    /// v2 open >= 10x the v1-equivalent parse, and serving/nav/HTTP
    /// identity against the replayed store. Minutes of wall clock and
    /// ~3 GB of scratch disk, so opt-in — same coverage as
    /// `cargo run --release -p cosmo-bench --bin repro -- kg-scaling --paper`.
    #[test]
    #[ignore = "paper-scale streamed freeze: minutes of wall clock, ~2 GB peak RSS"]
    fn kg_scaling_paper_tier_runs() {
        let ctx = build_context(Scale::Tiny, 0xC05);
        let out = extensions::kg_scaling(&ctx, extensions::KgTier::Paper);
        assert!(out.contains("paper"), "missing paper row:\n{out}");
        assert!(
            out.contains("bitwise-identical to the store"),
            "missing scale identity check:\n{out}"
        );
    }

    #[test]
    #[ignore = "timing-dependent kernel speedup measurement"]
    fn blocked_matmul_beats_reference_at_256() {
        let g = extensions::matmul_gflops(256, 256, 256);
        assert!(
            g.blocked >= 2.0 * g.reference,
            "blocked kernel only reached {:.2} GFLOP/s vs reference {:.2}",
            g.blocked,
            g.reference
        );
    }
}
