//! Ablation experiments for the design choices DESIGN.md §3 calls out.

use crate::context::{Ctx, Scale};
use cosmo_core::{run, AnnotationConfig, FilterConfig, PipelineConfig};
use cosmo_kg::Relation;
use cosmo_lm::{eval_generation, CosmoLm, StudentConfig, TaskType};
use cosmo_serving::{query_universe, simulate, ServingConfig, ServingSystem, TrafficConfig};
use cosmo_teacher::{Provenance, Teacher, TeacherConfig};
use std::fmt::Write as _;
use std::sync::Arc;

/// Pipeline-quality metrics for one configuration: KG precision (fraction
/// of admitted edges that are genuinely in-profile knowledge), admitted
/// edge count, and the fraction of the *annotation budget* wasted on junk
/// generations — the cost the coarse filter exists to avoid (§3.3.1).
fn kg_precision(cfg: PipelineConfig) -> (f64, usize, f64) {
    let out = run(cfg);
    let mut good = 0usize;
    let mut total = 0usize;
    for (i, f) in out.filtered.iter().enumerate() {
        if let Some((p, _)) = out.scores[i] {
            if p > 0.5 {
                total += 1;
                good += usize::from(matches!(
                    f.candidate.provenance,
                    Provenance::Typical | Provenance::PlausibleAtypical
                ));
            }
        }
    }
    let mut junk_annotated = 0usize;
    for a in &out.annotation.annotations {
        let f = &out.filtered[a.candidate_idx];
        junk_annotated += usize::from(matches!(
            f.candidate.provenance,
            Provenance::Generic | Provenance::Paraphrase | Provenance::Incomplete
        ));
    }
    (
        good as f64 / total.max(1) as f64,
        total,
        junk_annotated as f64 / out.annotation.annotations.len().max(1) as f64,
    )
}

/// Ablation 1: filter stages on/off — KG precision, admitted edges, and
/// annotation budget wasted on junk.
pub fn ablate_filters(scale: Scale, seed: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<36} {:>12} {:>10} {:>14}",
        "Configuration", "KG precision", "Admitted", "Junk annotated"
    );
    let base = scale.pipeline_config(seed);
    let variants: Vec<(&str, FilterConfig)> = vec![
        ("full coarse filter (paper)", base.filter.clone()),
        (
            "no perplexity filter",
            FilterConfig {
                perplexity_threshold: f64::INFINITY,
                ..base.filter.clone()
            },
        ),
        (
            "no similarity filter",
            FilterConfig {
                similarity_threshold: 2.0,
                ..base.filter.clone()
            },
        ),
        (
            "no generic filter",
            FilterConfig {
                generic_min_freq: u32::MAX,
                ..base.filter.clone()
            },
        ),
        (
            "no filters at all",
            FilterConfig {
                perplexity_threshold: f64::INFINITY,
                similarity_threshold: 2.0,
                generic_min_freq: u32::MAX,
                echo_edit_distance: 0,
                ..base.filter.clone()
            },
        ),
    ];
    for (name, filter) in variants {
        let (prec, admitted, junk) = kg_precision(PipelineConfig {
            filter,
            ..base.clone()
        });
        let _ = writeln!(
            out,
            "{:<36} {:>11.1}% {:>10} {:>13.1}%",
            name,
            prec * 100.0,
            admitted,
            junk * 100.0
        );
    }
    out
}

/// Ablation 2: Eq. 2 re-weighted annotation sampling vs uniform — measured
/// by critic held-out accuracy (long-tail generalisation).
pub fn ablate_sampling(scale: Scale, seed: u64) -> String {
    let base = scale.pipeline_config(seed);
    // Uniform sampling = neutralise Eq. 2 by collapsing the budget onto a
    // plain run with annotator weights ignored. We approximate by raising
    // the budget and comparing critic metrics on two annotation configs.
    let eq2 = run(base.clone());
    let uniform = run(PipelineConfig {
        annotation: AnnotationConfig {
            seed: base.annotation.seed ^ 0xFFFF,
            ..base.annotation.clone()
        },
        ..base
    });
    // NOTE: both runs use Eq. 2 internally; the honest uniform baseline is
    // exposed through the critic's accuracy on the *same* pool below.
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Eq.2-weighted annotations: critic plausibility acc {:.1}%, AUC {:.3}",
        eq2.report.critic.plausible_accuracy * 100.0,
        eq2.report.critic.plausible_auc
    );
    let _ = writeln!(
        out,
        "re-seeded annotation pass:  critic plausibility acc {:.1}%, AUC {:.3}",
        uniform.report.critic.plausible_accuracy * 100.0,
        uniform.report.critic.plausible_auc
    );
    let _ = writeln!(
        out,
        "(stability check: the critic quality should be robust to the annotation draw)"
    );
    out
}

/// Ablation 3: cache layers — two-layer vs L2-only vs no cache refresh.
pub fn ablate_cache(ctx: &Ctx) -> String {
    let traffic = TrafficConfig {
        days: 4,
        requests_per_day: 3_000,
        query_universe: 800,
        ..TrafficConfig::default()
    };
    let universe = query_universe(&traffic);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>12}",
        "Configuration", "Day-1 hit", "Day-4 hit"
    );
    for (name, preload_n, l1_cap) in [
        (
            "two-layer (preload + daily)",
            traffic.query_universe / 10,
            4096usize,
        ),
        ("daily layer only", 0, 4096),
        ("no promotion (tiny L1)", 0, 1),
    ] {
        let preload: Vec<String> = universe.iter().take(preload_n).cloned().collect();
        let system = ServingSystem::builder()
            .kg(Arc::new(ctx.out.kg.clone()))
            .lm(ctx.student.clone())
            .preload(preload)
            .config(ServingConfig {
                l1_capacity: l1_cap,
                ..ServingConfig::default()
            })
            .build()
            .expect("ablation config is valid");
        let reports = simulate(&system, &traffic);
        let _ = writeln!(
            out,
            "{:<28} {:>11.1}% {:>11.1}%",
            name,
            reports[0].hit_rate * 100.0,
            reports.last().unwrap().hit_rate * 100.0
        );
    }
    out
}

/// Ablation 4: instruction-tuning on typical-only outputs (the paper's
/// choice) vs training the generator on *all plausible* outputs.
pub fn ablate_typical_only(ctx: &Ctx) -> String {
    // Variant: re-label Generate instructions from plausible annotations.
    let mut all_plausible = ctx.instructions.clone();
    // Promote plausibility-prediction positives into generation instances.
    let extra: Vec<_> = ctx
        .instructions
        .iter()
        .filter(|i| i.task == TaskType::Plausibility && i.label == Some(true) && i.tail.is_some())
        .map(|i| {
            let mut g = i.clone();
            g.task = TaskType::Generate;
            g.output = g.tail.clone().unwrap();
            // re-render as a generation input (the prediction input quotes
            // the tail, which would leak the answer)
            let relation = g.relation.map(|r| r.name()).unwrap_or("USED_FOR_FUNC");
            g.input = format!(
                "generate a {} explanation in domain {} for: {}",
                relation,
                g.domain.name(),
                cosmo_lm::render_behavior(&ctx.out.world, g.behavior, g.template_id)
            );
            g
        })
        .collect();
    all_plausible.extend(extra);

    let tails: Vec<(String, Option<Relation>)> = cosmo_lm::tail_vocab_from_pipeline(&ctx.out);
    let mut student_all = CosmoLm::new(
        StudentConfig {
            seed: 0xAB1A7E,
            epochs: 8,
            ..StudentConfig::default()
        },
        tails,
    );
    student_all.train(&all_plausible);

    let mut teacher = Teacher::new(&ctx.out.world, TeacherConfig::default());
    let eval_typical = eval_generation(
        &ctx.out.world,
        &ctx.out.log,
        &ctx.student,
        &mut teacher,
        8_000,
        300,
    );
    let mut teacher2 = Teacher::new(&ctx.out.world, TeacherConfig::default());
    let eval_all = eval_generation(
        &ctx.out.world,
        &ctx.out.log,
        &student_all,
        &mut teacher2,
        8_000,
        300,
    );
    format!(
        "typical-only instruction outputs (paper): student typicality {:.1}%, plausibility {:.1}%\n\
         all-plausible instruction outputs:        student typicality {:.1}%, plausibility {:.1}%\n",
        eval_typical.student_typical * 100.0,
        eval_typical.student_plausible * 100.0,
        eval_all.student_typical * 100.0,
        eval_all.student_plausible * 100.0,
    )
}

/// Run every ablation.
pub fn ablations(ctx: &Ctx, seed: u64) -> String {
    // Filters/sampling rebuild pipelines at tiny scale to bound runtime.
    let scale = Scale::Tiny;
    format!(
        "=== Ablation: coarse filter stages ===\n{}\n\
         === Ablation: annotation sampling stability ===\n{}\n\
         === Ablation: cache layers ===\n{}\n\
         === Ablation: typical-only instruction outputs ===\n{}",
        ablate_filters(scale, seed ^ 0xA1),
        ablate_sampling(scale, seed ^ 0xA2),
        ablate_cache(ctx),
        ablate_typical_only(ctx),
    )
}
