//! Extension experiments beyond the paper's published tables: the §4.2.4
//! future-work question (query-rewrite reduction) and the Figure 5
//! feedback loop exercised end-to-end.

use crate::context::{Ctx, Scale};
use cosmo_core::apply_feedback;
use cosmo_kg::NodeKind;
use cosmo_sessrec::{
    attach_knowledge, drift_analysis, generate_sessions, CosmoGnn, GceGnn, Gru4Rec, SessionConfig,
    SessionModel, TrainConfig,
};
use std::fmt::Write as _;

/// §4.2.4 future work: drift-step vs stable-step accuracy per model —
/// the mechanism by which COSMO reduces query rewrites.
pub fn rewrites(ctx: &Ctx) -> String {
    let per_day = match ctx.scale {
        Scale::Tiny => 50,
        Scale::Small => 200,
        Scale::Full => 300,
    };
    let epochs = if ctx.scale == Scale::Tiny { 3 } else { 8 };
    // electronics: the drift-heavy domain (Table 7: 2.47 unique queries)
    let mut ds = generate_sessions(
        &ctx.out.world,
        &SessionConfig::electronics(0xD21F7, per_day),
    );
    let kg = &ctx.out.kg;
    let student = &ctx.student;
    attach_knowledge(&mut ds, |query| {
        let f = cosmo_serving::compute_features(query, kg, student);
        cosmo_serving::recommendation_view(&f, 128)
    });
    let cfg = TrainConfig {
        epochs,
        ..Default::default()
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>12} {:>13} {:>14} (electronics, Hits@10)",
        "Model", "drift steps", "stable steps", "drift penalty"
    );
    let models: Vec<Box<dyn SessionModel>> = vec![
        Box::new(Gru4Rec::new()),
        Box::new(GceGnn::new()),
        Box::new(CosmoGnn::new()),
    ];
    for mut m in models {
        m.fit(&ds, &cfg);
        let r = drift_analysis(&ds, m.as_ref(), 10, 6);
        let _ = writeln!(
            out,
            "{:<12} {:>11.1}% {:>12.1}% {:>13.1}pt   (n={}/{})",
            r.model,
            r.drift_hits,
            r.stable_hits,
            r.drift_penalty(),
            r.n_drift,
            r.n_stable
        );
    }
    let _ = writeln!(
        out,
        "\nA model that holds accuracy on drift steps answers the *new* intent\n\
         immediately — the user does not need to keep refining the query."
    );
    out
}

/// Figure 5 feedback loop, end-to-end: serve → record interactions →
/// incremental refresh → the fed-back queries become servable.
pub fn feedback_loop(ctx: &Ctx) -> String {
    // clone the pipeline state we mutate (the shared ctx stays pristine)
    let cfg = ctx.scale.pipeline_config(0x0FEE_DBAC);
    let mut out_state = cosmo_core::run(cfg.clone());
    let before = out_state.kg.num_edges();

    // pick queries the KG has never seen and simulate purchases for them
    let mut feedback = Vec::new();
    for q in &out_state.world.queries {
        if out_state.kg.find_node(NodeKind::Query, &q.text).is_none() && !q.target_types.is_empty()
        {
            let p = out_state.world.products_of_type(q.target_types[0])[0];
            feedback.push((q.text.clone(), out_state.world.product(p).title.clone()));
            if feedback.len() >= 25 {
                break;
            }
        }
    }
    let update = apply_feedback(&mut out_state, &cfg, &feedback, 1);
    let servable_after = feedback
        .iter()
        .filter(|(q, _)| out_state.kg.find_node(NodeKind::Query, q).is_some())
        .count();
    format!(
        "fed back {} interactions ({} resolved, {} unresolved)\n\
         teacher generated {} candidates; {} survived the coarse filter\n\
         KG: {} → {} edges (+{} from the refresh)\n\
         {}/{} fed-back queries are now servable from the KG\n",
        feedback.len(),
        update.resolved_pairs,
        update.unresolved,
        update.candidates,
        update.kept,
        before,
        out_state.kg.num_edges(),
        update.edges,
        servable_after,
        feedback.len()
    )
}

/// Pipeline thread-scaling: run the identical Figure-2 pipeline at
/// 1/2/4/8 worker threads, assert every run produces the same output, and
/// report wall-clock speedups over the sequential (1-thread) run.
pub fn pipeline_scaling(ctx: &Ctx) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<8} {:>10} {:>9}", "threads", "wall (s)", "speedup");
    let mut base: Option<(f64, cosmo_core::PipelineReport, usize, usize)> = None;
    for threads in [1usize, 2, 4, 8] {
        let mut cfg = ctx.scale.pipeline_config(ctx.seed);
        cfg.threads = threads;
        let t0 = std::time::Instant::now();
        let run_out = cosmo_core::run(cfg);
        let secs = t0.elapsed().as_secs_f64();
        let (nodes, edges) = (run_out.kg.num_nodes(), run_out.kg.num_edges());
        if let Some((base_secs, report, n, e)) = &base {
            assert_eq!(
                report, &run_out.report,
                "pipeline report diverged at {threads} threads"
            );
            assert_eq!(
                (*n, *e),
                (nodes, edges),
                "KG size diverged at {threads} threads"
            );
            let _ = writeln!(
                out,
                "{:<8} {:>10.2} {:>8.2}x",
                threads,
                secs,
                base_secs / secs
            );
        } else {
            let _ = writeln!(out, "{:<8} {:>10.2} {:>8.2}x", threads, secs, 1.0);
            base = Some((secs, run_out.report.clone(), nodes, edges));
        }
    }
    let _ = writeln!(
        out,
        "\nEvery thread count produced the same report and KG; the fan-out\n\
         (per-task seeded generation + index-ordered merges) changes\n\
         wall-clock only."
    );
    out
}
