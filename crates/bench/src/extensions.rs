//! Extension experiments beyond the paper's published tables: the §4.2.4
//! future-work question (query-rewrite reduction), the Figure 5 feedback
//! loop exercised end-to-end, and the compute-engine scaling sweeps
//! (pipeline threads, nn kernels/trainers).

use crate::context::{Ctx, Scale};
use crate::output::write_bench_json;
use crate::rss::{peak_rss_bytes, reset_peak_rss};
use cosmo_core::{apply_feedback, generate_and_freeze};
use cosmo_kg::{
    BehaviorKind, Edge, KgSnapshot, KgSnapshotView, KnowledgeGraph, MappedSnapshot, NodeId,
    NodeKind, Relation, StreamOptions,
};
use cosmo_lm::TaskType;
use cosmo_sessrec::{
    attach_knowledge, drift_analysis, generate_sessions, CosmoGnn, GceGnn, Gru4Rec, SessionConfig,
    SessionModel, TrainConfig,
};
use cosmo_synth::scale::{head_text, mix64, ScaleConfig};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// §4.2.4 future work: drift-step vs stable-step accuracy per model —
/// the mechanism by which COSMO reduces query rewrites.
pub fn rewrites(ctx: &Ctx) -> String {
    let per_day = match ctx.scale {
        Scale::Tiny => 50,
        Scale::Small => 200,
        Scale::Full => 300,
    };
    let epochs = if ctx.scale == Scale::Tiny { 3 } else { 8 };
    // electronics: the drift-heavy domain (Table 7: 2.47 unique queries)
    let mut ds = generate_sessions(
        &ctx.out.world,
        &SessionConfig::electronics(0xD21F7, per_day),
    );
    let kg = &ctx.out.kg;
    let student = &ctx.student;
    attach_knowledge(&mut ds, |query| {
        let f = cosmo_serving::compute_features(query, kg, student);
        cosmo_serving::recommendation_view(&f, 128)
    });
    let cfg = TrainConfig {
        epochs,
        ..Default::default()
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>12} {:>13} {:>14} (electronics, Hits@10)",
        "Model", "drift steps", "stable steps", "drift penalty"
    );
    let models: Vec<Box<dyn SessionModel>> = vec![
        Box::new(Gru4Rec::new()),
        Box::new(GceGnn::new()),
        Box::new(CosmoGnn::new()),
    ];
    for mut m in models {
        m.fit(&ds, &cfg);
        let r = drift_analysis(&ds, m.as_ref(), 10, 6);
        let _ = writeln!(
            out,
            "{:<12} {:>11.1}% {:>12.1}% {:>13.1}pt   (n={}/{})",
            r.model,
            r.drift_hits,
            r.stable_hits,
            r.drift_penalty(),
            r.n_drift,
            r.n_stable
        );
    }
    let _ = writeln!(
        out,
        "\nA model that holds accuracy on drift steps answers the *new* intent\n\
         immediately — the user does not need to keep refining the query."
    );
    out
}

/// Figure 5 feedback loop, end-to-end: serve → record interactions →
/// incremental refresh → the fed-back queries become servable.
pub fn feedback_loop(ctx: &Ctx) -> String {
    // clone the pipeline state we mutate (the shared ctx stays pristine)
    let cfg = ctx.scale.pipeline_config(0x0FEE_DBAC);
    let mut out_state = cosmo_core::run(cfg.clone());
    let before = out_state.kg.num_edges();

    // pick queries the KG has never seen and simulate purchases for them
    let mut feedback = Vec::new();
    for q in &out_state.world.queries {
        if out_state.kg.find_node(NodeKind::Query, &q.text).is_none() && !q.target_types.is_empty()
        {
            let p = out_state.world.products_of_type(q.target_types[0])[0];
            feedback.push((q.text.clone(), out_state.world.product(p).title.clone()));
            if feedback.len() >= 25 {
                break;
            }
        }
    }
    let update = apply_feedback(&mut out_state, &cfg, &feedback, 1);
    let servable_after = feedback
        .iter()
        .filter(|(q, _)| out_state.kg.find_node(NodeKind::Query, q).is_some())
        .count();
    format!(
        "fed back {} interactions ({} resolved, {} unresolved)\n\
         teacher generated {} candidates; {} survived the coarse filter\n\
         KG: {} → {} edges (+{} from the refresh)\n\
         {}/{} fed-back queries are now servable from the KG\n",
        feedback.len(),
        update.resolved_pairs,
        update.unresolved,
        update.candidates,
        update.kept,
        before,
        out_state.kg.num_edges(),
        update.edges,
        servable_after,
        feedback.len()
    )
}

/// Pipeline thread-scaling: run the identical Figure-2 pipeline at
/// 1/2/4/8 worker threads, assert every run produces the same output, and
/// report wall-clock speedups over the sequential (1-thread) run.
pub fn pipeline_scaling(ctx: &Ctx) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<8} {:>10} {:>9}", "threads", "wall (s)", "speedup");
    let mut base: Option<(f64, cosmo_core::PipelineReport, usize, usize)> = None;
    for threads in [1usize, 2, 4, 8] {
        let mut cfg = ctx.scale.pipeline_config(ctx.seed);
        cfg.threads = threads;
        let t0 = std::time::Instant::now();
        let run_out = cosmo_core::run(cfg);
        let secs = t0.elapsed().as_secs_f64();
        let (nodes, edges) = (run_out.kg.num_nodes(), run_out.kg.num_edges());
        if let Some((base_secs, report, n, e)) = &base {
            assert_eq!(
                report, &run_out.report,
                "pipeline report diverged at {threads} threads"
            );
            assert_eq!(
                (*n, *e),
                (nodes, edges),
                "KG size diverged at {threads} threads"
            );
            let _ = writeln!(
                out,
                "{:<8} {:>10.2} {:>8.2}x",
                threads,
                secs,
                base_secs / secs
            );
        } else {
            let _ = writeln!(out, "{:<8} {:>10.2} {:>8.2}x", threads, secs, 1.0);
            base = Some((secs, run_out.report.clone(), nodes, edges));
        }
    }
    let _ = writeln!(
        out,
        "\nEvery thread count produced the same report and KG; the fan-out\n\
         (per-task seeded generation + index-ordered merges) changes\n\
         wall-clock only."
    );
    out
}

/// Deterministic pseudo-random matrix in [-1, 1] (pure arithmetic — the
/// same bits on every platform and build).
fn bench_matrix(rows: usize, cols: usize, salt: u64) -> cosmo_nn::Tensor {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| {
            let h = (i as u64 + salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 33) % 2001) as f32 / 1000.0 - 1.0
        })
        .collect();
    cosmo_nn::Tensor::from_vec(rows, cols, data)
}

/// Best-of-`reps` wall-clock seconds for `f`, after one untimed warmup
/// call (first-touch page faults and frequency ramp-up would otherwise
/// land in the first sample).
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// The seed commit's matmul, verbatim (i-k-j with the `a == 0.0` skip that
/// the library kernel has since dropped for IEEE correctness): this is the
/// "seed scalar" baseline the blocked-kernel speedup is measured against.
/// On finite inputs the skip only elides `acc + (±0·b)`, which never
/// changes the accumulator's bits, so it still matches the library bitwise.
fn matmul_seed_scalar(a: &cosmo_nn::Tensor, b: &cosmo_nn::Tensor) -> cosmo_nn::Tensor {
    let (n, k) = a.shape();
    let m = b.shape().1;
    let mut out = vec![0.0f32; n * m];
    for i in 0..n {
        let out_row = &mut out[i * m..(i + 1) * m];
        for kk in 0..k {
            let av = a.data()[i * k + kk];
            if av == 0.0 {
                continue;
            }
            let b_row = &b.data()[kk * m..(kk + 1) * m];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
    cosmo_nn::Tensor::from_vec(n, m, out)
}

/// Measured matmul GFLOP/s for one `[m×k]·[k×n]` shape.
#[derive(Debug, Clone, Copy)]
pub struct MatmulGflops {
    /// Seed-era scalar triple loop.
    pub reference: f64,
    /// Blocked no-FMA tier. Always the same kernel bytes-wise in every
    /// build: `matmul` at default features, `matmul_unfused` under
    /// `fast-math` (the feature leaves the unfused tier untouched
    /// precisely so one binary can measure both).
    pub blocked: f64,
    /// 4-thread row-partitioned production kernel.
    pub threaded4: f64,
    /// FMA reduction-tree production kernel — `Some` only when the
    /// `fast-math` feature is compiled in.
    pub fma: Option<f64>,
}

/// Measures every matmul tier at one shape. Panics unless each kernel is
/// bitwise identical to its configuration's scalar oracle: the seed loop
/// and blocked tier against the IEEE-exact reference loop in every build,
/// and (under `fast-math`) the fused production kernel against the
/// fixed-shape FMA reduction-tree reference.
pub fn matmul_gflops(m: usize, k: usize, n: usize) -> MatmulGflops {
    let a = bench_matrix(m, k, 1);
    let b = bench_matrix(k, n, 2);
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    // enough repetitions for a stable best-of measurement at every shape
    let reps = ((1u64 << 29) as f64 / flops).clamp(8.0, 200.0) as usize;
    let expect = a.matmul_reference(&b);
    assert_eq!(
        matmul_seed_scalar(&a, &b).data(),
        expect.data(),
        "seed loop diverged from the reference at {m}x{k}x{n}"
    );
    assert_eq!(
        a.matmul_unfused(&b).data(),
        expect.data(),
        "blocked no-FMA kernel diverged from the reference at {m}x{k}x{n}"
    );
    let pool = cosmo_exec::WorkerPool::new(4);
    assert_eq!(
        a.matmul_par(&b, &pool).data(),
        a.matmul(&b).data(),
        "threaded kernel diverged from the single-thread kernel at {m}x{k}x{n}"
    );
    #[cfg(not(feature = "fast-math"))]
    assert_eq!(
        a.matmul(&b).data(),
        expect.data(),
        "production kernel diverged from the reference at {m}x{k}x{n}"
    );
    #[cfg(feature = "fast-math")]
    assert_eq!(
        a.matmul(&b).data(),
        a.matmul_fma_reference(&b).data(),
        "fused kernel diverged from the FMA reduction-tree reference at {m}x{k}x{n}"
    );
    let t_ref = best_secs(reps, || {
        std::hint::black_box(matmul_seed_scalar(
            std::hint::black_box(&a),
            std::hint::black_box(&b),
        ));
    });
    let t_blk = best_secs(reps, || {
        std::hint::black_box(a.matmul_unfused(std::hint::black_box(&b)));
    });
    let t_par = best_secs(reps, || {
        std::hint::black_box(a.matmul_par(std::hint::black_box(&b), &pool));
    });
    #[cfg(feature = "fast-math")]
    let fma = Some(
        flops
            / best_secs(reps, || {
                std::hint::black_box(a.matmul(std::hint::black_box(&b)));
            })
            / 1e9,
    );
    #[cfg(not(feature = "fast-math"))]
    let fma = None;
    MatmulGflops {
        reference: flops / t_ref / 1e9,
        blocked: flops / t_blk / 1e9,
        threaded4: flops / t_par / 1e9,
        fma,
    }
}

/// Deterministic synthetic KG: `n_heads` query nodes, each with `deg`
/// intent edges drawn from a shared intent pool, relations cycling through
/// all 15 types (pure arithmetic — identical graph in every build).
fn scaling_kg(n_heads: usize, deg: usize) -> KnowledgeGraph {
    let mut kg = KnowledgeGraph::new();
    for i in 0..n_heads {
        let q = kg.intern_node(NodeKind::Query, &format!("query {i}"));
        for j in 0..deg {
            let t_idx = (i * 31 + j * 131) % n_heads;
            let t = kg.intern_node(NodeKind::Intention, &format!("intent {t_idx}"));
            kg.add_edge(Edge {
                head: q,
                relation: Relation::ALL[(i * 7 + j) % Relation::ALL.len()],
                tail: t,
                behavior: BehaviorKind::SearchBuy,
                category: (i % 23) as u8,
                plausibility: 0.5 + (j % 10) as f32 / 20.0,
                typicality: 0.3 + (i % 10) as f32 / 20.0,
                support: 1 + (j as u32 % 7),
            });
        }
    }
    kg
}

/// Rebuild a mutable store from a snapshot via the intern/merge write path —
/// the baseline that `KgSnapshot::load` is measured against (what a serving
/// host would have to do without the binary snapshot format).
fn rebuild_via_intern(snap: &KgSnapshot) -> KnowledgeGraph {
    let mut kg = KnowledgeGraph::new();
    // interning in id order reproduces the same dense ids, so edges
    // carry over without remapping
    for id in 0..snap.num_nodes() {
        let id = NodeId(id as u32);
        kg.intern_node(snap.node_kind(id), snap.node_text(id));
    }
    for e in snap.edges() {
        kg.add_edge(e.clone());
    }
    kg
}

/// Comparable fingerprint of serving features: every float by bit pattern.
type FeatureBits = (
    String,
    Vec<(Relation, String, u32)>,
    Vec<u32>,
    Option<String>,
);

fn feature_bits(f: &cosmo_serving::StructuredFeatures) -> FeatureBits {
    (
        f.query.clone(),
        f.intents
            .iter()
            .map(|(r, t, s)| (*r, t.clone(), s.to_bits()))
            .collect(),
        f.subcategory.iter().map(|x| x.to_bits()).collect(),
        f.strong_intent.clone(),
    )
}

/// Effort tier for [`kg_scaling`]: how far up the size axis to push the
/// streamed sharded world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KgTier {
    /// CI gate (`repro -- kg-scaling --smoke`): smallest in-memory size
    /// plus a tiny streamed world with forced spills — seconds.
    Smoke,
    /// `repro -- kg-scaling`: the full in-memory sweep plus tiny and mid
    /// streamed worlds.
    Default,
    /// `repro -- kg-scaling --paper`: adds the 6.3M-node / 29M-edge world
    /// of the paper's Table 1 (minutes of wall clock, ~2 GB peak RSS,
    /// ~3 GB of scratch disk).
    Paper,
}

/// KG read-path scaling: build vs freeze vs snapshot save/load wall-clock,
/// `tails_of_rel` lookups/sec over the hashmap adjacency vs the CSR slice,
/// and embeds/sec for the allocating `embed` vs scratch-reusing
/// `embed_into`, at three graph sizes. Also asserts the serving and nav
/// read paths produce bitwise-identical answers over the store and the
/// snapshot, then exercises the sharded streaming write path
/// ([`stream_row`]) up to the tier's largest world. Writes
/// `BENCH_kg.json` at the repo root and returns the human summary.
pub fn kg_scaling(ctx: &Ctx, tier: KgTier) -> String {
    let mut out = String::new();
    let mut json = String::from("{\n  \"sizes\": [\n");

    let _ = writeln!(
        out,
        "{:<12} {:>9} {:>10} {:>10} {:>10} {:>10} {:>11} {:>9} {:>11} {:>11} {:>8}",
        "graph",
        "edges",
        "build(s)",
        "freeze(s)",
        "load(s)",
        "load-spd",
        "v2 open(s)",
        "v2-spd",
        "map lk/s",
        "csr lk/s",
        "csr-spd"
    );
    let sizes: &[(usize, usize)] = match tier {
        KgTier::Smoke => &[(500, 8)],
        _ => &[(500, 8), (2000, 24), (8000, 64)],
    };
    let (mut csr_speedup_largest, mut load_speedup_largest) = (0.0f64, 0.0f64);
    let mut v2_speedup_largest = 0.0f64;
    for (si, &(n_heads, deg)) in sizes.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let kg = scaling_kg(n_heads, deg);
        let build_secs = t0.elapsed().as_secs_f64();

        let t0 = std::time::Instant::now();
        let snap = kg.freeze();
        let freeze_secs = t0.elapsed().as_secs_f64();

        let path = std::env::temp_dir().join(format!(
            "cosmo_bench_kg_{}_{}.snap",
            std::process::id(),
            n_heads
        ));
        let t0 = std::time::Instant::now();
        snap.save(&path).expect("snapshot save");
        let save_secs = t0.elapsed().as_secs_f64();
        let t0 = std::time::Instant::now();
        let loaded = KgSnapshot::load(&path).expect("snapshot load");
        let load_secs = t0.elapsed().as_secs_f64();
        assert_eq!(loaded, snap, "loaded snapshot differs at {n_heads} heads");
        let _ = std::fs::remove_file(&path);

        // v2 zero-copy open: mmap + structural validation, no Vec
        // materialisation — compare against the v1 full parse above
        let path_v2 = std::env::temp_dir().join(format!(
            "cosmo_bench_kg_{}_{}.kg2",
            std::process::id(),
            n_heads
        ));
        snap.save_v2(&path_v2).expect("v2 snapshot save");
        let v2_load_secs = best_secs(9, || {
            let mapped = cosmo_kg::MappedSnapshot::open(&path_v2).expect("v2 snapshot open");
            std::hint::black_box(mapped.num_edges());
        });
        let mapped = cosmo_kg::MappedSnapshot::open(&path_v2).expect("v2 snapshot open");
        assert_eq!(
            mapped.to_owned_snapshot(),
            snap,
            "v2 mapped snapshot differs at {n_heads} heads"
        );
        drop(mapped);
        let _ = std::fs::remove_file(&path_v2);
        let v2_load_speedup = load_secs / v2_load_secs;

        let t0 = std::time::Instant::now();
        let rebuilt = rebuild_via_intern(&snap);
        let rebuild_secs = t0.elapsed().as_secs_f64();
        assert_eq!(
            (rebuilt.num_nodes(), rebuilt.num_edges()),
            (snap.num_nodes(), snap.num_edges()),
            "rebuild diverged at {n_heads} heads"
        );
        let load_speedup = rebuild_secs / load_secs;

        // lookup probes: head × relation pairs spread over the whole graph
        let heads: Vec<NodeId> = (0..n_heads)
            .map(|i| {
                kg.find_node(NodeKind::Query, &format!("query {i}"))
                    .expect("probe head")
            })
            .collect();
        let probes: Vec<(NodeId, Relation)> = (0..2048u64)
            .map(|p| {
                let h = p.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (
                    heads[(h % n_heads as u64) as usize],
                    Relation::ALL[(h >> 32) as usize % Relation::ALL.len()],
                )
            })
            .collect();
        let t_map = best_secs(9, || {
            let mut acc = 0u64;
            for &(h, r) in &probes {
                for e in kg.tails_of_rel(h, r) {
                    acc += e.tail.0 as u64;
                }
            }
            std::hint::black_box(acc);
        });
        let t_csr = best_secs(9, || {
            let mut acc = 0u64;
            for &(h, r) in &probes {
                for e in snap.tails_of_rel_slice(h, r) {
                    acc += e.tail.0 as u64;
                }
            }
            std::hint::black_box(acc);
        });
        let (map_rate, csr_rate) = (probes.len() as f64 / t_map, probes.len() as f64 / t_csr);
        let csr_speedup = csr_rate / map_rate;
        if si + 1 == sizes.len() {
            csr_speedup_largest = csr_speedup;
            load_speedup_largest = load_speedup;
            v2_speedup_largest = v2_load_speedup;
        }

        let _ = writeln!(
            out,
            "{:<12} {:>9} {:>10.3} {:>10.3} {:>10.4} {:>9.1}x {:>11.6} {:>8.0}x {:>11.0} {:>11.0} {:>7.1}x",
            format!("{n_heads}x{deg}"),
            kg.num_edges(),
            build_secs,
            freeze_secs,
            load_secs,
            load_speedup,
            v2_load_secs,
            v2_load_speedup,
            map_rate,
            csr_rate,
            csr_speedup
        );
        let _ = write!(
            json,
            "    {{\"heads\": {n_heads}, \"degree\": {deg}, \"nodes\": {}, \"edges\": {}, \
             \"build_secs\": {build_secs:.6}, \"freeze_secs\": {freeze_secs:.6}, \
             \"save_secs\": {save_secs:.6}, \"load_secs\": {load_secs:.6}, \
             \"v2_load_secs\": {v2_load_secs:.6}, \"v2_load_speedup\": {v2_load_speedup:.3}, \
             \"rebuild_secs\": {rebuild_secs:.6}, \"load_speedup\": {load_speedup:.3}, \
             \"map_lookups_per_sec\": {map_rate:.0}, \"csr_lookups_per_sec\": {csr_rate:.0}, \
             \"csr_speedup\": {csr_speedup:.3}}}{}",
            kg.num_nodes(),
            kg.num_edges(),
            if si + 1 < sizes.len() { ",\n" } else { "\n" }
        );
    }
    json.push_str("  ],\n");

    // embedding fast path: allocating embed() vs scratch-reusing embed_into()
    let corpus: Vec<String> = (0..256)
        .map(|i| {
            format!(
                "sample product {i} for camping hiking outdoor use {}",
                i % 7
            )
        })
        .collect();
    let embedder = cosmo_text::HashedEmbedder::fit(&corpus, 64);
    let texts: Vec<String> = (0..512)
        .map(|i| format!("winter camping air mattress model {i} portable"))
        .collect();
    let t_alloc = best_secs(9, || {
        let mut acc = 0.0f32;
        for t in &texts {
            acc += embedder.embed(t)[0];
        }
        std::hint::black_box(acc);
    });
    let mut scratch = cosmo_text::EmbedScratch::default();
    let mut buf = vec![0.0f32; 64];
    let t_into = best_secs(9, || {
        let mut acc = 0.0f32;
        for t in &texts {
            embedder.embed_into(t, &mut scratch, &mut buf);
            acc += buf[0];
        }
        std::hint::black_box(acc);
    });
    let (embed_rate, into_rate) = (texts.len() as f64 / t_alloc, texts.len() as f64 / t_into);
    let _ = writeln!(
        out,
        "\nembedding: {:.0} embeds/s allocating, {:.0} embeds/s with scratch reuse ({:.2}x)",
        embed_rate,
        into_rate,
        into_rate / embed_rate
    );
    let _ = writeln!(
        json,
        "  \"embed\": {{\"embed_per_sec\": {embed_rate:.0}, \"embed_into_per_sec\": {into_rate:.0}, \
         \"speedup\": {:.3}}},",
        into_rate / embed_rate
    );

    // read-path identity: the pipeline's real KG served from the mutable
    // store and from the frozen snapshot must answer bitwise-identically
    let kg = &ctx.out.kg;
    let snap = kg.freeze();
    let mut serving_identical = true;
    for q in ctx.out.world.queries.iter().take(50) {
        let a = cosmo_serving::compute_features(&q.text, kg, &ctx.student);
        let b = cosmo_serving::compute_features(&q.text, &snap, &ctx.student);
        if feature_bits(&a) != feature_bits(&b) {
            serving_identical = false;
        }
    }
    assert!(serving_identical, "serving features diverged on snapshot");
    let store_engine = cosmo_nav::NavigationEngine::new(kg.clone());
    let snap_engine = cosmo_nav::NavigationEngine::new(kg.freeze());
    let mut nav_identical = true;
    for q in ctx.out.world.queries.iter().take(25) {
        let a = store_engine.interpret(&q.text, 5);
        let b = snap_engine.interpret(&q.text, 5);
        if a != b {
            nav_identical = false;
        }
        for s in &a {
            if store_engine.products_for_intent(s.label(), 8)
                != snap_engine.products_for_intent(s.label(), 8)
            {
                nav_identical = false;
            }
        }
    }
    assert!(nav_identical, "navigation diverged on snapshot");
    let _ = writeln!(
        out,
        "serving + navigation answers over the snapshot: bitwise-identical \
         to the mutable store"
    );

    // ---- streamed sharded world: the paper-scale write path ----
    // seed fixed independently of ctx so every tier regenerates the same
    // worlds and the committed BENCH rows are comparable across runs
    let stream_rows: Vec<(&str, ScaleConfig, usize)> = match tier {
        KgTier::Smoke => vec![("tiny", ScaleConfig::tiny(0x5CA1E), 4_096)],
        KgTier::Default => vec![
            ("tiny", ScaleConfig::tiny(0x5CA1E), 4_096),
            ("mid", ScaleConfig::mid(0x5CA1E), 200_000),
        ],
        KgTier::Paper => vec![
            ("tiny", ScaleConfig::tiny(0x5CA1E), 4_096),
            ("mid", ScaleConfig::mid(0x5CA1E), 200_000),
            ("paper", ScaleConfig::paper(0x5CA1E), 2_000_000),
        ],
    };
    let threads = cosmo_exec::WorkerPool::available_parallelism();
    let _ = writeln!(
        out,
        "\nstreamed sharded generation -> v2 file ({} worker threads):",
        threads
    );
    let _ = writeln!(
        out,
        "{:<7} {:>10} {:>10} {:>5} {:>9} {:>9} {:>9} {:>11} {:>9} {:>9} {:>10} {:>8} {:>11}",
        "world",
        "nodes",
        "edges",
        "runs",
        "spill MB",
        "file MB",
        "frz (s)",
        "edges/s",
        "peak MB",
        "rss/file",
        "v2 op(s)",
        "v1/v2",
        "csr lk/s"
    );
    json.push_str("  \"stream\": [\n");
    for (i, (label, cfg, buffer)) in stream_rows.iter().enumerate() {
        let (human, row_json) = stream_row(ctx, cfg, label, *buffer, threads);
        out.push_str(&human);
        json.push_str(&row_json);
        json.push_str(if i + 1 < stream_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    let tier_name = match tier {
        KgTier::Smoke => "smoke",
        KgTier::Default => "default",
        KgTier::Paper => "paper",
    };

    let _ = write!(
        json,
        "  \"stream_tier\": \"{tier_name}\",\n  \
         \"csr_speedup_largest\": {csr_speedup_largest:.3},\n  \
         \"load_speedup_largest\": {load_speedup_largest:.3},\n  \
         \"v2_load_speedup_largest\": {v2_speedup_largest:.3},\n  \
         \"serving_identical\": {serving_identical},\n  \
         \"nav_identical\": {nav_identical}\n}}\n"
    );
    let _ = writeln!(out, "\n{}", write_bench_json("BENCH_kg.json", &json));
    out
}

/// Replay the streamed world's shard sequence through the mutable store —
/// the semantics oracle every streamed measurement is checked against.
fn replay_store(cfg: &ScaleConfig) -> KnowledgeGraph {
    let mut kg = KnowledgeGraph::new();
    for shard in 0..cfg.num_shards() {
        let o = cosmo_synth::generate_shard(cfg, shard);
        let ids: Vec<NodeId> = o
            .nodes
            .iter()
            .map(|(kind, text)| kg.intern_node(*kind, text))
            .collect();
        for e in &o.edges {
            kg.add_edge(Edge {
                head: ids[e.head as usize],
                relation: e.relation,
                tail: ids[e.tail as usize],
                behavior: e.behavior,
                category: e.category,
                plausibility: e.plausibility,
                typicality: e.typicality,
                support: e.support,
            });
        }
    }
    kg
}

/// One streamed-world row: sharded parallel generation stream-frozen to a
/// v2 file with peak-RSS accounting, then the read path measured over the
/// mapped file at that scale. Small worlds are checked byte-for-byte
/// against the store freeze; the paper world (where an in-memory freeze is
/// exactly what we refuse to pay for twice) is checked by replaying the
/// store and asserting serving/nav/HTTP answers are bitwise identical.
/// Returns `(human table lines, json row)`.
fn stream_row(
    ctx: &Ctx,
    cfg: &ScaleConfig,
    label: &str,
    buffer_edges: usize,
    threads: usize,
) -> (String, String) {
    let mut human = String::new();
    let paper_checks = label == "paper";
    let path = std::env::temp_dir().join(format!(
        "cosmo_bench_stream_{}_{label}.kg2",
        std::process::id()
    ));

    // window the kernel's RSS high-water mark around the freeze alone
    let rss_windowed = reset_peak_rss();
    let t0 = std::time::Instant::now();
    let report = generate_and_freeze(
        cfg,
        threads,
        &path,
        StreamOptions {
            buffer_edges,
            spill_dir: None,
        },
    )
    .expect("streamed freeze");
    let freeze_secs = t0.elapsed().as_secs_f64();
    let peak_rss = peak_rss_bytes();
    let (shards, ran_threads) = (report.shards, report.threads);
    let stats = report.stats;
    let mb = |b: u64| b as f64 / (1u64 << 20) as f64;
    let edges_per_sec = stats.edges as f64 / freeze_secs;
    let rss_over_file = peak_rss.map(|p| p as f64 / stats.file_bytes as f64);
    if paper_checks && rss_windowed {
        let ratio = rss_over_file.expect("probe read VmHWM after windowing");
        assert!(
            ratio <= 2.0,
            "streaming freeze peaked at {ratio:.2}x the snapshot size — the \
             spill/merge path is supposed to cap RSS at 2x"
        );
    }

    // structural mmap open vs the v1-equivalent full parse, at this scale
    let big = stats.edges > 4_000_000;
    let reps = if big { 3 } else { 9 };
    let v2_open_secs = best_secs(reps, || {
        let m = MappedSnapshot::open(&path).expect("v2 open");
        std::hint::black_box(m.num_edges());
    });
    let mapped = MappedSnapshot::open(&path).expect("v2 open");
    let path_v1 = path.with_extension("snap");
    mapped
        .to_owned_snapshot()
        .save(&path_v1)
        .expect("v1-equivalent save");
    let v1_load_secs = best_secs(if big { 2 } else { 9 }, || {
        let s = KgSnapshot::load(&path_v1).expect("v1 load");
        std::hint::black_box(s.num_edges());
    });
    let _ = std::fs::remove_file(&path_v1);
    let v1_over_v2 = v1_load_secs / v2_open_secs;
    if paper_checks {
        assert!(
            v1_over_v2 >= 10.0,
            "v2 structural open is only {v1_over_v2:.1}x faster than the \
             v1-equivalent parse at paper scale (target: >= 10x)"
        );
    }

    // CSR adjacency + node-lookup throughput over the mapped file
    let n_heads = cfg.total_heads();
    let probes: Vec<(NodeId, Relation)> = (0..2048u64)
        .map(|p| {
            let h = mix64(p ^ 0xBEEF_CAFE) % n_heads;
            let (kind, text) = head_text(cfg, h);
            let id = mapped
                .find_node(kind, &text)
                .expect("generated head resolves");
            (id, Relation::ALL[(p % Relation::ALL.len() as u64) as usize])
        })
        .collect();
    let t_csr = best_secs(reps, || {
        let mut acc = 0u64;
        for &(h, r) in &probes {
            for e in mapped.tails_of_rel_slice(h, r) {
                acc += e.tail.0 as u64;
            }
        }
        std::hint::black_box(acc);
    });
    let csr_rate = probes.len() as f64 / t_csr;
    let lookup_texts: Vec<(NodeKind, String)> = (0..512u64)
        .map(|p| head_text(cfg, mix64(p ^ 0xF00D) % n_heads))
        .collect();
    let t_find = best_secs(reps, || {
        let mut found = 0usize;
        for (kind, text) in &lookup_texts {
            found += usize::from(mapped.find_node(*kind, text).is_some());
        }
        assert_eq!(found, lookup_texts.len());
    });
    let find_rate = lookup_texts.len() as f64 / t_find;

    let _ = writeln!(
        human,
        "{:<7} {:>10} {:>10} {:>5} {:>9.1} {:>9.1} {:>9.2} {:>11.0} {:>9} {:>9} {:>10.4} {:>7.0}x {:>11.0}",
        label,
        stats.nodes,
        stats.edges,
        stats.spill_runs,
        mb(stats.spilled_bytes),
        mb(stats.file_bytes),
        freeze_secs,
        edges_per_sec,
        peak_rss.map_or("n/a".into(), |p| format!("{:.0}", mb(p))),
        rss_over_file.map_or("n/a".into(), |r| format!("{r:.2}x")),
        v2_open_secs,
        v1_over_v2,
        csr_rate
    );

    // identity vs the mutable store
    let (mut serving_identical, mut nav_identical, mut http_identical) = (true, true, true);
    let mut http_rps = 0.0f64;
    let byte_identical: &str;
    if paper_checks {
        byte_identical = "null"; // not re-frozen in memory at this scale
        let store = replay_store(cfg);
        assert_eq!(
            (store.num_nodes(), store.num_edges()),
            (stats.nodes, stats.edges),
            "store replay disagrees with the streamed writer on graph size"
        );
        let sample: Vec<String> = (0..200u64)
            .map(|p| head_text(cfg, mix64(p ^ 0x51DE) % n_heads).1)
            .collect();
        for text in &sample {
            let a = cosmo_serving::compute_features(text, &store, &ctx.student);
            let b = cosmo_serving::compute_features(text, &mapped, &ctx.student);
            if feature_bits(&a) != feature_bits(&b) {
                serving_identical = false;
            }
        }
        assert!(
            serving_identical,
            "serving features diverged between store and mapped at paper scale"
        );

        // HTTP identity: two identical systems over the same file — one
        // behind the real server, one driven in process — fed the same
        // queries in the same order must answer byte-for-byte alike
        let wire_view = KgSnapshotView::open(&path).expect("serving view open");
        let local_view = KgSnapshotView::open(&path).expect("serving view open");
        let wire_system = Arc::new(
            cosmo_serving::ServingSystem::builder()
                .view(wire_view)
                .lm(ctx.student.clone())
                .build()
                .expect("default serving config is valid"),
        );
        let local_system = cosmo_serving::ServingSystem::builder()
            .view(local_view)
            .lm(ctx.student.clone())
            .build()
            .expect("default serving config is valid");
        let server = cosmo_http::HttpServer::start(
            Arc::clone(&wire_system),
            cosmo_http::ServerConfig {
                conn_workers: 2,
                conn_backlog: 64,
                admission: cosmo_serving::AdmissionPolicy::RejectNew,
                ..cosmo_http::ServerConfig::default()
            },
        )
        .expect("bind ephemeral port");
        let addr = server.addr();
        let mut client = cosmo_http::HttpClient::connect(addr).expect("client connect");
        for text in sample.iter().take(64) {
            let req = cosmo_serving::ServeRequest::new(text.clone());
            let wire = client
                .request("POST", "/v1/serve-intents", &req.to_json())
                .expect("serve request");
            let local = local_system.handle(&req).to_json();
            if wire.status != 200 || wire.body != local {
                http_identical = false;
            }
        }
        assert!(
            http_identical,
            "HTTP bodies diverged from the in-process system at paper scale"
        );
        let bodies: Vec<String> = sample
            .iter()
            .take(128)
            .map(|t| cosmo_serving::ServeRequest::new(t.clone()).to_json())
            .collect();
        let load = cosmo_http::run_load(
            addr,
            &cosmo_http::LoadConfig {
                concurrency: 4,
                duration: Duration::from_secs(2),
                bodies,
            },
        );
        http_rps = load.throughput_rps;
        server.shutdown();
        let _ = writeln!(
            human,
            "        paper: serving + HTTP answers bitwise-identical to the \
             store ({} wire checks, {:.0} req/s under load)",
            64, http_rps
        );

        // navigation identity last: the engines take the graphs by value
        let store_engine = cosmo_nav::NavigationEngine::new(store);
        let mapped_engine =
            cosmo_nav::NavigationEngine::new(MappedSnapshot::open(&path).expect("v2 open"));
        for text in sample.iter().take(50) {
            if store_engine.interpret(text, 5) != mapped_engine.interpret(text, 5) {
                nav_identical = false;
            }
        }
        assert!(
            nav_identical,
            "navigation diverged between store and mapped at paper scale"
        );
    } else {
        // small enough to pay for the in-memory freeze: demand the
        // strongest possible statement — the exact same bytes (which
        // subsumes the serving/nav/HTTP identity asserted at paper scale)
        let streamed = std::fs::read(&path).expect("read streamed file");
        let store = replay_store(cfg);
        assert!(
            streamed == store.freeze().to_bytes_v2(),
            "streamed {label} world differs from the store freeze bytes"
        );
        byte_identical = "true";
    }
    drop(mapped);
    let _ = std::fs::remove_file(&path);

    let json = format!(
        "    {{\"label\": \"{label}\", \"nodes\": {}, \"edges\": {}, \"raw_edges\": {}, \
         \"shards\": {}, \"threads\": {}, \"buffer_edges\": {buffer_edges}, \
         \"spill_runs\": {}, \"spilled_mb\": {:.1}, \"file_mb\": {:.1}, \
         \"generate_freeze_secs\": {freeze_secs:.3}, \"edges_per_sec\": {edges_per_sec:.0}, \
         \"peak_rss_mb\": {}, \"rss_over_file\": {}, \
         \"v2_open_secs\": {v2_open_secs:.6}, \"v1_load_secs\": {v1_load_secs:.6}, \
         \"v1_over_v2_open\": {v1_over_v2:.2}, \"csr_lookups_per_sec\": {csr_rate:.0}, \
         \"find_node_per_sec\": {find_rate:.0}, \"byte_identical_to_store\": {byte_identical}, \
         \"serving_identical\": {serving_identical}, \"nav_identical\": {nav_identical}, \
         \"http_identical\": {http_identical}, \"http_rps\": {http_rps:.1}}}",
        stats.nodes,
        stats.edges,
        stats.raw_edges,
        shards,
        ran_threads,
        stats.spill_runs,
        mb(stats.spilled_bytes),
        mb(stats.file_bytes),
        peak_rss.map_or("null".into(), |p| format!("{:.1}", mb(p))),
        rss_over_file.map_or("null".into(), |r| format!("{r:.3}")),
    );
    (human, json)
}

/// Deterministic synthetic critic training set (no RNG: identical bits in
/// every build).
fn synthetic_critic_examples(n: usize, buckets: usize) -> Vec<cosmo_core::CriticExample> {
    (0..n)
        .map(|i| {
            let features: Vec<usize> = (0..24)
                .map(|j| {
                    let h = ((i * 31 + j * 7 + 3) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    (h >> 40) as usize % buckets
                })
                .collect();
            cosmo_core::CriticExample {
                features,
                plausible: Some(i % 3 != 0),
                typical: if i % 5 == 0 { None } else { Some(i % 2 == 0) },
            }
        })
        .collect()
}

/// cosmo-nn compute-engine scaling: matmul GFLOP/s (seed reference loop vs
/// blocked kernel vs 4-thread row-partitioned kernel, plus the FMA
/// reduction-tree tier when the `fast-math` feature is compiled in) across
/// shapes, batched student inference against the per-item path, and
/// per-epoch critic-training wall clock at 1/2/4 worker threads with a
/// byte-identity assertion across thread counts. Writes `BENCH_nn.json`
/// at the repo root and returns the human-readable summary.
pub fn nn_scaling(ctx: &Ctx) -> String {
    let fast_math = cfg!(feature = "fast-math");
    let mut out = String::new();
    let mut json = String::from("{\n  \"matmul\": [\n");

    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>10} {:>12} {:>9} {:>9}",
        "shape", "ref GF/s", "blocked", "threaded(4)", "speedup", "fma"
    );
    let shapes = [
        (64, 64, 64),
        (128, 128, 128),
        (256, 256, 256),
        (96, 512, 160),
    ];
    let mut blocked_speedup_256 = 0.0f64;
    let mut fma_speedup_256 = 0.0f64;
    for (i, &(m, k, n)) in shapes.iter().enumerate() {
        let g = matmul_gflops(m, k, n);
        let speedup = g.blocked / g.reference;
        if (m, k, n) == (256, 256, 256) {
            blocked_speedup_256 = speedup;
            if let Some(f) = g.fma {
                fma_speedup_256 = f / g.blocked;
            }
        }
        let _ = writeln!(
            out,
            "{:<14} {:>10.2} {:>10.2} {:>12.2} {:>8.2}x {:>9}",
            format!("{m}x{k}x{n}"),
            g.reference,
            g.blocked,
            g.threaded4,
            speedup,
            match g.fma {
                Some(f) => format!("{f:.2}"),
                None => "-".to_string(),
            }
        );
        let fma_fields = match g.fma {
            Some(f) => format!(
                ", \"fma_gflops\": {f:.3}, \"fma_speedup_vs_blocked\": {:.3}",
                f / g.blocked
            ),
            None => String::new(),
        };
        let _ = write!(
            json,
            "    {{\"m\": {m}, \"k\": {k}, \"n\": {n}, \"reference_gflops\": {:.3}, \
             \"blocked_gflops\": {:.3}, \"threaded4_gflops\": {:.3}, \
             \"blocked_speedup\": {speedup:.3}{fma_fields}}}{}",
            g.reference,
            g.blocked,
            g.threaded4,
            if i + 1 < shapes.len() { ",\n" } else { "\n" }
        );
    }
    json.push_str("  ],\n  \"student_predict\": [\n");

    // Batched student inference vs the per-item pooled-tape path — the same
    // trained student every other experiment serves, probed with synthetic
    // relevance prompts. The two paths are bitwise identical (locked by
    // tests in cosmo-lm); only throughput differs.
    let lm = &*ctx.student;
    let prompts: Vec<String> = (0..256)
        .map(|i| {
            format!("is the product relevant to the query: camping trip {i} | acme tent model {i}")
        })
        .collect();
    let prompt_refs: Vec<&str> = prompts.iter().map(String::as_str).collect();
    let _ = writeln!(
        out,
        "\n{:<8} {:>16} {:>16} {:>9}  (student relevance head, items/s)",
        "batch", "per-item", "batched", "speedup"
    );
    let mut predict_batch_speedup_256 = 0.0f64;
    let batches = [1usize, 32, 256];
    for (i, &batch) in batches.iter().enumerate() {
        let slice = &prompt_refs[..batch];
        let per_item: Vec<f32> = slice
            .iter()
            .map(|q| lm.predict(TaskType::RelevancePrediction, q))
            .collect();
        let batched = lm.predict_batch(TaskType::RelevancePrediction, slice);
        assert_eq!(
            per_item.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            batched.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "predict_batch diverged from per-item predict at batch {batch}"
        );
        let reps = (2048 / batch).clamp(8, 512);
        let t_item = best_secs(reps, || {
            for q in slice {
                std::hint::black_box(
                    lm.predict(TaskType::RelevancePrediction, std::hint::black_box(q)),
                );
            }
        });
        let t_batch = best_secs(reps, || {
            std::hint::black_box(
                lm.predict_batch(TaskType::RelevancePrediction, std::hint::black_box(slice)),
            );
        });
        let items_per_s = batch as f64 / t_item;
        let batched_per_s = batch as f64 / t_batch;
        let speedup = t_item / t_batch;
        if batch == 256 {
            predict_batch_speedup_256 = speedup;
        }
        let _ = writeln!(
            out,
            "{:<8} {:>16.0} {:>16.0} {:>8.2}x",
            batch, items_per_s, batched_per_s, speedup
        );
        let _ = write!(
            json,
            "    {{\"batch\": {batch}, \"per_item_per_s\": {items_per_s:.1}, \
             \"batched_per_s\": {batched_per_s:.1}, \"speedup\": {speedup:.3}}}{}",
            if i + 1 < batches.len() { ",\n" } else { "\n" }
        );
    }
    json.push_str("  ],\n  \"training\": [\n");

    // sized so each batch carries 8 microbatch shards of real gradient
    // work: at the old 256-example/dim-32 load the per-shard compute was
    // smaller than the fan-out overhead and 4 threads bought only ~1.04x
    let examples = synthetic_critic_examples(8192, 1 << 13);
    let epochs = 2usize;
    let cores = cosmo_exec::WorkerPool::available_parallelism();
    let _ = writeln!(
        out,
        "\n{:<8} {:>14} {:>9}  (critic, {} examples, dim 64, batch 256, \
         microbatch 32; {} cores available)",
        "threads",
        "epoch (ms)",
        "speedup",
        examples.len(),
        cores
    );
    let mut base: Option<(f64, cosmo_core::CriticReport)> = None;
    let threads_sweep = [1usize, 2, 4];
    for (i, &threads) in threads_sweep.iter().enumerate() {
        let cfg = cosmo_core::CriticConfig {
            buckets: 1 << 13,
            dim: 64,
            epochs,
            batch: 256,
            threads,
            microbatch: 32,
            ..Default::default()
        };
        let mut critic = cosmo_core::Critic::new(cfg);
        let t0 = std::time::Instant::now();
        let report = critic.train(&examples);
        let epoch_secs = t0.elapsed().as_secs_f64() / epochs as f64;
        let speedup = match &base {
            Some((base_secs, base_report)) => {
                assert_eq!(
                    base_report, &report,
                    "critic training diverged at {threads} threads"
                );
                base_secs / epoch_secs
            }
            None => {
                base = Some((epoch_secs, report.clone()));
                1.0
            }
        };
        let _ = writeln!(
            out,
            "{:<8} {:>14.2} {:>8.2}x",
            threads,
            epoch_secs * 1e3,
            speedup
        );
        let _ = write!(
            json,
            "    {{\"threads\": {threads}, \"epoch_secs\": {epoch_secs:.6}, \
             \"speedup\": {speedup:.3}}}{}",
            if i + 1 < threads_sweep.len() {
                ",\n"
            } else {
                "\n"
            }
        );
    }
    let fma_field = if fast_math {
        format!("  \"fma_speedup_256\": {fma_speedup_256:.3},\n")
    } else {
        String::new()
    };
    let _ = write!(
        json,
        "  ],\n  \"training_examples\": {},\n  \"training_dim\": 64,\n  \
         \"available_cores\": {cores},\n  \
         \"fast_math\": {fast_math},\n\
         {fma_field}  \
         \"blocked_speedup_256\": {blocked_speedup_256:.3},\n  \
         \"predict_batch_speedup_256\": {predict_batch_speedup_256:.3},\n  \
         \"identical_across_threads\": true\n}}\n",
        examples.len()
    );
    let _ = writeln!(out, "\n{}", write_bench_json("BENCH_nn.json", &json));
    let _ = writeln!(
        out,
        "Every kernel and every thread count produced identical bytes:\n\
         blocked/threaded matmuls keep the per-row accumulation order of\n\
         the seed loop, and trainer shards merge in fixed index order."
    );
    if cores < 2 {
        let _ = writeln!(
            out,
            "note: only {cores} core(s) visible to this run — thread-count\n\
             speedups cannot materialise here; the sweep still proves the\n\
             sharded trainer is bit-identical at every thread count."
        );
    }
    out
}
