//! Benchmark artifact paths: every `BENCH_*.json` lands at the repo root
//! no matter what directory the harness was launched from.
//!
//! `cargo run -p cosmo-bench` from a crate subdirectory used to scatter
//! artifacts wherever the cwd happened to be (PR 7 accidentally committed
//! `crates/bench/BENCH_serve.json` that way). The repo root is known at
//! compile time — this crate's manifest dir is `crates/bench` — so resolve
//! against that instead of the cwd.

use std::path::{Path, PathBuf};

/// Absolute path for a benchmark artifact named `name` (e.g.
/// `BENCH_kg.json`), anchored at the repository root.
///
/// `COSMO_BENCH_DIR` overrides the destination directory (useful for CI
/// runs that collect artifacts elsewhere). If the compile-time repo root
/// no longer exists (the binary moved to another machine), falls back to
/// the cwd rather than failing.
pub fn bench_output_path(name: &str) -> PathBuf {
    if let Some(dir) = std::env::var_os("COSMO_BENCH_DIR") {
        return PathBuf::from(dir).join(name);
    }
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    match root.canonicalize() {
        Ok(root) => root.join(name),
        Err(_) => PathBuf::from(name),
    }
}

/// Write a benchmark artifact via [`bench_output_path`]; returns the
/// one-line status message the experiment appends to its summary.
pub fn write_bench_json(name: &str, contents: &str) -> String {
    let path = bench_output_path(name);
    match std::fs::write(&path, contents) {
        Ok(()) => format!("wrote {}", path.display()),
        Err(e) => format!("could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_to_repo_root_not_cwd() {
        let p = bench_output_path("BENCH_test.json");
        // the repo root is the directory holding the workspace manifest
        assert!(
            p.parent().unwrap().join("Cargo.toml").is_file(),
            "expected a workspace root, got {}",
            p.display()
        );
        assert!(p.ends_with("BENCH_test.json"));
    }
}
