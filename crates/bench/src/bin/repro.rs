//! Regenerate the paper's tables and figures.
//!
//! Usage:
//!   repro -- <experiment|all|ablations> [--scale tiny|small|full] [--seed N]

use cosmo_bench::{build_context, run_experiment, Scale, EXPERIMENTS};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut seed = 0x000C_0530_u64;
    let mut smoke = false;
    let mut swap = false;
    let mut paper = false;
    let mut targets: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Scale::parse(args.get(i).map(|s| s.as_str()).unwrap_or(""))
                    .expect("--scale tiny|small|full");
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed <u64>");
            }
            "--smoke" => smoke = true,
            "--swap" => swap = true,
            "--paper" => paper = true,
            other => targets.push(other.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() {
        eprintln!(
            "usage: repro <experiment|all|ablations> [--scale tiny|small|full] [--smoke] [--swap] [--paper]"
        );
        eprintln!("experiments: {}", EXPERIMENTS.join(", "));
        std::process::exit(2);
    }
    if targets == ["all"] {
        targets = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
        targets.push("ablations".to_string());
    }

    let t0 = Instant::now();
    eprintln!("[repro] building context at {scale:?} scale (seed {seed:#x})...");
    let ctx = build_context(scale, seed);
    eprintln!(
        "[repro] context ready in {:.1}s: KG {} nodes / {} edges / {} relations; {} instructions; student gen-top1 {:.1}%",
        t0.elapsed().as_secs_f64(),
        ctx.out.kg.num_nodes(),
        ctx.out.kg.num_edges(),
        ctx.out.kg.num_relations(),
        ctx.instructions.len(),
        ctx.student_report.gen_top1 * 100.0
    );

    for t in &targets {
        let t1 = Instant::now();
        // two experiments have mode switches. `serve`: --smoke is the
        // seconds-long CI gate, --swap exercises hot snapshot reloads
        // under live traffic, the default is the full saturation sweep.
        // `kg-scaling`: --smoke is the CI gate, --paper streams the full
        // 6.3M-node / 29M-edge world (minutes; ~3 GB of scratch disk).
        let result = if t == "serve" && swap {
            Some(cosmo_bench::serve::serve_swap(&ctx, smoke))
        } else if t == "serve" {
            Some(cosmo_bench::serve::serve(&ctx, smoke))
        } else if t == "kg-scaling" {
            let tier = if paper {
                cosmo_bench::extensions::KgTier::Paper
            } else if smoke {
                cosmo_bench::extensions::KgTier::Smoke
            } else {
                cosmo_bench::extensions::KgTier::Default
            };
            Some(cosmo_bench::extensions::kg_scaling(&ctx, tier))
        } else {
            run_experiment(&ctx, t)
        };
        match result {
            Some(output) => {
                println!("\n================ {t} ================");
                println!("{output}");
                eprintln!("[repro] {t} done in {:.1}s", t1.elapsed().as_secs_f64());
            }
            None => eprintln!("[repro] unknown experiment: {t}"),
        }
    }
}
