//! Pipeline-stage throughput: teacher generation, coarse filtering and
//! critic scoring — the offline stages that process millions of
//! candidates in the paper's production runs.

use cosmo_core::{features, CoarseFilter, Critic, CriticConfig, CriticExample, FilterConfig};
use cosmo_synth::{corpus, BehaviorConfig, BehaviorLog, World, WorldConfig};
use cosmo_teacher::{Candidate, Teacher, TeacherConfig};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

struct Fixture {
    world: World,
    candidates: Vec<Candidate>,
    filter: CoarseFilter,
}

fn fixture() -> Fixture {
    let world = World::generate(WorldConfig::tiny(201));
    let log = BehaviorLog::generate(&world, &BehaviorConfig::tiny(202));
    let mut teacher = Teacher::new(&world, TeacherConfig::default());
    let mut candidates = Vec::new();
    for sb in log.search_buys.iter().take(500) {
        candidates.push(teacher.generate_search_buy(sb.query, sb.product));
    }
    for cb in log.cobuys.iter().take(500) {
        candidates.push(teacher.generate_cobuy(cb.p1, cb.p2));
    }
    let filter = CoarseFilter::fit(&corpus(&world), FilterConfig::default());
    Fixture {
        world,
        candidates,
        filter,
    }
}

fn bench_generation(c: &mut Criterion) {
    let world = World::generate(WorldConfig::tiny(203));
    let log = BehaviorLog::generate(&world, &BehaviorConfig::tiny(204));
    let mut teacher = Teacher::new(&world, TeacherConfig::default());
    let sb = log.search_buys[0];
    c.bench_function("pipeline/teacher_generate", |b| {
        b.iter(|| teacher.generate_search_buy(sb.query, sb.product).raw.len())
    });
}

fn bench_filter(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(f.candidates.len() as u64));
    g.bench_function("coarse_filter_1k", |b| {
        b.iter_batched(
            || f.candidates.clone(),
            |cands| f.filter.filter(&f.world, cands).len(),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_critic(c: &mut Criterion) {
    let f = fixture();
    let cfg = CriticConfig {
        epochs: 4,
        ..CriticConfig::default()
    };
    let examples: Vec<CriticExample> = f
        .candidates
        .iter()
        .enumerate()
        .map(|(i, cand)| CriticExample {
            features: features(&f.world, cand, "used for walking the dog", cfg.buckets),
            plausible: Some(i % 2 == 0),
            typical: Some(i % 3 == 0),
        })
        .collect();
    let mut critic = Critic::new(cfg.clone());
    critic.train(&examples);
    let batch: Vec<Vec<usize>> = examples
        .iter()
        .take(256)
        .map(|e| e.features.clone())
        .collect();
    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Elements(batch.len() as u64));
    g.bench_function("critic_score_256", |b| {
        b.iter(|| critic.score_batch(&batch).len())
    });
    g.finish();
}

criterion_group!(benches, bench_generation, bench_filter, bench_critic);
criterion_main!(benches);
