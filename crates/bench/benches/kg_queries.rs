//! Knowledge-graph store benchmarks: the serving path's lookups (hashmap
//! adjacency vs frozen CSR snapshot), the navigation hierarchy build, and
//! snapshot/JSON (de)serialisation.

use cosmo_kg::{
    BehaviorKind, Edge, IntentHierarchy, KgSnapshot, KnowledgeGraph, NodeKind, Relation,
};
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

fn build_graph(n_heads: usize, tails_per_head: usize) -> KnowledgeGraph {
    let mut kg = KnowledgeGraph::new();
    for h in 0..n_heads {
        let head = kg.intern_node(NodeKind::Query, &format!("query {h}"));
        for t in 0..tails_per_head {
            let tail = kg.intern_node(
                NodeKind::Intention,
                &format!("intent {} phrase {}", (h + t) % 97, t % 13),
            );
            kg.add_edge(Edge {
                head,
                relation: Relation::ALL[(h + t) % 15],
                tail,
                behavior: BehaviorKind::SearchBuy,
                category: (h % 18) as u8,
                plausibility: 0.9,
                typicality: (t % 10) as f32 / 10.0,
                support: 1 + (t % 5) as u32,
            });
        }
    }
    kg
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("kg/build_2k_edges", |b| b.iter(|| build_graph(200, 10)));
}

fn bench_lookup(c: &mut Criterion) {
    let kg = build_graph(2_000, 12);
    let node = kg.find_node(NodeKind::Query, "query 1000").unwrap();
    c.bench_function("kg/find_node", |b| {
        b.iter(|| kg.find_node(NodeKind::Query, black_box("query 1234")))
    });
    c.bench_function("kg/top_intents_k5", |b| {
        b.iter(|| kg.top_intents(black_box(node), 5).len())
    });
    c.bench_function("kg/tails_of_rel", |b| {
        b.iter(|| {
            kg.tails_of_rel(black_box(node), Relation::CapableOf)
                .count()
        })
    });

    // the same lookups over the frozen CSR snapshot
    let snap = kg.freeze();
    c.bench_function("kg/snapshot_find_node", |b| {
        b.iter(|| snap.find_node(NodeKind::Query, black_box("query 1234")))
    });
    c.bench_function("kg/snapshot_top_intents_k5", |b| {
        b.iter(|| cosmo_kg::GraphView::top_intents(&snap, black_box(node), 5).len())
    });
    c.bench_function("kg/snapshot_tails_of_rel", |b| {
        b.iter(|| {
            snap.tails_of_rel_slice(black_box(node), Relation::CapableOf)
                .len()
        })
    });
}

fn bench_hierarchy(c: &mut Criterion) {
    let kg = build_graph(400, 10);
    let mut g = c.benchmark_group("kg");
    g.sample_size(20);
    g.bench_function("hierarchy_build", |b| {
        b.iter_batched(|| &kg, IntentHierarchy::build, BatchSize::SmallInput)
    });
    let snap = kg.freeze();
    g.bench_function("hierarchy_build_snapshot", |b| {
        b.iter_batched(|| &snap, IntentHierarchy::build, BatchSize::SmallInput)
    });
    g.finish();
}

fn bench_json_roundtrip(c: &mut Criterion) {
    let kg = build_graph(500, 8);
    let json = kg.to_json();
    let mut g = c.benchmark_group("kg");
    g.sample_size(20);
    g.bench_function("json_serialize", |b| b.iter(|| kg.to_json().len()));
    g.bench_function("json_deserialize", |b| {
        b.iter(|| {
            KnowledgeGraph::from_json(black_box(&json))
                .unwrap()
                .num_edges()
        })
    });
    g.finish();
}

fn bench_snapshot_roundtrip(c: &mut Criterion) {
    let kg = build_graph(500, 8);
    let snap = kg.freeze();
    let bytes = snap.to_bytes();
    let mut g = c.benchmark_group("kg");
    g.sample_size(20);
    g.bench_function("snapshot_freeze", |b| b.iter(|| kg.freeze().num_edges()));
    g.bench_function("snapshot_serialize", |b| b.iter(|| snap.to_bytes().len()));
    g.bench_function("snapshot_deserialize", |b| {
        b.iter(|| {
            KgSnapshot::from_bytes(black_box(&bytes))
                .unwrap()
                .num_edges()
        })
    });
    g.finish();
}

fn bench_embed(c: &mut Criterion) {
    let corpus: Vec<String> = (0..200)
        .map(|i| format!("product {i} for outdoor camping and hiking trips {}", i % 9))
        .collect();
    let embedder = cosmo_text::HashedEmbedder::fit(&corpus, 128);
    let text = "winter camping air mattress portable lightweight";
    let mut g = c.benchmark_group("embed");
    g.bench_function("embed_alloc", |b| {
        b.iter(|| embedder.embed(black_box(text))[0])
    });
    let mut scratch = cosmo_text::EmbedScratch::default();
    let mut out = vec![0.0f32; 128];
    g.bench_function("embed_into_scratch", |b| {
        b.iter(|| {
            embedder.embed_into(black_box(text), &mut scratch, &mut out);
            out[0]
        })
    });
    let others: Vec<String> = (0..16).map(|i| format!("context phrase {i}")).collect();
    g.bench_function("similarity_many_16", |b| {
        b.iter(|| embedder.similarity_many(black_box(text), &others).len())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_insert,
    bench_lookup,
    bench_hierarchy,
    bench_json_roundtrip,
    bench_snapshot_roundtrip,
    bench_embed
);
criterion_main!(benches);
