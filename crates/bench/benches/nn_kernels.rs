//! Autograd-kernel benchmarks: matmul, a full GRU training step, and the
//! segment-mean embedding bag that all critics/students/recommenders sit
//! on.

use cosmo_nn::layers::{Embedding, GruCell, Linear};
use cosmo_nn::opt::Adam;
use cosmo_nn::{ParamStore, Tape, Tensor};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = cosmo_nn::init::uniform(64, 128, -1.0, 1.0, &mut rng);
    let b = cosmo_nn::init::uniform(128, 256, -1.0, 1.0, &mut rng);
    let mut g = c.benchmark_group("nn");
    g.throughput(Throughput::Elements((64 * 128 * 256) as u64));
    g.bench_function("matmul_64x128x256", |bch| bch.iter(|| a.matmul(&b).sum()));
    g.bench_function("matmul_nt_64x128x256", |bch| {
        let bt = b.transpose();
        bch.iter(|| a.matmul_nt(&bt).sum())
    });
    g.finish();
}

/// The production kernel against the seed-era scalar loop and the 4-thread
/// row-partitioned variant, at the shape the `nn-scaling` experiment's
/// speedup figure quotes. Within one configuration all dispatch paths and
/// thread counts produce identical bytes; only the wall clock differs.
/// The scalar oracle is configuration-dependent: the naive chain at
/// default features, the fused reduction tree under `fast-math`.
fn bench_matmul_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let a = cosmo_nn::init::uniform(256, 256, -1.0, 1.0, &mut rng);
    let b = cosmo_nn::init::uniform(256, 256, -1.0, 1.0, &mut rng);
    let pool = cosmo_exec::WorkerPool::new(4);
    #[cfg(not(feature = "fast-math"))]
    assert_eq!(a.matmul(&b).data(), a.matmul_reference(&b).data());
    #[cfg(feature = "fast-math")]
    assert_eq!(a.matmul(&b).data(), a.matmul_fma_reference(&b).data());
    assert_eq!(a.matmul_par(&b, &pool).data(), a.matmul(&b).data());
    let mut g = c.benchmark_group("nn/matmul_256");
    g.throughput(Throughput::Elements((256u64).pow(3)));
    g.bench_function("reference_scalar", |bch| {
        bch.iter(|| a.matmul_reference(&b).sum())
    });
    g.bench_function("blocked", |bch| bch.iter(|| a.matmul(&b).sum()));
    g.bench_function("threaded_4", |bch| {
        bch.iter(|| a.matmul_par(&b, &pool).sum())
    });
    g.finish();
}

/// FMA reduction-tree kernel vs the no-FMA blocked tier, both compiled in
/// the same `fast-math` binary (`matmul_unfused` ignores the feature by
/// design so the two tiers can be compared in one run).
#[cfg(feature = "fast-math")]
fn bench_fma_vs_blocked(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let a = cosmo_nn::init::uniform(256, 256, -1.0, 1.0, &mut rng);
    let b = cosmo_nn::init::uniform(256, 256, -1.0, 1.0, &mut rng);
    let mut g = c.benchmark_group("nn/matmul_256_fast_math");
    g.throughput(Throughput::Elements((256u64).pow(3)));
    g.bench_function("fma_tree", |bch| bch.iter(|| a.matmul(&b).sum()));
    g.bench_function("blocked_unfused", |bch| {
        bch.iter(|| a.matmul_unfused(&b).sum())
    });
    g.finish();
}

#[cfg(not(feature = "fast-math"))]
fn bench_fma_vs_blocked(_c: &mut Criterion) {}

fn bench_gru_training_step(c: &mut Criterion) {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(2);
    let gru = GruCell::new(&mut store, "g", 32, 32, &mut rng);
    let head = Linear::new(&mut store, "h", 32, 64, &mut rng);
    let xs: Vec<Tensor> = (0..10)
        .map(|_| cosmo_nn::init::uniform(1, 32, -1.0, 1.0, &mut rng))
        .collect();
    let mut opt = Adam::new(0.01);
    c.bench_function("nn/gru_seq10_train_step", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let inputs: Vec<_> = xs.iter().map(|x| tape.input(x.clone())).collect();
            let h0 = tape.input(Tensor::zeros(1, 32));
            let hs = gru.run(&mut tape, &store, &inputs, h0);
            let logits = head.forward(&mut tape, &store, *hs.last().unwrap());
            let loss = tape.cross_entropy(logits, &[7]);
            tape.backward(loss);
            store.zero_grads();
            tape.accumulate_param_grads(&mut store);
            opt.step(&mut store);
            tape.value(loss).item()
        })
    });
}

fn bench_embedding_bag(c: &mut Criterion) {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(3);
    let emb = Embedding::new(&mut store, "e", 8192, 32, &mut rng);
    // batch of 64 bags × 30 features
    let ids: Vec<usize> = (0..64 * 30).map(|i| (i * 131) % 8192).collect();
    let segments: Vec<usize> = (0..64 * 30).map(|i| i / 30).collect();
    let mut g = c.benchmark_group("nn");
    g.throughput(Throughput::Elements(64));
    g.bench_function("segment_mean_bag_64x30", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let table = emb.table(&mut tape, &store);
            let rows = tape.gather(table, &ids);
            let pooled = tape.segment_mean(rows, &segments, 64);
            tape.value(pooled).sum()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_matmul_kernels,
    bench_fma_vs_blocked,
    bench_gru_training_step,
    bench_embedding_bag
);
criterion_main!(benches);
