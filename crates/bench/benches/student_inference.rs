//! COSMO-LM inference throughput — the quantity that justifies replacing
//! the teacher pipeline with an instruction-tuned student (§1, §5).

use cosmo_kg::Relation;
use cosmo_lm::{CosmoLm, StudentConfig, TaskType};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn student(num_tails: usize) -> CosmoLm {
    let tails: Vec<(String, Option<Relation>)> = (0..num_tails)
        .map(|i| {
            (
                format!(
                    "intent phrase number {i} about {}",
                    ["camping", "cooking", "gaming"][i % 3]
                ),
                Some(Relation::ALL[i % 15]),
            )
        })
        .collect();
    CosmoLm::new(StudentConfig::default(), tails)
}

fn bench_generate(c: &mut Criterion) {
    let mut g = c.benchmark_group("student");
    for vocab in [500usize, 4_000] {
        let lm = student(vocab);
        let input = "generate a USED_FOR_FUNC explanation in domain unknown for: search query: lakeside camping gear";
        g.throughput(Throughput::Elements(1));
        g.bench_function(format!("generate_top1_vocab{vocab}"), |b| {
            b.iter(|| lm.generate(black_box(input), None, 1).len())
        });
    }
    g.finish();
}

fn bench_predict(c: &mut Criterion) {
    let lm = student(1_000);
    c.bench_function("student/predict_head", |b| {
        b.iter(|| {
            lm.predict(
                TaskType::RelevancePrediction,
                black_box("is the product relevant to the query: camping | acme tent"),
            )
        })
    });
}

/// Batched `predict_batch` against an equivalent per-item `predict` loop.
/// The two are bitwise identical (locked by tests in cosmo-lm); this group
/// measures the throughput gap the tape-free batched path buys.
fn bench_predict_batch(c: &mut Criterion) {
    let lm = student(1_000);
    let inputs: Vec<String> = (0..256)
        .map(|i| {
            format!("is the product relevant to the query: camping trip {i} | acme tent model {i}")
        })
        .collect();
    let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
    let mut g = c.benchmark_group("student/predict");
    for &batch in &[1usize, 32, 256] {
        let slice = &refs[..batch];
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_function(format!("per_item_{batch}"), |b| {
            b.iter(|| {
                slice
                    .iter()
                    .map(|q| lm.predict(TaskType::RelevancePrediction, black_box(q)))
                    .sum::<f32>()
            })
        });
        g.bench_function(format!("batched_{batch}"), |b| {
            b.iter(|| {
                lm.predict_batch(TaskType::RelevancePrediction, black_box(slice))
                    .iter()
                    .sum::<f32>()
            })
        });
    }
    g.finish();
}

fn bench_embed(c: &mut Criterion) {
    let lm = student(1_000);
    c.bench_function("student/embed_text", |b| {
        b.iter(|| {
            lm.embed_text(black_box("winter camping with the family"))
                .len()
        })
    });
}

criterion_group!(
    benches,
    bench_generate,
    bench_predict,
    bench_predict_batch,
    bench_embed
);
criterion_main!(benches);
