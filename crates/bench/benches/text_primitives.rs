//! Micro-benchmarks of the text substrate used on the pipeline hot path:
//! millions of candidates go through tokenisation, perplexity scoring,
//! embedding and near-duplicate checks.

use cosmo_text::{ngram::train_lm, HashedEmbedder};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn corpus() -> Vec<String> {
    let mut c = Vec::new();
    for i in 0..2_000 {
        c.push(format!(
            "they are used for walking the dog number {i} in the park every morning"
        ));
        c.push(format!(
            "acme portable air mattress model {i} for lakeside camping"
        ));
    }
    c
}

fn bench_tokenize(c: &mut Criterion) {
    let text = "acme portable air-mattress, 4-person! used for lakeside camping trips.";
    let mut g = c.benchmark_group("text");
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("tokenize", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            buf.clear();
            cosmo_text::tokenize_into(black_box(text), &mut buf);
            buf.len()
        })
    });
    g.finish();
}

fn bench_perplexity(c: &mut Criterion) {
    let (vocab, lm) = train_lm(&corpus(), 3);
    let sentence = "they are used for walking the dog in the park";
    c.bench_function("text/ngram_perplexity", |b| {
        b.iter(|| lm.perplexity_str(black_box(sentence), &vocab))
    });
}

fn bench_embed(c: &mut Criterion) {
    let embedder = HashedEmbedder::fit(&corpus(), 256);
    c.bench_function("text/embed", |b| {
        b.iter(|| embedder.embed(black_box("portable air mattress for lakeside camping")))
    });
    let a = embedder.embed("portable air mattress");
    let bb = embedder.embed("air mattress for camping");
    c.bench_function("text/cosine", |b| {
        b.iter(|| cosmo_text::cosine(black_box(&a), black_box(&bb)))
    });
}

fn bench_edit_distance(c: &mut Criterion) {
    c.bench_function("text/edit_distance", |b| {
        b.iter(|| {
            cosmo_text::edit_distance(
                black_box("portable air mattress"),
                black_box("air mattress portable"),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_tokenize,
    bench_perplexity,
    bench_embed,
    bench_edit_distance
);
criterion_main!(benches);
