//! Serving-path latency: the Figure 5 request path must stay within
//! "Amazon's restricted search latency requirements" — here we measure the
//! cache hit path, the miss (enqueue) path, and a full batch cycle.

use cosmo_kg::{KnowledgeGraph, Relation};
use cosmo_lm::{CosmoLm, StudentConfig};
use cosmo_serving::{ServingConfig, ServingSystem};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;

fn system(preload_n: usize) -> ServingSystem {
    let lm = Arc::new(CosmoLm::new(
        StudentConfig::default(),
        vec![
            ("sleeping outdoors".into(), Some(Relation::UsedForFunc)),
            ("keeping warm".into(), Some(Relation::CapableOf)),
            ("walking the dog".into(), Some(Relation::UsedForEve)),
        ],
    ));
    let kg = Arc::new(KnowledgeGraph::new());
    let preload: Vec<String> = (0..preload_n).map(|i| format!("hot query {i}")).collect();
    ServingSystem::builder()
        .kg(kg)
        .lm(lm)
        .preload(preload)
        .config(ServingConfig {
            workers: 2,
            ..Default::default()
        })
        .build()
        .expect("valid bench config")
}

fn bench_hit(c: &mut Criterion) {
    let sys = system(1_000);
    c.bench_function("serving/l1_hit", |b| {
        b.iter(|| sys.handle_request(black_box("hot query 500")).latency_us)
    });
}

fn bench_miss(c: &mut Criterion) {
    let sys = system(10);
    let mut i = 0u64;
    c.bench_function("serving/miss_enqueue", |b| {
        b.iter(|| {
            i += 1;
            sys.handle_request(&format!("cold query {i}")).latency_us
        })
    });
}

fn bench_batch_cycle(c: &mut Criterion) {
    let sys = system(0);
    let mut g = c.benchmark_group("serving");
    g.sample_size(10);
    g.throughput(Throughput::Elements(64));
    let mut round = 0u64;
    g.bench_function("batch_cycle_64", |b| {
        b.iter(|| {
            round += 1;
            for i in 0..64 {
                let _ = sys.handle_request(&format!("batch query {round}-{i}"));
            }
            sys.run_batch_cycle().expect("no worker panics in bench")
        })
    });
    g.finish();
}

/// Four threads hammering the hit path of one shared system: the number
/// the sharded cache layout is designed to move.
fn bench_concurrent_hits(c: &mut Criterion) {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 1_000;
    let sys = system(1_000);
    let queries: Vec<Vec<String>> = (0..THREADS)
        .map(|t| {
            (0..PER_THREAD)
                .map(|i| format!("hot query {}", (t * 31 + i * 7) % 1_000))
                .collect()
        })
        .collect();
    let mut g = c.benchmark_group("serving");
    g.sample_size(10);
    g.throughput(Throughput::Elements((THREADS * PER_THREAD) as u64));
    g.bench_function("concurrent_hits_4x1000", |b| {
        b.iter(|| {
            let sys = &sys;
            std::thread::scope(|s| {
                for qs in &queries {
                    s.spawn(move || {
                        for q in qs {
                            black_box(sys.handle_request(q).latency_us);
                        }
                    });
                }
            })
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_hit,
    bench_miss,
    bench_batch_cycle,
    bench_concurrent_hits
);
criterion_main!(benches);
