//! Smoke tests: every repro experiment runs at tiny scale and produces the
//! structure its table/figure requires. (Numeric shape assertions live in
//! the owning crates' tests; here we guard the harness itself.)

use cosmo_bench::{build_context, run_experiment, Ctx, Scale, EXPERIMENTS};
use std::sync::OnceLock;

fn ctx() -> &'static Ctx {
    static CTX: OnceLock<Ctx> = OnceLock::new();
    CTX.get_or_init(|| build_context(Scale::Tiny, 0x57_0CE))
}

#[test]
fn every_fast_experiment_runs() {
    // the heavier experiments (table6/8, figure5/7, abtest) have their own
    // tests below / in their crates; these must all render instantly
    for name in [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "table7",
        "table9",
        "figure3",
        "figure8",
        "figure9",
        "figure10",
        "efficiency",
        "kgstats",
    ] {
        let out = run_experiment(ctx(), name).unwrap_or_else(|| panic!("unknown {name}"));
        assert!(out.len() > 40, "{name} produced almost no output: {out:?}");
    }
    assert!(run_experiment(ctx(), "no-such-experiment").is_none());
    assert_eq!(EXPERIMENTS.len(), 25);
}

#[test]
fn table1_contains_ours_and_literature() {
    let t = run_experiment(ctx(), "table1").unwrap();
    for name in [
        "ConceptNet",
        "ATOMIC",
        "FolkScope",
        "COSMO (paper)",
        "COSMO-rs (ours)",
    ] {
        assert!(t.contains(name), "missing row {name}");
    }
}

#[test]
fn table2_lists_all_relations() {
    let t = run_experiment(ctx(), "table2").unwrap();
    for rel in ["USED_FOR_FUNC", "CAPABLE_OF", "USED_WITH", "xWant", "xIs_A"] {
        assert!(t.contains(rel), "missing relation {rel}");
    }
}

#[test]
fn table3_has_18_categories_and_totals() {
    let t = run_experiment(ctx(), "table3").unwrap();
    assert!(t.contains("Home & Kitchen"));
    assert!(t.contains("Pet Supplies"));
    assert!(t.contains("Total"));
}

#[test]
fn table4_shape_searchbuy_more_typical() {
    use cosmo_kg::BehaviorKind;
    let c = ctx();
    let (sp, st) = c.out.annotation.table4_ratios(BehaviorKind::SearchBuy);
    let (cp, ct) = c.out.annotation.table4_ratios(BehaviorKind::CoBuy);
    assert!(
        st > ct,
        "Table 4 shape: search-buy typicality {st} vs co-buy {ct}"
    );
    assert!(sp > cp, "plausibility {sp} vs {cp}");
    assert!(
        (0.15..=0.55).contains(&st),
        "search-buy typicality {st} off Table 4 ballpark"
    );
}

#[test]
fn table5_reports_five_locales() {
    let t = run_experiment(ctx(), "table5").unwrap();
    for l in ["KDD Cup", "US", "CA", "UK", "IN"] {
        assert!(t.contains(l), "missing locale {l}");
    }
}

#[test]
fn table9_has_all_18_categories_and_quality_gap() {
    let t = run_experiment(ctx(), "table9").unwrap();
    assert!(t.contains("Video Games"));
    assert!(t.contains("COSMO-LM: typical"));
    // the student must beat the raw teacher on typicality at any scale
    let student_line = t.lines().find(|l| l.contains("COSMO-LM: typical")).unwrap();
    let teacher_line = t
        .lines()
        .find(|l| l.contains("raw teacher: typical"))
        .unwrap();
    let grab = |line: &str| -> f64 {
        line.split("typical ")
            .nth(1)
            .unwrap()
            .split('%')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(
        grab(student_line) > grab(teacher_line),
        "student must out-typical the teacher: {student_line} vs {teacher_line}"
    );
}

#[test]
fn figure5_hit_rate_reaches_steady_state() {
    let t = run_experiment(ctx(), "figure5").unwrap();
    // last day's hit rate printed as "NN.N%"
    let rates: Vec<f64> = t
        .lines()
        .filter(|l| l.contains('%') && l.trim().starts_with(char::is_numeric))
        .filter_map(|l| {
            l.split_whitespace()
                .nth(1)
                .and_then(|x| x.trim_end_matches('%').parse().ok())
        })
        .collect();
    assert!(rates.len() >= 3, "need day rows: {t}");
    assert!(
        rates.last().unwrap() > &50.0,
        "steady-state hit rate too low: {rates:?}"
    );
}

#[test]
fn throughput_compares_single_shard_to_sharded() {
    let t = run_experiment(ctx(), "throughput").unwrap();
    assert!(t.contains("single shard"), "missing baseline row: {t}");
    assert!(t.contains("sharded (default)"), "missing sharded row: {t}");
    // both rows report a positive req/s figure and an ops summary line
    assert_eq!(t.matches("hit_rate=").count(), 2, "two ops_view lines: {t}");
}

/// The tier-1 serve gate: the HTTP front end over the frozen snapshot
/// answers real closed-loop load with nonzero throughput and zero 5xx
/// (the smoke-mode `serve` experiment asserts both internally).
#[test]
fn serve_smoke_sustains_load_without_errors() {
    let t = run_experiment(ctx(), "serve").unwrap();
    assert!(t.contains("smoke ok"), "smoke gate line missing: {t}");
    assert!(t.contains("saturation:"), "saturation summary missing: {t}");
    assert!(
        t.contains("BENCH_serve.json"),
        "bench artifact line missing: {t}"
    );
}

#[test]
fn efficiency_orders_models_correctly() {
    let t = run_experiment(ctx(), "efficiency").unwrap();
    let opt175 = t.lines().find(|l| l.contains("OPT-175B")).unwrap();
    let llama7 = t
        .lines()
        .find(|l| l.contains("LLaMA-7B") && l.contains("COSMO-LM"))
        .unwrap();
    let latency = |line: &str| -> f64 {
        line.split_whitespace()
            .rev()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(
        latency(opt175) > latency(llama7) * 10.0,
        "teacher must cost ≫ student"
    );
    assert!(t.contains("generations/s"));
}
