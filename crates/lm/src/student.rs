//! COSMO-LM: the instruction-tuned student model (§3.4).
//!
//! The paper fine-tunes LLaMA-7B/13B on the instruction data so that a
//! *small* model (a) generates typical knowledge directly, (b) judges
//! plausibility/typicality, and (c) handles the auxiliary behaviour-level
//! predictions — one model, five tasks, cheap enough for online serving.
//!
//! The offline stand-in keeps that exact contract: a shared hashed-feature
//! text encoder (embedding bag) with
//!
//! * a **generation head** — constrained decoding over the canonicalised
//!   tail vocabulary: `score(tail | input) = enc(input) · E_tail`, trained
//!   with full-softmax cross-entropy on the typical-knowledge instructions;
//! * four **binary heads** (plausibility, typicality, co-purchase,
//!   search-relevance) trained with BCE on the prediction instructions.
//!
//! Constrained decoding over a closed tail vocabulary is the right
//! simulation: the paper's student also only ever emits canonicalised
//! tails (Table 2 structure), and it lets us measure typicality of
//! generations exactly via the world oracle.

use crate::instruction::{Instruction, TaskType};
use cosmo_kg::Relation;
use cosmo_nn::infer::{self, InferScratch, ScratchPool, TapePool};
use cosmo_nn::layers::{Embedding, Linear};
use cosmo_nn::opt::Adam;
use cosmo_nn::train::{shard_ranges, ShardRunner};
use cosmo_nn::{ParamStore, Tape};
use cosmo_text::hash::hash_str_ns;
use cosmo_text::{tokenize, FxHashMap};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

const NS_TOK: u32 = 31;
const NS_BI: u32 = 32;

/// Student hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudentConfig {
    /// RNG seed.
    pub seed: u64,
    /// Hash buckets for input features.
    pub buckets: usize,
    /// Embedding width.
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Worker threads for sharded gradient steps (`0` = all cores,
    /// `1` = inline). Never changes the result — see `cosmo_nn::train`.
    #[serde(default = "default_threads")]
    pub threads: usize,
    /// Shard size for data-parallel gradient steps; `0` keeps each batch
    /// on a single tape (the exact whole-batch formulation).
    #[serde(default)]
    pub microbatch: usize,
}

fn default_threads() -> usize {
    1
}

impl Default for StudentConfig {
    fn default() -> Self {
        StudentConfig {
            seed: 0x10_C0_5A,
            buckets: 1 << 13,
            dim: 48,
            epochs: 12,
            batch: 64,
            lr: 0.01,
            threads: 1,
            microbatch: 0,
        }
    }
}

/// Training/eval metrics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StudentReport {
    /// Generation instances trained on.
    pub n_generate: usize,
    /// Prediction instances trained on.
    pub n_predict: usize,
    /// Final-epoch mean generation loss.
    pub gen_loss: f32,
    /// Held-out top-1 generation accuracy (exact tail match).
    pub gen_top1: f64,
    /// Held-out prediction accuracy per task.
    pub predict_accuracy: Vec<(String, f64)>,
}

/// The COSMO-LM student.
pub struct CosmoLm {
    store: ParamStore,
    enc: Embedding,
    tail_emb: Embedding,
    heads: [Linear; 4],
    tail_vocab: Vec<String>,
    tail_rel: Vec<Option<Relation>>,
    tail_index: FxHashMap<String, usize>,
    cfg: StudentConfig,
    /// Recycled tapes for the per-item inference entry points — kills the
    /// `Tape::new` allocation per call while keeping the exact tape
    /// formulation (pooled-tape results are bitwise identical to fresh).
    tape_pool: TapePool,
    /// Recycled scratches for the tape-free batched entry points.
    scratch_pool: ScratchPool,
}

fn head_slot(task: TaskType) -> Option<usize> {
    match task {
        TaskType::Generate => None,
        TaskType::Plausibility => Some(0),
        TaskType::Typicality => Some(1),
        TaskType::CopurchasePrediction => Some(2),
        TaskType::RelevancePrediction => Some(3),
    }
}

impl CosmoLm {
    /// Create an untrained student with a closed tail vocabulary
    /// (`(canonical tail, relation hint)` pairs; duplicates merged).
    pub fn new(cfg: StudentConfig, tails: Vec<(String, Option<Relation>)>) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut tail_vocab = Vec::new();
        let mut tail_rel = Vec::new();
        let mut tail_index = FxHashMap::default();
        for (t, r) in tails {
            if t.is_empty() || tail_index.contains_key(&t) {
                continue;
            }
            tail_index.insert(t.clone(), tail_vocab.len());
            tail_vocab.push(t);
            tail_rel.push(r);
        }
        assert!(!tail_vocab.is_empty(), "student needs a tail vocabulary");
        let enc = Embedding::new(&mut store, "lm.enc", cfg.buckets, cfg.dim, &mut rng);
        let tail_emb = Embedding::new(&mut store, "lm.tails", tail_vocab.len(), cfg.dim, &mut rng);
        let heads = [
            Linear::new(&mut store, "lm.plaus", cfg.dim, 1, &mut rng),
            Linear::new(&mut store, "lm.typ", cfg.dim, 1, &mut rng),
            Linear::new(&mut store, "lm.cobuy", cfg.dim, 1, &mut rng),
            Linear::new(&mut store, "lm.rel", cfg.dim, 1, &mut rng),
        ];
        CosmoLm {
            store,
            enc,
            tail_emb,
            heads,
            tail_vocab,
            tail_rel,
            tail_index,
            cfg,
            tape_pool: TapePool::new(),
            scratch_pool: ScratchPool::new(),
        }
    }

    /// Size of the tail vocabulary.
    pub fn num_tails(&self) -> usize {
        self.tail_vocab.len()
    }

    /// The tail string at vocabulary index `i`.
    pub fn tail(&self, i: usize) -> &str {
        &self.tail_vocab[i]
    }

    /// Hash an input text into encoder features.
    pub fn features(&self, input: &str) -> Vec<usize> {
        hash_features(self.cfg.buckets, input)
    }

    /// Instruction-tune on the dataset; last 15% of each task held out.
    pub fn train(&mut self, instructions: &[Instruction]) -> StudentReport {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xF1E7);
        let mut report = StudentReport::default();

        // split per task
        let mut train_set: Vec<usize> = Vec::new();
        let mut test_set: Vec<usize> = Vec::new();
        for task in TaskType::ALL {
            let mut idx: Vec<usize> = instructions
                .iter()
                .enumerate()
                .filter(|(_, i)| i.task == task)
                .map(|(i, _)| i)
                .collect();
            idx.shuffle(&mut rng);
            let split = (idx.len() as f64 * 0.85) as usize;
            train_set.extend_from_slice(&idx[..split]);
            test_set.extend_from_slice(&idx[split..]);
        }
        for &i in &train_set {
            if instructions[i].task == TaskType::Generate {
                report.n_generate += 1;
            } else {
                report.n_predict += 1;
            }
        }

        let mut opt = Adam::new(self.cfg.lr);
        let mut runner = ShardRunner::new(self.cfg.threads);
        for _epoch in 0..self.cfg.epochs {
            train_set.shuffle(&mut rng);
            let mut gen_loss = 0.0f32;
            let mut gen_steps = 0usize;
            for chunk in train_set.chunks(self.cfg.batch) {
                // split the chunk by task kind
                let gens: Vec<&Instruction> = chunk
                    .iter()
                    .map(|&i| &instructions[i])
                    .filter(|i| i.task == TaskType::Generate)
                    .collect();
                if !gens.is_empty() {
                    gen_loss += self.gen_step(&gens, &mut opt, &mut runner);
                    gen_steps += 1;
                }
                for slot in 0..4 {
                    let preds: Vec<&Instruction> = chunk
                        .iter()
                        .map(|&i| &instructions[i])
                        .filter(|i| head_slot(i.task) == Some(slot) && i.label.is_some())
                        .collect();
                    if !preds.is_empty() {
                        self.predict_step(slot, &preds, &mut opt, &mut runner);
                    }
                }
            }
            report.gen_loss = gen_loss / gen_steps.max(1) as f32;
        }

        // held-out evaluation
        let mut gen_hits = 0usize;
        let mut gen_total = 0usize;
        let mut pred_hits = [0usize; 4];
        let mut pred_total = [0usize; 4];
        for &i in &test_set {
            let inst = &instructions[i];
            match inst.task {
                TaskType::Generate => {
                    gen_total += 1;
                    let top = self.generate(&inst.input, inst.relation, 1);
                    if top.first().map(|(t, _)| t.as_str()) == inst.tail.as_deref() {
                        gen_hits += 1;
                    }
                }
                t => {
                    let slot = head_slot(t).unwrap();
                    let p = self.predict(t, &inst.input);
                    pred_total[slot] += 1;
                    if (p > 0.5) == inst.label.unwrap() {
                        pred_hits[slot] += 1;
                    }
                }
            }
        }
        report.gen_top1 = gen_hits as f64 / gen_total.max(1) as f64;
        report.predict_accuracy = TaskType::ALL
            .iter()
            .filter_map(|&t| {
                let slot = head_slot(t)?;
                Some((
                    t.name().to_string(),
                    pred_hits[slot] as f64 / pred_total[slot].max(1) as f64,
                ))
            })
            .collect();
        report
    }

    fn encode_batch(&self, tape: &mut Tape, inputs: &[&str]) -> cosmo_nn::Var {
        encode_inputs(tape, &self.store, &self.enc, self.cfg.buckets, inputs)
    }

    /// Sharded generation step; shard losses are scaled by
    /// `shard_len / batch_len` so they sum to the batch mean (one shard —
    /// the default — is the exact whole-batch computation).
    fn gen_step(
        &mut self,
        batch: &[&Instruction],
        opt: &mut Adam,
        runner: &mut ShardRunner,
    ) -> f32 {
        let shards = shard_ranges(batch.len(), self.cfg.microbatch);
        let batch_len = batch.len();
        let buckets = self.cfg.buckets;
        let CosmoLm {
            store,
            enc,
            tail_emb,
            tail_index,
            ..
        } = self;
        let losses = runner.grad_step(store, shards.len(), |tape, s, shard_i| {
            let range = shards[shard_i].clone();
            let shard = &batch[range.start..range.end];
            let inputs: Vec<&str> = shard.iter().map(|i| i.input.as_str()).collect();
            let targets: Vec<usize> = shard
                .iter()
                .map(|i| tail_index[i.tail.as_ref().unwrap()])
                .collect();
            let e = encode_inputs(tape, s, enc, buckets, &inputs);
            let tails = tail_emb.table(tape, s);
            let logits = tape.matmul_nt(e, tails);
            let loss = tape.cross_entropy(logits, &targets);
            tape.scale(loss, range.len() as f32 / batch_len as f32)
        });
        opt.step(store);
        losses.iter().sum()
    }

    fn predict_step(
        &mut self,
        slot: usize,
        batch: &[&Instruction],
        opt: &mut Adam,
        runner: &mut ShardRunner,
    ) {
        let shards = shard_ranges(batch.len(), self.cfg.microbatch);
        let batch_len = batch.len();
        let buckets = self.cfg.buckets;
        let CosmoLm {
            store, enc, heads, ..
        } = self;
        let head = &heads[slot];
        runner.grad_step(store, shards.len(), |tape, s, shard_i| {
            let range = shards[shard_i].clone();
            let shard = &batch[range.start..range.end];
            let inputs: Vec<&str> = shard.iter().map(|i| i.input.as_str()).collect();
            let labels: Vec<f32> = shard.iter().map(|i| f32::from(i.label.unwrap())).collect();
            let e = encode_inputs(tape, s, enc, buckets, &inputs);
            let logits = head.forward(tape, s, e);
            let loss = tape.bce_with_logits(logits, &labels);
            tape.scale(loss, range.len() as f32 / batch_len as f32)
        });
        opt.step(store);
    }

    /// Generate the top-`k` tails for an input, optionally constrained to
    /// tails compatible with `relation`.
    pub fn generate(
        &self,
        input: &str,
        relation: Option<Relation>,
        k: usize,
    ) -> Vec<(String, f32)> {
        let mut tape = self.tape_pool.take();
        let enc = self.encode_batch(&mut tape, &[input]);
        let tails = self.tail_emb.table(&mut tape, &self.store);
        let logits = tape.matmul_nt(enc, tails);
        let row = tape.value(logits).row_slice(0);
        let out = self.rank_tail_row(row, relation, k);
        self.tape_pool.put(tape);
        out
    }

    /// Rank one `[1×tails]` logit row against the (optional) relation
    /// constraint: shared by [`CosmoLm::generate`] and
    /// [`CosmoLm::generate_batch`] so the two paths cannot drift.
    fn rank_tail_row(
        &self,
        row: &[f32],
        relation: Option<Relation>,
        k: usize,
    ) -> Vec<(String, f32)> {
        let mut scored: Vec<(usize, f32)> = row
            .iter()
            .enumerate()
            .filter(|(i, _)| match (relation, self.tail_rel[*i]) {
                (Some(want), Some(have)) => want == have,
                _ => true,
            })
            .map(|(i, &s)| (i, s))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored
            .into_iter()
            .take(k)
            .map(|(i, s)| (self.tail_vocab[i].clone(), s))
            .collect()
    }

    /// Batched [`CosmoLm::generate`]: one embedding-bag encode and one
    /// `[batch×dim]·[tails×dim]ᵀ` matmul over the whole batch, through
    /// reused tape-free scratch buffers. Per-element reduction chains are
    /// a pure function of the inner dimension, so every output row — and
    /// therefore every ranking — is bitwise identical to the per-item
    /// `generate` loop, in both feature configurations.
    pub fn generate_batch(
        &self,
        inputs: &[&str],
        relation: Option<Relation>,
        k: usize,
    ) -> Vec<Vec<(String, f32)>> {
        if inputs.is_empty() {
            return Vec::new();
        }
        let mut s = self.scratch_pool.take();
        self.encode_into(&mut s, inputs);
        infer::matmul_nt_into(
            &s.pooled,
            self.tail_emb.table_value(&self.store),
            &mut s.nt_scratch,
            &mut s.out,
        );
        let out = (0..inputs.len())
            .map(|r| self.rank_tail_row(s.out.row_slice(r), relation, k))
            .collect();
        self.scratch_pool.put(s);
        out
    }

    /// Sample a *list* of `n` distinct tails (the paper's "1. 2. 3." list
    /// generation, Figure 3's prompt trick) with temperature-controlled
    /// softmax sampling over the constrained tail vocabulary. Lower
    /// temperature → closer to greedy; higher → more diverse knowledge per
    /// behaviour. Deterministic given the RNG.
    pub fn sample_list(
        &self,
        input: &str,
        relation: Option<Relation>,
        n: usize,
        temperature: f32,
        rng: &mut impl rand::Rng,
    ) -> Vec<String> {
        assert!(temperature > 0.0, "temperature must be positive");
        let mut tape = self.tape_pool.take();
        let enc = self.encode_batch(&mut tape, &[input]);
        let tails = self.tail_emb.table(&mut tape, &self.store);
        let logits = tape.matmul_nt(enc, tails);
        let row = tape.value(logits).row_slice(0);
        let mut eligible: Vec<(usize, f32)> = row
            .iter()
            .enumerate()
            .filter(|(i, _)| match (relation, self.tail_rel[*i]) {
                (Some(want), Some(have)) => want == have,
                _ => true,
            })
            .map(|(i, &s)| (i, s / temperature))
            .collect();
        let mut out = Vec::with_capacity(n.min(eligible.len()));
        for _ in 0..n {
            if eligible.is_empty() {
                break;
            }
            // softmax sampling without replacement
            let max = eligible
                .iter()
                .map(|(_, s)| *s)
                .fold(f32::NEG_INFINITY, f32::max);
            let weights: Vec<f64> = eligible
                .iter()
                .map(|(_, s)| ((s - max) as f64).exp())
                .collect();
            let total: f64 = weights.iter().sum();
            let mut x = rng.gen_range(0.0..total);
            let mut pick = eligible.len() - 1;
            for (k, w) in weights.iter().enumerate() {
                if x < *w {
                    pick = k;
                    break;
                }
                x -= w;
            }
            let (idx, _) = eligible.swap_remove(pick);
            out.push(self.tail_vocab[idx].clone());
        }
        self.tape_pool.put(tape);
        out
    }

    /// Probability output of a prediction head. Runs on a pooled tape, so
    /// steady-state calls allocate nothing; outputs are bitwise identical
    /// to the historical fresh-tape-per-call formulation.
    pub fn predict(&self, task: TaskType, input: &str) -> f32 {
        let slot = head_slot(task).expect("predict() needs a prediction task");
        let mut tape = self.tape_pool.take();
        let enc = self.encode_batch(&mut tape, &[input]);
        let logit = self.heads[slot].forward(&mut tape, &self.store, enc);
        let p = 1.0 / (1.0 + (-tape.value(logit).item()).exp());
        self.tape_pool.put(tape);
        p
    }

    /// Batched [`CosmoLm::predict`]: encodes the whole batch into one
    /// `[batch×dim]` tensor and runs one head matmul, tape-free, through
    /// reused scratch buffers. Bitwise identical to calling `predict` per
    /// item, in both feature configurations — locked by a proptest.
    pub fn predict_batch(&self, task: TaskType, inputs: &[&str]) -> Vec<f32> {
        let slot = head_slot(task).expect("predict_batch() needs a prediction task");
        if inputs.is_empty() {
            return Vec::new();
        }
        let mut s = self.scratch_pool.take();
        self.encode_into(&mut s, inputs);
        let (w, b) = self.heads[slot].params(&self.store);
        infer::linear_into(&s.pooled, w, b, &mut s.out);
        let out = s
            .out
            .data()
            .iter()
            .map(|&x| 1.0 / (1.0 + (-x).exp()))
            .collect();
        self.scratch_pool.put(s);
        out
    }

    /// Dense embedding of arbitrary text under the student's encoder —
    /// "we leverage the same LM to vectorize generated knowledge" (§4.2.3,
    /// COSMO-GNN's knowledge embeddings).
    pub fn embed_text(&self, text: &str) -> Vec<f32> {
        let mut tape = self.tape_pool.take();
        let enc = self.encode_batch(&mut tape, &[text]);
        let out = tape.value(enc).row_slice(0).to_vec();
        self.tape_pool.put(tape);
        out
    }

    /// Batched [`CosmoLm::embed_text`]: one embedding-bag encode for the
    /// whole batch; each row carries the exact bits of the per-item call.
    pub fn embed_batch(&self, texts: &[&str]) -> Vec<Vec<f32>> {
        if texts.is_empty() {
            return Vec::new();
        }
        let mut s = self.scratch_pool.take();
        self.encode_into(&mut s, texts);
        let out = (0..texts.len())
            .map(|r| s.pooled.row_slice(r).to_vec())
            .collect();
        self.scratch_pool.put(s);
        out
    }

    /// Stage hashed features for `inputs` in `scratch` and mean-pool them
    /// into `scratch.pooled` (`[batch×dim]`), reading the encoder table in
    /// place. Mirrors [`encode_inputs`] bit-for-bit without the tape.
    fn encode_into(&self, scratch: &mut InferScratch, inputs: &[&str]) {
        scratch.clear_ids();
        for (seg, input) in inputs.iter().enumerate() {
            for f in hash_features(self.cfg.buckets, input) {
                scratch.ids.push(f);
                scratch.segments.push(seg);
            }
        }
        infer::embed_bag_into(
            self.enc.table_value(&self.store),
            &scratch.ids,
            &scratch.segments,
            inputs.len(),
            &mut scratch.counts,
            &mut scratch.pooled,
        );
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.cfg.dim
    }

    /// Total trainable scalars (for the efficiency comparison).
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }
}

/// Hash an input text into encoder features (free function so sharded
/// training closures can use it while the store is mutably borrowed).
fn hash_features(buckets: usize, input: &str) -> Vec<usize> {
    let toks = tokenize(input);
    let mut out = Vec::with_capacity(toks.len() * 2);
    for t in &toks {
        out.push((hash_str_ns(t, NS_TOK) % buckets as u64) as usize);
    }
    for w in toks.windows(2) {
        out.push((hash_str_ns(&format!("{} {}", w[0], w[1]), NS_BI) % buckets as u64) as usize);
    }
    if out.is_empty() {
        out.push(0);
    }
    out
}

/// Encode a batch of inputs on `tape`: hashed-feature embedding bag with
/// per-input segment means.
fn encode_inputs(
    tape: &mut Tape,
    store: &ParamStore,
    enc: &Embedding,
    buckets: usize,
    inputs: &[&str],
) -> cosmo_nn::Var {
    let mut ids = Vec::new();
    let mut segments = Vec::new();
    for (s, input) in inputs.iter().enumerate() {
        for f in hash_features(buckets, input) {
            ids.push(f);
            segments.push(s);
        }
    }
    let table = enc.table(tape, store);
    let rows = tape.gather(table, &ids);
    tape.segment_mean(rows, &segments, inputs.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmo_synth::{DomainId, ProductId, QueryId};
    use cosmo_teacher::BehaviorRef;

    fn toy_instructions() -> Vec<Instruction> {
        // Learnable mapping: input mentions "camping" → tail "sleeping
        // outdoors"; mentions "kitchen" → tail "peeling potatoes".
        let mut out = Vec::new();
        for i in 0..240 {
            let camping = i % 2 == 0;
            let (word, tail) = if camping {
                ("camping", "sleeping outdoors")
            } else {
                ("kitchen", "peeling potatoes")
            };
            out.push(Instruction {
                task: TaskType::Generate,
                template_id: i % 3,
                input: format!("generate explanation {i}: user searched {word} item"),
                output: tail.to_string(),
                tail: Some(tail.to_string()),
                label: None,
                relation: Some(Relation::UsedForFunc),
                domain: DomainId(1),
                behavior: BehaviorRef::SearchBuy(QueryId(0), ProductId(i as u32)),
            });
            // plausibility task: label = camping
            out.push(Instruction {
                task: TaskType::Plausibility,
                template_id: i % 3,
                input: format!("is \"{tail}\" plausible for {word} item {i}"),
                output: if camping { "yes" } else { "no" }.to_string(),
                tail: Some(tail.to_string()),
                label: Some(camping),
                relation: Some(Relation::UsedForFunc),
                domain: DomainId(1),
                behavior: BehaviorRef::SearchBuy(QueryId(0), ProductId(i as u32)),
            });
        }
        out
    }

    fn tails() -> Vec<(String, Option<Relation>)> {
        vec![
            ("sleeping outdoors".to_string(), Some(Relation::UsedForFunc)),
            ("peeling potatoes".to_string(), Some(Relation::UsedForFunc)),
            ("walking the dog".to_string(), Some(Relation::UsedForEve)),
        ]
    }

    #[test]
    fn student_learns_toy_generation() {
        let mut lm = CosmoLm::new(
            StudentConfig {
                epochs: 15,
                ..Default::default()
            },
            tails(),
        );
        let report = lm.train(&toy_instructions());
        assert!(report.gen_top1 > 0.8, "gen top1 {}", report.gen_top1);
        let top = lm.generate(
            "user searched camping item fresh",
            Some(Relation::UsedForFunc),
            1,
        );
        assert_eq!(top[0].0, "sleeping outdoors");
    }

    #[test]
    fn relation_constraint_masks_vocabulary() {
        let lm = CosmoLm::new(StudentConfig::default(), tails());
        let constrained = lm.generate("anything", Some(Relation::UsedForEve), 5);
        assert_eq!(constrained.len(), 1);
        assert_eq!(constrained[0].0, "walking the dog");
        let unconstrained = lm.generate("anything", None, 5);
        assert_eq!(unconstrained.len(), 3);
    }

    #[test]
    fn prediction_head_learns() {
        let mut lm = CosmoLm::new(
            StudentConfig {
                epochs: 15,
                ..Default::default()
            },
            tails(),
        );
        let report = lm.train(&toy_instructions());
        let plaus = report
            .predict_accuracy
            .iter()
            .find(|(n, _)| n == "plausibility-prediction")
            .unwrap();
        assert!(plaus.1 > 0.8, "plausibility accuracy {}", plaus.1);
    }

    #[test]
    fn sample_list_is_distinct_and_temperature_controls_diversity() {
        use rand::SeedableRng;
        let mut lm = CosmoLm::new(
            StudentConfig {
                epochs: 15,
                ..Default::default()
            },
            tails(),
        );
        lm.train(&toy_instructions());
        let input = "user searched camping item fresh";
        // samples are distinct
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let list = lm.sample_list(input, None, 3, 1.0, &mut rng);
        let mut dedup = list.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), list.len());
        // near-greedy temperature almost always picks the trained tail first
        let mut greedy_hits = 0;
        for seed in 0..20 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let first = lm.sample_list(input, None, 1, 0.05, &mut rng);
            greedy_hits += usize::from(first[0] == "sleeping outdoors");
        }
        assert!(
            greedy_hits >= 18,
            "cold sampling should be near-greedy: {greedy_hits}/20"
        );
        // hot temperature explores
        let mut seen = std::collections::HashSet::new();
        for seed in 0..30 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            seen.insert(lm.sample_list(input, None, 1, 50.0, &mut rng)[0].clone());
        }
        assert!(seen.len() >= 2, "hot sampling should diversify: {seen:?}");
    }

    #[test]
    fn duplicate_tails_are_merged() {
        let lm = CosmoLm::new(
            StudentConfig::default(),
            vec![
                ("a".to_string(), None),
                ("a".to_string(), Some(Relation::IsA)),
                ("b".to_string(), None),
            ],
        );
        assert_eq!(lm.num_tails(), 2);
    }

    #[test]
    fn embed_text_has_configured_dim() {
        let lm = CosmoLm::new(StudentConfig::default(), tails());
        let v = lm.embed_text("winter camping gear");
        assert_eq!(v.len(), lm.dim());
    }

    #[test]
    #[should_panic(expected = "tail vocabulary")]
    fn empty_vocab_rejected() {
        let _ = CosmoLm::new(StudentConfig::default(), vec![]);
    }

    fn trained_student() -> CosmoLm {
        let mut lm = CosmoLm::new(
            StudentConfig {
                epochs: 2,
                ..Default::default()
            },
            tails(),
        );
        lm.train(&toy_instructions());
        lm
    }

    /// Repeated per-item calls must be bitwise stable: the second call runs
    /// on the pooled (reset) tape rather than a fresh one, and any drift
    /// would mean tape reuse leaks state into results.
    #[test]
    fn pooled_tape_inference_is_bitwise_stable_across_calls() {
        let lm = trained_student();
        let input = "user searched camping item fresh";
        let first = (
            lm.predict(TaskType::Plausibility, input),
            lm.generate(input, None, 3),
            lm.embed_text(input),
        );
        for _ in 0..3 {
            assert_eq!(lm.predict(TaskType::Plausibility, input), first.0);
            assert_eq!(lm.generate(input, None, 3), first.1);
            assert_eq!(lm.embed_text(input), first.2);
        }
    }

    #[test]
    fn generate_batch_matches_per_item_generate_bitwise() {
        let lm = trained_student();
        let inputs = [
            "user searched camping item fresh",
            "kitchen gadget for peeling",
            "",
            "walking the dog at dawn with a camping lantern",
        ];
        for relation in [None, Some(Relation::UsedForFunc)] {
            let batched = lm.generate_batch(&inputs, relation, 3);
            for (input, rows) in inputs.iter().zip(batched.iter()) {
                assert_eq!(rows, &lm.generate(input, relation, 3), "input {input:?}");
            }
        }
    }

    #[test]
    fn embed_batch_matches_per_item_embed_bitwise() {
        let lm = trained_student();
        let texts = ["winter camping gear", "", "potato peeler", "dog leash"];
        let batched = lm.embed_batch(&texts);
        for (text, row) in texts.iter().zip(batched.iter()) {
            assert_eq!(row, &lm.embed_text(text), "text {text:?}");
        }
        assert!(lm.predict_batch(TaskType::Typicality, &[]).is_empty());
        assert!(lm.embed_batch(&[]).is_empty());
    }

    proptest::proptest! {
        /// The batched fast path must be *bitwise* equal to the per-item
        /// predict loop for arbitrary input text, at any batch size — this
        /// is the contract that lets serving swap one for the other freely.
        #[test]
        fn predict_batch_matches_per_item_predict_bitwise(
            inputs in proptest::collection::vec("[ a-z0-9]{0,40}", 1..12),
            slot in 0usize..4,
        ) {
            let lm = CosmoLm::new(StudentConfig::default(), tails());
            let task = [
                TaskType::Plausibility,
                TaskType::Typicality,
                TaskType::CopurchasePrediction,
                TaskType::RelevancePrediction,
            ][slot];
            let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
            let batched = lm.predict_batch(task, &refs);
            proptest::prop_assert_eq!(batched.len(), refs.len());
            for (input, &p) in refs.iter().zip(batched.iter()) {
                let single = lm.predict(task, input);
                proptest::prop_assert_eq!(
                    p.to_bits(), single.to_bits(),
                    "input {:?}: batched {} vs single {}", input, p, single
                );
            }
        }
    }

    /// With sharding engaged, thread count must not change anything: the
    /// trained reports and the generation ranking have to be byte-identical
    /// at `threads = 1` and `threads = 4`.
    #[test]
    fn student_training_is_thread_count_invariant() {
        let train_with = |threads: usize| {
            let mut lm = CosmoLm::new(
                StudentConfig {
                    epochs: 2,
                    microbatch: 16,
                    threads,
                    ..Default::default()
                },
                tails(),
            );
            let report = lm.train(&toy_instructions());
            let gen = lm.generate("user searched camping item fresh", None, 3);
            let pred = lm.predict(TaskType::Plausibility, "is it plausible");
            (report, gen, pred)
        };
        let (r1, g1, p1) = train_with(1);
        let (r4, g4, p4) = train_with(4);
        assert_eq!(r1, r4, "student reports diverged across thread counts");
        assert_eq!(g1, g4, "generation diverged across thread counts");
        assert_eq!(p1, p4, "prediction diverged across thread counts");
    }
}
