//! Instruction-data construction (§3.4, Figure 4).
//!
//! "After collecting human judgments on 30k diverse knowledge samples, we
//! can create large-scale instruction data based on annotated data." Five
//! task types:
//!
//! 1. **Knowledge generation** — the behaviour pair is the input, a
//!    *typical* tail is the desired output ("we select knowledge with
//!    high-typicality scores as desired model outputs");
//! 2. **Plausibility prediction** — behaviour + knowledge → yes/no;
//! 3. **Typicality prediction** — behaviour + knowledge → yes/no;
//! 4. **Co-purchase prediction** — product pair → genuine/random (derived
//!    from the relevance annotations of random co-buy pairs);
//! 5. **Search-relevance prediction** — query–product pair → relevant or
//!    not.
//!
//! "To make the model robust to different formats, we design different
//! templates to verbalize the instructions" — each instance is rendered
//! with one of several surface templates ("search query:", "user input:",
//! "user searched:", …).

use cosmo_core::{AnnotationOutput, Ans, FilteredCandidate};
use cosmo_kg::Relation;
use cosmo_synth::{DomainId, World};
use cosmo_teacher::BehaviorRef;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The five instruction-tuning task types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskType {
    /// Generate a typical knowledge tail for a behaviour.
    Generate,
    /// Judge plausibility of a (behaviour, knowledge) pair.
    Plausibility,
    /// Judge typicality.
    Typicality,
    /// Is this co-buy pair genuine or random?
    CopurchasePrediction,
    /// Is this product relevant to the query?
    RelevancePrediction,
}

impl TaskType {
    /// All five task types.
    pub const ALL: [TaskType; 5] = [
        TaskType::Generate,
        TaskType::Plausibility,
        TaskType::Typicality,
        TaskType::CopurchasePrediction,
        TaskType::RelevancePrediction,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TaskType::Generate => "knowledge-generation",
            TaskType::Plausibility => "plausibility-prediction",
            TaskType::Typicality => "typicality-prediction",
            TaskType::CopurchasePrediction => "copurchase-prediction",
            TaskType::RelevancePrediction => "search-relevance-prediction",
        }
    }
}

/// The structured content of one instruction instance (the model trains on
/// hashed features of the rendered text; the structured view is kept for
/// evaluation and debugging).
#[derive(Debug, Clone)]
pub struct Instruction {
    /// Task type.
    pub task: TaskType,
    /// Which surface template rendered it.
    pub template_id: usize,
    /// Rendered input text.
    pub input: String,
    /// Desired output: a tail string for [`TaskType::Generate`],
    /// "yes"/"no" for prediction tasks.
    pub output: String,
    /// For Generate: the canonical tail (same as `output`).
    pub tail: Option<String>,
    /// Binary label for prediction tasks.
    pub label: Option<bool>,
    /// Relation context.
    pub relation: Option<Relation>,
    /// Domain of the underlying behaviour.
    pub domain: DomainId,
    /// The underlying behaviour (for evaluation splits).
    pub behavior: BehaviorRef,
}

/// Query prefixes used to vary the surface form (§3.4).
const QUERY_PREFIXES: [&str; 3] = ["search query:", "user input:", "user searched:"];
/// Product-pair prefixes.
const PAIR_PREFIXES: [&str; 2] = ["bought together:", "co-purchased items:"];

/// Render the behaviour's surface text under template `t`.
pub fn render_behavior(world: &World, b: BehaviorRef, t: usize) -> String {
    match b {
        BehaviorRef::SearchBuy(q, p) => format!(
            "{} {} | purchased product: {}",
            QUERY_PREFIXES[t % QUERY_PREFIXES.len()],
            world.query(q).text,
            world.product(p).title
        ),
        BehaviorRef::CoBuy(p1, p2) => format!(
            "{} {} + {}",
            PAIR_PREFIXES[t % PAIR_PREFIXES.len()],
            world.product(p1).title,
            world.product(p2).title
        ),
    }
}

/// Build the instruction dataset from the pipeline's annotations.
pub fn build_instructions(
    world: &World,
    filtered: &[FilteredCandidate],
    annotation: &AnnotationOutput,
    seed: u64,
) -> Vec<Instruction> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for a in &annotation.annotations {
        let f = &filtered[a.candidate_idx];
        let Some(parsed) = &f.parsed else { continue };
        let tail = parsed.tail.clone();
        let b = f.candidate.behavior;
        let domain = f.candidate.domain;
        let relation = f.candidate.relation;
        let t = rng.gen_range(0..QUERY_PREFIXES.len());
        let behavior_text = render_behavior(world, b, t);

        // Task 1: generation — typical knowledge only.
        if a.answers.typical == Ans::Yes && !tail.is_empty() {
            out.push(Instruction {
                task: TaskType::Generate,
                template_id: t,
                input: format!(
                    "generate a {} explanation in domain {} for: {}",
                    relation.name(),
                    domain.name(),
                    behavior_text
                ),
                output: tail.clone(),
                tail: Some(tail.clone()),
                label: None,
                relation: Some(relation),
                domain,
                behavior: b,
            });
        }
        // Tasks 2 & 3: plausibility / typicality prediction.
        for (task, ans) in [
            (TaskType::Plausibility, a.answers.plausible),
            (TaskType::Typicality, a.answers.typical),
        ] {
            if let Some(label) = ans.as_bool() {
                out.push(Instruction {
                    task,
                    template_id: t,
                    input: format!(
                        "is the explanation \"{tail}\" {} for: {behavior_text}",
                        if task == TaskType::Plausibility {
                            "plausible"
                        } else {
                            "typical"
                        },
                    ),
                    output: if label { "yes" } else { "no" }.to_string(),
                    tail: Some(tail.clone()),
                    label: Some(label),
                    relation: Some(relation),
                    domain,
                    behavior: b,
                });
            }
        }
        // Tasks 4 & 5: behaviour-level predictions from the relevance
        // annotations (irrelevant pairs ≈ random behaviours).
        if let Some(relevant) = a.answers.relevant.as_bool() {
            match b {
                BehaviorRef::CoBuy(..) => out.push(Instruction {
                    task: TaskType::CopurchasePrediction,
                    template_id: t,
                    input: format!("are these genuinely bought together: {behavior_text}"),
                    output: if relevant { "yes" } else { "no" }.to_string(),
                    tail: None,
                    label: Some(relevant),
                    relation: None,
                    domain,
                    behavior: b,
                }),
                BehaviorRef::SearchBuy(..) => out.push(Instruction {
                    task: TaskType::RelevancePrediction,
                    template_id: t,
                    input: format!("is the product relevant to the query: {behavior_text}"),
                    output: if relevant { "yes" } else { "no" }.to_string(),
                    tail: None,
                    label: Some(relevant),
                    relation: None,
                    domain,
                    behavior: b,
                }),
            }
        }
    }
    out
}

/// Dataset composition summary (instances per task).
pub fn task_histogram(instructions: &[Instruction]) -> Vec<(TaskType, usize)> {
    TaskType::ALL
        .iter()
        .map(|&t| (t, instructions.iter().filter(|i| i.task == t).count()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmo_core::{run, PipelineConfig};

    #[test]
    fn builds_all_five_task_types() {
        let out = run(PipelineConfig::tiny(71));
        let instructions = build_instructions(&out.world, &out.filtered, &out.annotation, 72);
        let hist = task_histogram(&instructions);
        for (task, n) in &hist {
            assert!(*n > 0, "no instances for task {:?}", task);
        }
        // prediction tasks should dominate (every annotation yields them)
        let gen = hist[0].1;
        let plaus = hist[1].1;
        assert!(plaus > gen, "generation uses only typical=yes annotations");
    }

    #[test]
    fn generation_outputs_are_typical_tails() {
        let out = run(PipelineConfig::tiny(71));
        let instructions = build_instructions(&out.world, &out.filtered, &out.annotation, 72);
        for i in instructions.iter().filter(|i| i.task == TaskType::Generate) {
            assert_eq!(i.tail.as_deref(), Some(i.output.as_str()));
            assert!(!i.output.is_empty());
            assert!(i.relation.is_some());
        }
    }

    #[test]
    fn templates_vary() {
        let out = run(PipelineConfig::tiny(71));
        let instructions = build_instructions(&out.world, &out.filtered, &out.annotation, 72);
        let distinct: std::collections::HashSet<usize> =
            instructions.iter().map(|i| i.template_id).collect();
        assert!(distinct.len() >= 2, "should use multiple templates");
    }

    #[test]
    fn deterministic_per_seed() {
        let out = run(PipelineConfig::tiny(71));
        let a = build_instructions(&out.world, &out.filtered, &out.annotation, 72);
        let b = build_instructions(&out.world, &out.filtered, &out.annotation, 72);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].input, b[0].input);
    }
}

#[cfg(test)]
mod consistency_tests {
    use super::*;
    use cosmo_core::{run, PipelineConfig};
    use std::sync::OnceLock;

    fn instructions() -> &'static Vec<Instruction> {
        static I: OnceLock<Vec<Instruction>> = OnceLock::new();
        I.get_or_init(|| {
            let out = run(PipelineConfig::tiny(601));
            build_instructions(&out.world, &out.filtered, &out.annotation, 602)
        })
    }

    #[test]
    fn prediction_outputs_match_labels() {
        for i in instructions() {
            if let Some(label) = i.label {
                let expected = if label { "yes" } else { "no" };
                assert_eq!(i.output, expected, "{:?}", i.task);
            }
        }
    }

    #[test]
    fn task_inputs_carry_behaviour_surface_forms() {
        for i in instructions().iter().take(400) {
            match i.behavior {
                BehaviorRef::SearchBuy(..) => assert!(
                    i.input.contains("search query")
                        || i.input.contains("user input")
                        || i.input.contains("user searched"),
                    "{}",
                    i.input
                ),
                BehaviorRef::CoBuy(..) => assert!(
                    i.input.contains("bought together") || i.input.contains("co-purchased"),
                    "{}",
                    i.input
                ),
            }
        }
    }

    #[test]
    fn cobuy_behaviours_never_feed_relevance_prediction() {
        for i in instructions() {
            if i.task == TaskType::RelevancePrediction {
                assert!(matches!(i.behavior, BehaviorRef::SearchBuy(..)));
            }
            if i.task == TaskType::CopurchasePrediction {
                assert!(matches!(i.behavior, BehaviorRef::CoBuy(..)));
            }
        }
    }
}
