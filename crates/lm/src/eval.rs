//! Evaluation of COSMO-LM against the teacher and the world oracle.
//!
//! The paper's central quality claim: instruction tuning aligns the model
//! with human preference, so COSMO-LM's generations are *typical* far more
//! often than the raw teacher's (whose annotated typicality is only ~35% /
//! "notably low", Table 4). We measure both on held-out behaviours with
//! the ground-truth oracle — something the paper can only approximate with
//! annotators. Also renders the per-category generation examples of
//! Table 9 and Figure 10.

use crate::instruction::render_behavior;
use crate::student::CosmoLm;
use cosmo_kg::Relation;
use cosmo_synth::{BehaviorLog, DomainId, Oracle, World};
use cosmo_teacher::{parse_candidate, BehaviorRef, Teacher};
use serde::{Deserialize, Serialize};

/// Generation-quality comparison on held-out behaviours.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GenerationEval {
    /// Behaviours evaluated.
    pub n: usize,
    /// Student top-1 typical rate (oracle-judged).
    pub student_typical: f64,
    /// Student top-1 plausible rate.
    pub student_plausible: f64,
    /// Raw teacher typical rate on the same behaviours.
    pub teacher_typical: f64,
    /// Raw teacher plausible rate.
    pub teacher_plausible: f64,
}

/// Compare student generations against raw teacher generations on
/// held-out search-buy behaviours.
pub fn eval_generation(
    world: &World,
    log: &BehaviorLog,
    student: &CosmoLm,
    teacher: &mut Teacher<'_>,
    skip: usize,
    n: usize,
) -> GenerationEval {
    let oracle = Oracle::new(world);
    let mut eval = GenerationEval::default();
    for sb in log.search_buys.iter().skip(skip).take(n) {
        let b = BehaviorRef::SearchBuy(sb.query, sb.product);
        // student: same rendered input as instruction data
        let input = format!(
            "generate a USED_FOR_FUNC explanation in domain {} for: {}",
            world.ptype_of(sb.product).domain.name(),
            render_behavior(world, b, 0)
        );
        if let Some((tail, _)) = student.generate(&input, None, 1).into_iter().next() {
            // the tail's relation is whatever the student's vocab hints; judge
            // under each relation and take the best-matching (the KG merges
            // by canonical tail anyway)
            let j = Relation::ALL
                .iter()
                .map(|&r| oracle.judge_search_buy(sb.query, sb.product, r, &tail))
                .max_by_key(|j| (j.typical, j.plausible))
                .unwrap();
            eval.student_typical += f64::from(j.typical);
            eval.student_plausible += f64::from(j.plausible);
        }
        // teacher: one raw generation
        let cand = teacher.generate_search_buy(sb.query, sb.product);
        if let Some(parsed) = parse_candidate(&cand.raw) {
            let j = oracle.judge_search_buy(sb.query, sb.product, cand.relation, &parsed.tail);
            eval.teacher_typical += f64::from(j.typical);
            eval.teacher_plausible += f64::from(j.plausible);
        }
        eval.n += 1;
    }
    let n = eval.n.max(1) as f64;
    eval.student_typical /= n;
    eval.student_plausible /= n;
    eval.teacher_typical /= n;
    eval.teacher_plausible /= n;
    eval
}

/// One Table 9 row: a generation example for a category.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table9Row {
    /// Category name.
    pub category: String,
    /// Example generated tail.
    pub example: String,
}

/// Generate one example per category (Table 9 / Figure 10).
pub fn table9(world: &World, log: &BehaviorLog, student: &CosmoLm) -> Vec<Table9Row> {
    let mut rows = Vec::new();
    for d in DomainId::all() {
        // first search-buy behaviour in this domain
        let Some(sb) = log.search_buys.iter().find(|sb| sb.domain == d) else {
            rows.push(Table9Row {
                category: d.name().to_string(),
                example: "-".into(),
            });
            continue;
        };
        let b = BehaviorRef::SearchBuy(sb.query, sb.product);
        let input = format!(
            "generate a USED_FOR_FUNC explanation in domain {} for: {}",
            d.name(),
            render_behavior(world, b, 0)
        );
        let example = student
            .generate(&input, None, 1)
            .into_iter()
            .next()
            .map(|(t, _)| t)
            .unwrap_or_else(|| "-".into());
        rows.push(Table9Row {
            category: d.name().to_string(),
            example,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::build_instructions;
    use crate::student::StudentConfig;
    use cosmo_core::{run, PipelineConfig};
    use cosmo_teacher::TeacherConfig;

    #[test]
    fn student_beats_raw_teacher_on_typicality() {
        let out = run(PipelineConfig::tiny(81));
        let instructions = build_instructions(&out.world, &out.filtered, &out.annotation, 82);
        let tails: Vec<(String, Option<Relation>)> = out
            .filtered
            .iter()
            .filter(|f| f.decision.kept())
            .filter_map(|f| f.parsed.as_ref().map(|p| (p.tail.clone(), p.relation_hint)))
            .collect();
        let mut student = CosmoLm::new(
            StudentConfig {
                epochs: 8,
                ..Default::default()
            },
            tails,
        );
        student.train(&instructions);
        let mut teacher = Teacher::new(&out.world, TeacherConfig::default());
        let eval = eval_generation(&out.world, &out.log, &student, &mut teacher, 1000, 250);
        assert!(eval.n > 100);
        assert!(
            eval.student_typical > eval.teacher_typical,
            "student typicality {:.3} must beat teacher {:.3}",
            eval.student_typical,
            eval.teacher_typical
        );
        // plausibility: the raw teacher samples straight from in-profile
        // intents much of the time, so parity is the expectation here —
        // the student's win is *typicality* (alignment), per §3.4
        assert!(
            eval.student_plausible > eval.teacher_plausible - 0.15,
            "student plausibility {:.3} collapsed vs teacher {:.3}",
            eval.student_plausible,
            eval.teacher_plausible
        );
    }

    #[test]
    fn table9_has_all_categories() {
        let out = run(PipelineConfig::tiny(81));
        let instructions = build_instructions(&out.world, &out.filtered, &out.annotation, 82);
        let tails: Vec<(String, Option<Relation>)> = out
            .filtered
            .iter()
            .filter_map(|f| f.parsed.as_ref().map(|p| (p.tail.clone(), p.relation_hint)))
            .collect();
        let mut student = CosmoLm::new(
            StudentConfig {
                epochs: 3,
                ..Default::default()
            },
            tails,
        );
        student.train(&instructions);
        let rows = table9(&out.world, &out.log, &student);
        assert_eq!(rows.len(), 18);
        assert!(rows.iter().filter(|r| r.example != "-").count() >= 15);
    }
}
