//! Inference-efficiency comparison (§1, §5).
//!
//! "Compared to directly distilling knowledge from large language models,
//! the instruction-finetuned models, with fewer parameters, offer
//! significant advantages in terms of model inference efficiency."
//!
//! Two views are reported:
//!
//! * **Simulated-scale view** — per-request FLOPs/latency of the paper's
//!   actual deployments (OPT-30B/175B teacher + critic scoring vs
//!   LLaMA-7B/13B student) using the transformer cost model in
//!   `cosmo-teacher::cost`;
//! * **Measured view** — wall-clock throughput of *our* student on this
//!   machine; lives in `cosmo-bench` (`figures::measured_student_throughput`)
//!   because this crate is deterministic and may not read the clock (A04).

use cosmo_teacher::{CostMeter, TeacherModel};
use serde::{Deserialize, Serialize};

/// One efficiency row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EfficiencyRow {
    /// Configuration name.
    pub name: String,
    /// Parameters.
    pub params: f64,
    /// Simulated mean latency per request (ms) on the reference cluster.
    pub sim_latency_ms: f64,
    /// Simulated FLOPs per request.
    pub sim_flops_per_req: f64,
}

/// Simulated-scale comparison for a fixed (prompt, generation) length.
pub fn simulated_comparison(prompt: &str, generation: &str) -> Vec<EfficiencyRow> {
    [
        (
            "FolkScope pipeline (OPT-175B + critic)",
            TeacherModel::Opt175b,
        ),
        (
            "FolkScope pipeline (OPT-30B + critic)",
            TeacherModel::Opt30b,
        ),
        ("COSMO-LM (LLaMA-13B)", TeacherModel::Llama13b),
        ("COSMO-LM (LLaMA-7B)", TeacherModel::Llama7b),
    ]
    .into_iter()
    .map(|(name, model)| {
        let mut meter = CostMeter::new(model);
        meter.record_generation(prompt, generation);
        if name.contains("critic") {
            // the distillation pipeline additionally scores every candidate
            // with a classifier forward pass
            meter.record_scoring(generation);
        }
        EfficiencyRow {
            name: name.to_string(),
            params: model.params(),
            sim_latency_ms: meter.mean_latency_ms() * meter.calls() as f64,
            sim_flops_per_req: meter.total_flops(),
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn student_models_dominate_teacher_pipelines() {
        let rows = simulated_comparison(
            "The following search query caused the following product purchases. Query: camping",
            "1. they are used for sleeping outdoors.",
        );
        assert_eq!(rows.len(), 4);
        let opt175 = rows.iter().find(|r| r.name.contains("175B")).unwrap();
        let llama7 = rows.iter().find(|r| r.name.contains("7B")).unwrap();
        assert!(
            opt175.sim_flops_per_req > llama7.sim_flops_per_req * 20.0,
            "teacher pipeline must be ≫ student"
        );
        assert!(opt175.sim_latency_ms > llama7.sim_latency_ms);
    }
}
