//! # cosmo-lm
//!
//! COSMO-LM: instruction-data construction from the pipeline's annotations
//! (five task types, multi-template verbalisation — §3.4, Figure 4), the
//! instruction-tuned student model (constrained decoding over the
//! canonicalised tail vocabulary + four prediction heads), evaluation
//! against the teacher (typicality/plausibility on held-out behaviours,
//! Table 9 examples, Figure 10), and the inference-efficiency comparison
//! that motivates deploying a small student instead of the distillation
//! pipeline.

#![forbid(unsafe_code)]

pub mod efficiency;
pub mod eval;
pub mod instruction;
pub mod student;

pub use efficiency::{simulated_comparison, EfficiencyRow};
pub use eval::{eval_generation, table9, GenerationEval, Table9Row};
pub use instruction::{build_instructions, render_behavior, task_histogram, Instruction, TaskType};
pub use student::{CosmoLm, StudentConfig, StudentReport};

use cosmo_core::PipelineOutput;
use cosmo_kg::Relation;

/// Convenience: build the student's tail vocabulary from a pipeline run
/// (all kept candidate tails with their relation hints).
pub fn tail_vocab_from_pipeline(out: &PipelineOutput) -> Vec<(String, Option<Relation>)> {
    out.filtered
        .iter()
        .filter(|f| f.decision.kept())
        .filter_map(|f| f.parsed.as_ref().map(|p| (p.tail.clone(), p.relation_hint)))
        .collect()
}
