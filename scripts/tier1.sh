#!/usr/bin/env bash
# Tier-1 verification: everything that must pass before a change lands.
#
#   ./scripts/tier1.sh
#
# Runs the release build, the full test suite, clippy with warnings
# denied, and the formatting check. Requires network access (or a warm
# cargo cache) for the first build.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
echo "tier1: all checks passed"
