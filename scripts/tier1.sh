#!/usr/bin/env bash
# Tier-1 verification: everything that must pass before a change lands.
#
#   ./scripts/tier1.sh
#
# Runs the release build, the full test suite, clippy with warnings
# denied, and the formatting check. Requires network access (or a warm
# cargo cache) for the first build.
#
# Slow opt-in tests (full repro experiments, scaling sweeps) are marked
# `#[ignore]` and stay out of this gate; run them explicitly with
#
#   cargo test -q --release -- --ignored
#
# when touching the pipeline's parallel stages or the bench experiments.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
# workspace invariant linter: SAFETY contracts, unsafe allowlist,
# total_cmp-only float sorts, no wall clock in deterministic crates,
# justified #[allow]s, unordered hash iteration, panic surface,
# lock-order cycles (see crates/audit and DESIGN.md §7). The ratchet
# also fails if justification-comment counts rise above the committed
# audit-baseline.json.
cargo run --release -p cosmo-audit -- --check-baseline
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
# snapshot-format compatibility: freeze, save, reload, compare answers
cargo run --release --example snapshot_check
# HTTP front end smoke: real sockets, closed-loop load for a fraction of
# a second; asserts nonzero throughput and zero 5xx (full saturation
# sweep is opt-in: `repro -- serve` without --smoke)
cargo run --release -p cosmo-bench --bin repro -- serve --smoke --scale tiny
# hot-swap smoke: three snapshot reloads under live traffic; asserts
# zero 5xx and byte-identical bodies within each snapshot generation
# (full mode is `repro -- serve --swap` without --smoke)
cargo run --release -p cosmo-bench --bin repro -- serve --swap --smoke --scale tiny
# streaming-writer smoke: sharded generation stream-frozen with forced
# spills, asserted byte-identical to the in-memory store freeze (the
# 6.3M-node/29M-edge world is opt-in: `repro -- kg-scaling --paper`)
cargo run --release -p cosmo-bench --bin repro -- kg-scaling --smoke --scale tiny
echo "tier1: all checks passed"
