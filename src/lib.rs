//! # cosmo
//!
//! A from-scratch Rust reproduction of **"COSMO: A Large-Scale E-commerce
//! Common Sense Knowledge Generation and Serving System at Amazon"**
//! (SIGMOD 2024). This facade crate re-exports the whole workspace; see
//! `DESIGN.md` for the architecture and `EXPERIMENTS.md` for the
//! paper-vs-measured record.
//!
//! ## Quick start
//!
//! ```no_run
//! use cosmo::core::{run, PipelineConfig};
//!
//! // Run the full offline pipeline (world → teacher → filters →
//! // annotation → critic → knowledge graph) at test scale:
//! let out = run(PipelineConfig::tiny(42));
//! println!(
//!     "built a KG with {} nodes, {} edges, {} relations",
//!     out.kg.num_nodes(),
//!     out.kg.num_edges(),
//!     out.kg.num_relations()
//! );
//! ```
//!
//! The crates, bottom-up:
//!
//! | crate | role |
//! |---|---|
//! | [`text`] | tokenization, n-gram LM (perplexity filter), hashed embeddings, canonicalisation |
//! | [`nn`] | tensors, reverse-mode autograd, layers, optimizers |
//! | [`synth`] | the synthetic e-commerce world model with ground-truth intents |
//! | [`teacher`] | the simulated teacher LLM, QA prompts, relation mining, cost model |
//! | [`kg`] | the knowledge graph store, Table 2 schema, intent hierarchy |
//! | [`core`] | the offline pipeline: sampling, filtering, annotation, critics |
//! | [`lm`] | instruction data + the COSMO-LM student |
//! | [`serving`] | feature store, two-layer async cache, batch processing (Figure 5) |
//! | [`http`] | std-only HTTP/1.1 front end + closed-loop load harness over the frozen snapshot |
//! | [`relevance`] | §4.1 search relevance (ESCI, bi/cross encoders) |
//! | [`sessrec`] | §4.2 session-based recommendation (8 models) |
//! | [`nav`] | §4.3 multi-turn navigation + A/B simulation |

#![forbid(unsafe_code)]

pub use cosmo_core as core;
pub use cosmo_http as http;
pub use cosmo_kg as kg;
pub use cosmo_lm as lm;
pub use cosmo_nav as nav;
pub use cosmo_nn as nn;
pub use cosmo_relevance as relevance;
pub use cosmo_serving as serving;
pub use cosmo_sessrec as sessrec;
pub use cosmo_synth as synth;
pub use cosmo_teacher as teacher;
pub use cosmo_text as text;
