//! Workspace-local shim for `criterion`: the bench-definition API
//! (`criterion_group!` / `criterion_main!` / `Criterion` /
//! `benchmark_group`) backed by a small median-of-samples timer instead
//! of the statistical machinery. Benches compile and run with
//! `cargo bench`, printing one `name: time/iter` line each.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-group sample count (the shim keeps far fewer than the real crate).
const DEFAULT_SAMPLES: usize = 12;

/// Target wall time per sample when calibrating iteration counts.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(8);

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim runs every
/// batch with one input regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to hold; real criterion batches many per alloc.
    SmallInput,
    /// Inputs are large; real criterion allocates one per iteration.
    LargeInput,
}

/// Throughput annotation attached to a group (printed, not analysed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timer handed to bench closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last routine, for reporting.
    last_ns: f64,
}

impl Bencher {
    /// Time `routine`, called in a calibrated loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // calibrate: grow the per-sample iteration count until one
        // sample takes long enough to time reliably
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 2).max(4);
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(f64::total_cmp);
        self.last_ns = per_iter[per_iter.len() / 2];
    }

    /// Time `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            per_iter.push(start.elapsed().as_nanos() as f64);
        }
        per_iter.sort_by(f64::total_cmp);
        self.last_ns = per_iter[per_iter.len() / 2];
    }
}

fn report(name: &str, ns: f64, throughput: Option<Throughput>) {
    let time = if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    };
    match throughput {
        Some(Throughput::Bytes(b)) if ns > 0.0 => {
            let gbs = b as f64 / ns; // bytes per ns == GB/s
            println!("{name}: {time}/iter ({gbs:.3} GB/s)");
        }
        Some(Throughput::Elements(e)) if ns > 0.0 => {
            let meps = e as f64 * 1_000.0 / ns; // elements per ns → M/s
            println!("{name}: {time}/iter ({meps:.3} Melem/s)");
        }
        _ => println!("{name}: {time}/iter"),
    }
}

/// Bench registry root, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Time one closure under `name`.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: DEFAULT_SAMPLES,
            last_ns: 0.0,
        };
        f(&mut b);
        report(name.as_ref(), b.last_ns, None);
        self
    }

    /// Open a named group of related benches.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
            throughput: None,
        }
    }
}

/// A named group with shared sample-count / throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-bench sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Annotate per-iteration throughput for the group's benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time one closure under `group/name`.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            last_ns: 0.0,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, name.as_ref()),
            b.last_ns,
            self.throughput,
        );
        self
    }

    /// Close the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Bundle bench functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_example(c: &mut Criterion) {
        c.bench_function("sum_small", |b| b.iter(|| (0..64u64).sum::<u64>()));
        let mut g = c.benchmark_group("group");
        g.sample_size(4);
        g.throughput(Throughput::Elements(8));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, bench_example);

    #[test]
    fn harness_runs() {
        benches();
    }
}
