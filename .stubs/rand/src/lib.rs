//! Workspace-local shim implementing the subset of the `rand` 0.8 API
//! the workspace uses, with a deterministic xoshiro256** generator.
//!
//! Everything here is seeded explicitly (`seed_from_u64`) — there is no
//! entropy source on purpose: the COSMO pipeline's reproducibility story
//! depends on every random stream being derivable from the run seed.
//!
//! Supported surface: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`choose`, `shuffle`).

#![forbid(unsafe_code)]

/// Core random source: 64 random bits per call.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Explicitly seedable generator.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draw one value from the source.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // multiply-shift bounding: bias ≤ span / 2^64, negligible
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128 + 1) as u64;
                if span == 0 {
                    // full-width range: every bit pattern is valid
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (start as i128 + hi as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + <$t>::draw(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                start + <$t>::draw(rng) * (end - start)
            }
        }
    )*};
}

float_range!(f32, f64);

/// Convenience methods over a [`RngCore`].
pub trait Rng: RngCore {
    /// Draw one value of an inferable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draw uniformly from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the shim's "standard" RNG).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // expand the seed with splitmix64, per the xoshiro authors
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element (`None` when empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// One-stop import: `use rand::prelude::*;`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-0.5..=0.5f64);
            assert!((-0.5..=0.5).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let i = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (2_000..3_000).contains(&hits),
            "p=0.25 over 10k draws gave {hits}"
        );
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn slice_helpers() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle is virtually never identity");
    }
}
