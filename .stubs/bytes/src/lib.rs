//! Workspace-local shim for the `bytes` crate: just enough surface
//! (cheaply cloneable immutable byte buffers and a growable builder) to
//! satisfy the dependency declaration. The workspace's snapshot format
//! works on plain `Vec<u8>`; this shim exists so manifests that declare
//! the dependency keep compiling without the external crate.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freeze into an immutable, cheaply cloneable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes(Arc::new(self.0))
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_freeze() {
        let mut b = BytesMut::with_capacity(4);
        b.extend_from_slice(b"ab");
        b.extend_from_slice(b"cd");
        let frozen = b.freeze();
        assert_eq!(&frozen[..], b"abcd");
        assert_eq!(frozen.clone(), Bytes::from(b"abcd".as_slice()));
    }
}
