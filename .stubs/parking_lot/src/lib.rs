//! Workspace-local shim presenting the `parking_lot` API over
//! `std::sync` primitives.
//!
//! The workspace only relies on the *signatures* that make parking_lot
//! ergonomic — `lock()` / `read()` / `write()` returning guards directly
//! instead of `Result`s — not on its performance characteristics. A
//! poisoned std lock means a thread panicked while holding the guard;
//! parking_lot ignores poisoning by design, so this shim does the same
//! by unwrapping the poison error and taking the inner guard.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// Mutual exclusion lock with parking_lot's panic-free `lock()` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Poisoning is ignored
    /// (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock with parking_lot's panic-free `read()`/`write()`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(StdReadGuard<'a, T>);

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(StdWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard. Poisoning is ignored.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire the exclusive write guard. Poisoning is ignored.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }
}
