//! Workspace-local shim for `serde`: a small value-model serialization
//! framework with the same spelling the real crate exposes at the call
//! sites this workspace uses (`derive(Serialize, Deserialize)` plus
//! `serde_json::to_string` / `from_str`).
//!
//! Instead of the visitor architecture, types convert to and from a
//! single [`Value`] tree. Numbers are carried as their canonical text
//! token so integer round-trips are exact and float round-trips use
//! Rust's shortest-representation `Display`.
//!
//! Map serialization sorts keys so the encoded form of a given value is
//! deterministic — snapshots and checkpoints must not depend on hash
//! iteration order.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt;
use std::hash::BuildHasher;

pub use serde_derive::{Deserialize, Serialize};

/// The intermediate tree every serializable type converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// A number, kept as its canonical text token.
    Num(String),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// Key → value entries, in encoding order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Map entries, when this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Sequence elements, when this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// String contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number token, when this is a number.
    pub fn as_num(&self) -> Option<&str> {
        match self {
            Value::Num(n) => Some(n),
            _ => None,
        }
    }
}

/// Conversion failure while rebuilding a type from a [`Value`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from any message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Convert to the intermediate tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the intermediate tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(type_err("bool", other)),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => n.parse::<$t>().map_err(|e| {
                        Error::msg(format!("bad {}: {n:?}: {e}", stringify!($t)))
                    }),
                    other => Err(type_err(stringify!($t), other)),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if self.is_finite() {
                    Value::Num(format!("{self}"))
                } else {
                    // JSON has no NaN/Inf token; the real serde_json
                    // also encodes them as null
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => n.parse::<$t>().map_err(|e| {
                        Error::msg(format!("bad {}: {n:?}: {e}", stringify!($t)))
                    }),
                    other => Err(type_err(stringify!($t), other)),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(type_err("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // The workspace derives Deserialize on static report-table rows
        // (`&'static str` fields). Those rows are only ever decoded in
        // tests/tools, so the shim promotes the string by leaking it —
        // a bounded, deliberate leak, not a cycle.
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(type_err("string", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(type_err("char", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(type_err("sequence", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected {N} elements, got {n}")))
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                match v {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(type_err("tuple", other)),
                }
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize, S: BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        // deterministic encoding regardless of hasher iteration order
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize, S: BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => {
                let mut out = HashMap::with_capacity_and_hasher(entries.len(), S::default());
                for (k, item) in entries {
                    out.insert(k.clone(), V::from_value(item)?);
                }
                Ok(out)
            }
            other => Err(type_err("map", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// support used by the generated code
// ---------------------------------------------------------------------------

fn type_err(expected: &str, got: &Value) -> Error {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Num(_) => "number",
        Value::Str(_) => "string",
        Value::Seq(_) => "sequence",
        Value::Map(_) => "map",
    };
    Error::msg(format!("expected {expected}, got {kind}"))
}

/// Generated-code helper: look up a map key.
#[doc(hidden)]
pub fn __lookup<'v>(m: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    m.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Generated-code helper: required field.
#[doc(hidden)]
pub fn __field<T: Deserialize>(m: &[(String, Value)], key: &str) -> Result<T, Error> {
    match __lookup(m, key) {
        Some(v) => T::from_value(v).map_err(|e| Error::msg(format!("field {key:?}: {e}"))),
        None => Err(Error::msg(format!("missing field {key:?}"))),
    }
}

/// Generated-code helper: field that falls back to a default when absent.
#[doc(hidden)]
pub fn __field_or<T: Deserialize>(
    m: &[(String, Value)],
    key: &str,
    default: impl FnOnce() -> T,
) -> Result<T, Error> {
    match __lookup(m, key) {
        Some(v) => T::from_value(v).map_err(|e| Error::msg(format!("field {key:?}: {e}"))),
        None => Ok(default()),
    }
}

/// Generated-code helper: map access with a type-name error.
#[doc(hidden)]
pub fn __as_map<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
    v.as_map()
        .ok_or_else(|| Error::msg(format!("expected map for {ty}")))
}

/// Generated-code helper: sequence access with an exact-arity check.
#[doc(hidden)]
pub fn __as_tuple<'v>(v: &'v Value, ty: &str, len: usize) -> Result<&'v [Value], Error> {
    match v.as_seq() {
        Some(s) if s.len() == len => Ok(s),
        Some(s) => Err(Error::msg(format!(
            "expected {len} elements for {ty}, got {}",
            s.len()
        ))),
        None => Err(Error::msg(format!("expected sequence for {ty}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(f64::to_value(&f64::NAN), Value::Null);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, "a".to_string(), 0.5f32)];
        let rt: Vec<(u32, String, f32)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(rt, v);

        let opt: Option<u32> = None;
        assert_eq!(opt.to_value(), Value::Null);
        let rt: Option<u32> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(rt, None);

        let mut m: HashMap<String, u32> = HashMap::new();
        m.insert("b".into(), 2);
        m.insert("a".into(), 1);
        let val = m.to_value();
        // sorted keys → deterministic order
        assert_eq!(
            val,
            Value::Map(vec![
                ("a".into(), Value::Num("1".into())),
                ("b".into(), Value::Num("2".into())),
            ])
        );
        let rt: HashMap<String, u32> = Deserialize::from_value(&val).unwrap();
        assert_eq!(rt, m);
    }

    #[test]
    fn errors_name_the_offending_field() {
        let m = vec![("x".to_string(), Value::Str("nope".into()))];
        let err = __field::<u32>(&m, "x").unwrap_err();
        assert!(err.to_string().contains("\"x\""), "{err}");
        let err = __field::<u32>(&m, "y").unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
    }
}
