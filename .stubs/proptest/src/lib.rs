//! Workspace-local shim implementing the subset of the `proptest` API the
//! workspace's property tests use: the [`proptest!`] macro, [`Strategy`]
//! with `prop_map`, numeric-range strategies, `prop::collection::vec`,
//! `prop::bool::ANY`, `prop::sample::select`, and the `prop_assert*`
//! macros.
//!
//! Unlike the real crate there is no shrinking and no persisted failure
//! seeds: every case is drawn from a generator seeded deterministically
//! from the test name and case index, so failures reproduce exactly on
//! re-run. `prop_assert*` map to the std `assert*` macros.

#![forbid(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// `&str` strategies are regex-like string patterns, as in the real
    /// crate. The shim interprets the subset the workspace writes:
    /// sequences of `[class]{lo,hi}` / `[class]` / literal-char atoms,
    /// where a class lists chars and `a-z` ranges.
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut StdRng) -> String {
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for (chars, lo, hi) in &atoms {
                let n = if lo == hi {
                    *lo
                } else {
                    rng.gen_range(*lo..=*hi)
                };
                for _ in 0..n {
                    out.push(chars[rng.gen_range(0..chars.len())]);
                }
            }
            out
        }
    }

    /// Pattern → (alphabet, min, max) atoms.
    fn parse_pattern(pat: &str) -> Vec<(Vec<char>, usize, usize)> {
        let chars: Vec<char> = pat.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pat:?}"));
                let class = &chars[i + 1..close];
                i = close + 1;
                let mut set = Vec::new();
                let mut j = 0;
                while j < class.len() {
                    if j + 2 < class.len() && class[j + 1] == '-' {
                        for c in class[j]..=class[j + 2] {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(class[j]);
                        j += 1;
                    }
                }
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (lo, hi) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pat:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.parse().expect("pattern repeat lower bound"),
                        b.parse().expect("pattern repeat upper bound"),
                    ),
                    None => {
                        let n = body.parse().expect("pattern repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            atoms.push((alphabet, lo, hi));
        }
        atoms
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a range.
    pub trait SizeRange {
        /// Draw a length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for vectors of `elem`-generated values.
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    /// `prop::collection::vec(elem, len)` — vectors with generated length.
    pub fn vec<S: Strategy, L: SizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// `prop::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }
}

/// Sampling from fixed sets.
pub mod sample {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;

    /// Strategy drawing uniformly from a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    /// `prop::sample::select` — uniform choice from a non-empty list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            self.0.choose(rng).expect("non-empty by construction").clone()
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// Number of cases each property runs (the only knob the shim keeps).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // the real crate's default; properties here are cheap
            ProptestConfig { cases: 256 }
        }
    }
}

#[doc(hidden)]
pub use rand as __rand;

/// Deterministic per-test seed: FNV-1a over the test name.
#[doc(hidden)]
pub fn __seed(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Define property tests: each `#[test]` fn body runs once per case with
/// its `pat in strategy` arguments freshly drawn.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($p:pat in $s:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..(__config.cases as u64) {
                    let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        $crate::__seed(stringify!($name), __case),
                    );
                    $(let $p = ($s).sample(&mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Property-scoped assert (the shim panics, as `assert!` does).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property-scoped assert_eq.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property-scoped assert_ne.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// One-stop import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of the crate's strategy modules.
    pub mod prop {
        pub use crate::{bool, collection, sample};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold(x in 1u32..10, y in -1.0f64..=1.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-1.0..=1.0).contains(&y));
        }

        #[test]
        fn vec_and_map_compose(
            mut v in prop::collection::vec(0u64..100, 1..20),
            flag in prop::bool::ANY,
            pick in prop::sample::select(vec!["a", "b"]),
        ) {
            v.sort_unstable();
            prop_assert!(v.len() < 20 && !v.is_empty());
            prop_assert!(v.iter().all(|&x| x < 100));
            let _ = flag;
            prop_assert!(pick == "a" || pick == "b");
        }

        #[test]
        fn mapped_strategy_applies(n in (0u32..5).prop_map(|x| x * 2)) {
            prop_assert!(n % 2 == 0 && n < 10);
        }
    }
}
