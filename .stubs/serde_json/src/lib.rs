//! Workspace-local shim for `serde_json`: [`to_string`] / [`from_str`]
//! over the serde shim's [`serde::Value`] model.
//!
//! The encoder is canonical — no whitespace, map entries in the order the
//! value provides (sorted for hash maps, declaration order for derived
//! structs) — so encoding a given value is deterministic. Number tokens
//! pass through [`serde::Value::Num`] verbatim in both directions, which
//! makes integer round-trips exact and float round-trips use Rust's
//! shortest `Display` form.

#![forbid(unsafe_code)]

use serde::Value;
use std::fmt;

/// Encode or decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Encode a value as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    encode(&value.to_value(), &mut out);
    Ok(out)
}

/// Decode a value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// encoding
// ---------------------------------------------------------------------------

fn encode(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => out.push_str(n),
        Value::Str(s) => encode_str(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                encode(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                encode_str(k, out);
                out.push(':');
                encode(item, out);
            }
            out.push('}');
        }
    }
}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// decoding — recursive descent with a depth bound
// ---------------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("json error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(
            self.bytes.get(self.pos),
            Some(b' ' | b'\t' | b'\n' | b'\r')
        ) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_lit("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_lit("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_lit("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected , or ] in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':', "expected : after object key")?;
                    entries.push((key, self.value(depth + 1)?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected , or } in object")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.err("leading zero"));
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number token is ASCII")
            .to_string();
        Ok(Value::Num(token))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // multi-byte UTF-8 is passed through whole
                    let s = &self.bytes[self.pos..];
                    let len = utf8_len(s[0]);
                    let chunk = std::str::from_utf8(&s[..len.min(s.len())])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::Num("1".into()), Value::Null])),
            ("b".into(), Value::Str("x\n\"y\" é".into())),
            ("c".into(), Value::Bool(true)),
            ("d".into(), Value::Num("-1.5e3".into())),
        ]);
        let mut text = String::new();
        encode(&v, &mut text);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![(1u32, "a".to_string(), 0.25f32)];
        let text = to_string(&xs).unwrap();
        assert_eq!(text, "[[1,\"a\",0.25]]");
        let rt: Vec<(u32, String, f32)> = from_str(&text).unwrap();
        assert_eq!(rt, xs);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "01", "1.", "\"\\x\"", "nul", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Value::Str("A".into()));
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("😀".into())
        );
    }
}
