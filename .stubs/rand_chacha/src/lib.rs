//! Workspace-local shim for `rand_chacha`: the ChaCha RNG type names
//! backed by the rand shim's deterministic generator. The workspace only
//! needs seed-derived determinism, not the ChaCha stream cipher itself.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

macro_rules! chacha {
    ($($name:ident),*) => {$(
        /// Deterministic generator carrying the ChaCha type name.
        #[derive(Debug, Clone)]
        pub struct $name(StdRng);

        impl SeedableRng for $name {
            fn seed_from_u64(seed: u64) -> Self {
                $name(StdRng::seed_from_u64(seed))
            }
        }

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }
    )*};
}

chacha!(ChaCha8Rng, ChaCha12Rng, ChaCha20Rng);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
