//! Workspace-local shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` implemented directly on `proc_macro` token
//! streams (no `syn`/`quote`), targeting the serde shim's value model.
//!
//! Supported shapes — exactly what the workspace derives on:
//! - named structs, with field attrs `#[serde(skip)]`, `#[serde(default)]`,
//!   and `#[serde(default = "path")]`
//! - tuple structs (newtype and wider)
//! - enums with unit and newtype variants (externally tagged)
//! - lifetime-only generics (e.g. `Ckpt<'a>`)
//!
//! Anything else (struct variants, type generics with bounds, `where`
//! clauses, renames) panics with a message naming the gap, which surfaces
//! as a compile error at the derive site.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::fmt::Write;

/// Derive `serde::Serialize` (value-model `to_value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derive `serde::Deserialize` (value-model `from_value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// item model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
    /// `Some("")` for bare `#[serde(default)]`, `Some(path)` for
    /// `#[serde(default = "path")]`, `None` for required fields.
    default: Option<String>,
    /// Bare `Option<…>` fields tolerate a missing key (as real serde does).
    is_option: bool,
}

struct Variant {
    name: String,
    newtype: bool,
}

enum Body {
    Named(Vec<Field>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Verbatim generics, e.g. `<'a>`; empty when non-generic.
    generics: String,
    body: Body,
}

// ---------------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kind = expect_ident(&toks, &mut i);
    let name = expect_ident(&toks, &mut i);
    let generics = take_generics(&toks, &mut i);
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "where" {
            panic!("serde shim derive: `where` clauses are not supported ({name})");
        }
    }
    let body = match (kind.as_str(), toks.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::Named(parse_named_fields(g))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Body::Tuple(tuple_arity(g))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::Enum(parse_variants(g, &name))
        }
        _ => panic!("serde shim derive: unsupported item shape for {name}"),
    };
    Item {
        name,
        generics,
        body,
    }
}

fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 2; // '#' + the bracketed group
    }
}

fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            toks.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1; // pub(crate) / pub(super)
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde shim derive: expected identifier, found {other:?}"),
    }
}

fn take_generics(toks: &[TokenTree], i: &mut usize) -> String {
    if !matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return String::new();
    }
    let mut out = String::new();
    let mut depth = 0i32;
    loop {
        let t = toks
            .get(*i)
            .unwrap_or_else(|| panic!("serde shim derive: unclosed generics"));
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                _ => {}
            }
        }
        out.push_str(&t.to_string());
        *i += 1;
        if depth == 0 {
            if out.contains(':') {
                panic!("serde shim derive: bounded generics are not supported ({out})");
            }
            return out;
        }
    }
}

/// Field-level serde attributes recognised by the shim.
fn parse_serde_attr(group: &Group, skip: &mut bool, default: &mut Option<String>) {
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    // shape: serde ( … ) — anything else (doc, allow, …) is ignored
    if !matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
        return;
    }
    let Some(TokenTree::Group(args)) = inner.get(1) else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        match &args[j] {
            TokenTree::Ident(id) if id.to_string() == "skip" => *skip = true,
            TokenTree::Ident(id) if id.to_string() == "default" => {
                if matches!(args.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    let lit = args
                        .get(j + 2)
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| panic!("serde shim derive: default = needs a path"));
                    *default = Some(lit.trim_matches('"').to_string());
                    j += 2;
                } else {
                    *default = Some(String::new());
                }
            }
            TokenTree::Punct(_) => {}
            other => panic!("serde shim derive: unsupported serde attribute {other}"),
        }
        j += 1;
    }
}

fn parse_named_fields(group: &Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut skip = false;
        let mut default = None;
        while matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(ag)) = toks.get(i + 1) {
                parse_serde_attr(ag, &mut skip, &mut default);
            }
            i += 2;
        }
        if i >= toks.len() {
            break;
        }
        skip_vis(&toks, &mut i);
        let name = expect_ident(&toks, &mut i);
        i += 1; // ':'
        // walk the type to the next top-level comma; groups are single
        // trees, so only `<`/`>` need depth tracking
        let mut depth = 0i32;
        let mut first_type_ident: Option<String> = None;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                TokenTree::Ident(id) => {
                    if first_type_ident.is_none() {
                        first_type_ident = Some(id.to_string());
                    }
                }
                _ => {}
            }
            i += 1;
        }
        let is_option = first_type_ident.as_deref() == Some("Option");
        out.push(Field {
            name,
            skip,
            default,
            is_option,
        });
    }
    out
}

fn tuple_arity(group: &Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() {
        panic!("serde shim derive: empty tuple structs are not supported");
    }
    let mut depth = 0i32;
    let mut arity = 1;
    let mut trailing_comma = false;
    for (idx, t) in toks.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    trailing_comma = idx + 1 == toks.len();
                    arity += 1;
                }
                _ => {}
            }
        }
    }
    if trailing_comma {
        arity -= 1;
    }
    arity
}

fn parse_variants(group: &Group, enum_name: &str) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        let mut newtype = false;
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                if tuple_arity(g) != 1 {
                    panic!("serde shim derive: only newtype variants are supported ({enum_name}::{name})");
                }
                newtype = true;
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde shim derive: struct variants are not supported ({enum_name}::{name})");
            }
            _ => {}
        }
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde shim derive: explicit discriminants are not supported ({enum_name}::{name})");
        }
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        out.push(Variant { name, newtype });
    }
    out
}

// ---------------------------------------------------------------------------
// code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let Item {
        name,
        generics,
        body,
    } = item;
    let mut out = String::new();
    let _ = write!(
        out,
        "impl{generics} serde::Serialize for {name}{generics} {{ \
         fn to_value(&self) -> serde::Value {{ "
    );
    match body {
        Body::Named(fields) => {
            out.push_str("serde::Value::Map(vec![");
            for f in fields {
                if f.skip {
                    continue;
                }
                let fname = &f.name;
                let _ = write!(
                    out,
                    "(String::from(\"{fname}\"), serde::Serialize::to_value(&self.{fname})),"
                );
            }
            out.push_str("])");
        }
        Body::Tuple(1) => out.push_str("serde::Serialize::to_value(&self.0)"),
        Body::Tuple(n) => {
            out.push_str("serde::Value::Seq(vec![");
            for idx in 0..*n {
                let _ = write!(out, "serde::Serialize::to_value(&self.{idx}),");
            }
            out.push_str("])");
        }
        Body::Enum(variants) => {
            out.push_str("match self {");
            for v in variants {
                let vname = &v.name;
                if v.newtype {
                    let _ = write!(
                        out,
                        "{name}::{vname}(__x) => serde::Value::Map(vec![\
                         (String::from(\"{vname}\"), serde::Serialize::to_value(__x))]),"
                    );
                } else {
                    let _ = write!(
                        out,
                        "{name}::{vname} => serde::Value::Str(String::from(\"{vname}\")),"
                    );
                }
            }
            out.push('}');
        }
    }
    out.push_str(" } }");
    out
}

fn gen_deserialize(item: &Item) -> String {
    let Item {
        name,
        generics,
        body,
    } = item;
    if !generics.is_empty() {
        panic!("serde shim derive: Deserialize on generic types is not supported ({name})");
    }
    let mut out = String::new();
    let _ = write!(
        out,
        "impl serde::Deserialize for {name} {{ \
         fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{ "
    );
    match body {
        Body::Named(fields) => {
            let _ = write!(out, "let __m = serde::__as_map(__v, \"{name}\")?; Ok({name} {{");
            for f in fields {
                let fname = &f.name;
                if f.skip {
                    let _ = write!(out, "{fname}: Default::default(),");
                } else if let Some(path) = &f.default {
                    let fallback = if path.is_empty() { "Default::default" } else { path };
                    let _ = write!(
                        out,
                        "{fname}: serde::__field_or(__m, \"{fname}\", {fallback})?,"
                    );
                } else if f.is_option {
                    let _ = write!(
                        out,
                        "{fname}: serde::__field_or(__m, \"{fname}\", Default::default)?,"
                    );
                } else {
                    let _ = write!(out, "{fname}: serde::__field(__m, \"{fname}\")?,");
                }
            }
            out.push_str("})");
        }
        Body::Tuple(1) => {
            let _ = write!(out, "Ok({name}(serde::Deserialize::from_value(__v)?))");
        }
        Body::Tuple(n) => {
            let _ = write!(out, "let __s = serde::__as_tuple(__v, \"{name}\", {n})?; Ok({name}(");
            for idx in 0..*n {
                let _ = write!(out, "serde::Deserialize::from_value(&__s[{idx}])?,");
            }
            out.push_str("))");
        }
        Body::Enum(variants) => {
            out.push_str("match __v {");
            if variants.iter().any(|v| !v.newtype) {
                out.push_str("serde::Value::Str(__s) => match __s.as_str() {");
                for v in variants.iter().filter(|v| !v.newtype) {
                    let vname = &v.name;
                    let _ = write!(out, "\"{vname}\" => Ok({name}::{vname}),");
                }
                let _ = write!(
                    out,
                    "__other => Err(serde::Error::msg(format!(\
                     \"unknown {name} variant {{__other:?}}\"))), }}, "
                );
            }
            if variants.iter().any(|v| v.newtype) {
                out.push_str(
                    "serde::Value::Map(__m) if __m.len() == 1 => { \
                     let (__k, __val) = &__m[0]; match __k.as_str() {",
                );
                for v in variants.iter().filter(|v| v.newtype) {
                    let vname = &v.name;
                    let _ = write!(
                        out,
                        "\"{vname}\" => Ok({name}::{vname}(serde::Deserialize::from_value(__val)?)),"
                    );
                }
                let _ = write!(
                    out,
                    "__other => Err(serde::Error::msg(format!(\
                     \"unknown {name} variant {{__other:?}}\"))), }} }}, "
                );
            }
            let _ = write!(
                out,
                "__other => Err(serde::Error::msg(format!(\
                 \"expected {name} variant, got {{__other:?}}\"))), }}"
            );
        }
    }
    out.push_str(" } }");
    out
}
