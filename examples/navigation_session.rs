//! Multi-turn search navigation (Figures 8 & 9): build the intent
//! hierarchy from a pipeline-produced KG and walk a refinement session,
//! then run a miniature A/B test.
//!
//! ```text
//! cargo run --release --example navigation_session
//! ```

use cosmo::core::{run, PipelineConfig};
use cosmo::nav::{run_abtest, AbTestConfig, NavSession, NavigationEngine};

fn main() {
    let out = run(PipelineConfig::tiny(77));
    let engine = NavigationEngine::new(out.kg);
    println!(
        "intent hierarchy: {} nodes, depth {}",
        engine.hierarchy().len(),
        engine.hierarchy().depth()
    );

    // Walk the first broad query that offers refinements (Figure 9).
    let mut walked = false;
    for q in &out.world.queries {
        let (mut session, suggestions) = NavSession::start(&engine, &q.text, 5);
        if suggestions.len() < 2 || session.candidates.len() < 4 {
            continue;
        }
        println!(
            "\nquery: \"{}\" — {} candidate products",
            q.text,
            session.candidates.len()
        );
        println!(
            "suggestions: {:?}",
            suggestions.iter().map(|s| s.label()).collect::<Vec<_>>()
        );
        let pick = suggestions[0].clone();
        let next = session.select(&pick, 5);
        println!(
            "selected \"{}\" → narrowed to {} products; next: {:?}",
            pick.label(),
            session.candidates.len(),
            next.iter().map(|s| s.label()).collect::<Vec<_>>()
        );
        for (_, title) in session.candidates.iter().take(5) {
            println!("  • {title}");
        }
        walked = true;
        break;
    }
    assert!(walked, "expected at least one navigable query");

    // The §4.3.2 online experiment in miniature.
    let report = run_abtest(
        &out.world,
        &engine,
        &AbTestConfig {
            users: 150_000,
            visibility: 0.25,
            ..AbTestConfig::default()
        },
    );
    println!(
        "\nA/B ({} control / {} treatment): sales lift {:+.2}%, engagement lift {:+.1}%",
        report.control_users,
        report.treatment_users,
        report.sales_lift_pct,
        report.engagement_lift_pct
    );
}
