//! Build a knowledge graph step by step — running each pipeline stage
//! manually instead of through `cosmo::core::run`, and saving the result
//! as a JSON snapshot.
//!
//! ```text
//! cargo run --release --example build_kg -- /tmp/cosmo_kg.json
//! ```

use cosmo::core::{
    annotate, sample_behaviors, AnnotationConfig, CoarseFilter, FilterConfig, SamplingConfig,
};
use cosmo::synth::{corpus, BehaviorConfig, BehaviorLog, SpecificityService, World, WorldConfig};
use cosmo::teacher::{Teacher, TeacherConfig};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/cosmo_kg.json".to_string());

    // 1. A synthetic e-commerce world with ground-truth intent profiles.
    let world = World::generate(WorldConfig::tiny(7));
    println!(
        "world: {} product types, {} products, {} queries, {} intents",
        world.product_types.len(),
        world.products.len(),
        world.queries.len(),
        world.intents.len()
    );

    // 2. One day of behaviour logs.
    let log = BehaviorLog::generate(&world, &BehaviorConfig::tiny(8));
    println!(
        "log: {} search-buys ({} distinct pairs), {} co-buys ({} distinct)",
        log.search_buys.len(),
        log.distinct_searchbuy_pairs(),
        log.cobuys.len(),
        log.distinct_cobuy_pairs()
    );

    // 3. Fine-grained behaviour sampling (§3.2.1).
    let specificity = SpecificityService::new(9, 0.05);
    let sampled = sample_behaviors(&world, &log, &specificity, &SamplingConfig::default());
    println!(
        "sampled: {} co-buy pairs, {} search-buy pairs ({} broad)",
        sampled.cobuys.len(),
        sampled.search_buys.len(),
        sampled.report.broad_selected
    );

    // 4. QA-prompted teacher generation (§3.2.2).
    let mut teacher = Teacher::new(&world, TeacherConfig::default());
    let mut candidates = Vec::new();
    for &(q, p) in sampled.search_buys.iter().take(600) {
        candidates.push(teacher.generate_search_buy(q, p));
    }
    for &(p1, p2) in sampled.cobuys.iter().take(600) {
        candidates.push(teacher.generate_cobuy(p1, p2));
    }
    println!(
        "teacher: {} candidates, simulated cost {:.2e} FLOPs",
        candidates.len(),
        teacher.meter.total_flops()
    );

    // 5. Coarse filtering (§3.3.1).
    let filter = CoarseFilter::fit(&corpus(&world), FilterConfig::default());
    let filtered = filter.filter(&world, candidates);
    let kept = filtered.iter().filter(|f| f.decision.kept()).count();
    println!("filter: kept {kept}/{} candidates", filtered.len());

    // 6. Simulated human annotation (§3.3.2).
    let annotation = annotate(
        &world,
        &log,
        &filtered,
        &AnnotationConfig {
            budget_per_behavior: 150,
            ..AnnotationConfig::default()
        },
    );
    println!(
        "annotation: {} labels, audit accuracy {:.1}%",
        annotation.annotations.len(),
        annotation.audit_accuracy * 100.0
    );

    // 7. Build the KG directly from high-typicality annotations.
    let mut kg = cosmo::kg::KnowledgeGraph::new();
    for a in &annotation.annotations {
        if a.answers.typical != cosmo::core::Ans::Yes {
            continue;
        }
        let f = &filtered[a.candidate_idx];
        let Some(parsed) = &f.parsed else { continue };
        let tail = kg.intern_node(cosmo::kg::NodeKind::Intention, &parsed.tail);
        let head = match f.candidate.behavior {
            cosmo::teacher::BehaviorRef::SearchBuy(q, _) => {
                kg.intern_node(cosmo::kg::NodeKind::Query, &world.query(q).text)
            }
            cosmo::teacher::BehaviorRef::CoBuy(p1, _) => {
                kg.intern_node(cosmo::kg::NodeKind::Product, &world.product(p1).title)
            }
        };
        kg.add_edge(cosmo::kg::Edge {
            head,
            relation: f.candidate.relation,
            tail,
            behavior: f.candidate.behavior.kind(),
            category: f.candidate.domain.0,
            plausibility: 1.0,
            typicality: 1.0,
            support: 1,
        });
    }
    println!("kg: {} nodes, {} edges", kg.num_nodes(), kg.num_edges());

    // 8. Snapshot to JSON and read it back.
    std::fs::write(&path, kg.to_json()).expect("write snapshot");
    let reloaded = cosmo::kg::KnowledgeGraph::from_json(
        &std::fs::read_to_string(&path).expect("read snapshot"),
    )
    .expect("parse snapshot");
    println!(
        "snapshot round-trip ok: {} ({} bytes)",
        path,
        std::fs::metadata(&path).unwrap().len()
    );
    assert_eq!(reloaded.num_edges(), kg.num_edges());
}
