//! Instruction-tune COSMO-LM and compare it against the raw teacher —
//! the paper's central §3.4 story: a small aligned model generates
//! *typical* knowledge where the raw LLM mostly doesn't.
//!
//! ```text
//! cargo run --release --example train_student [threads]
//! ```
//!
//! `threads` (default 4) sizes the worker pool for the sharded gradient
//! steps; the run first trains single-threaded, then again at `threads`,
//! and prints the measured per-epoch speedup. The two reports are
//! asserted byte-identical — thread count never changes the math.

use cosmo::core::{run, PipelineConfig};
use cosmo::lm::{
    build_instructions, eval_generation, tail_vocab_from_pipeline, task_histogram, CosmoLm,
    StudentConfig, TaskType,
};
use cosmo::teacher::{Teacher, TeacherConfig};

fn main() {
    // Offline pipeline → annotations.
    let out = run(PipelineConfig::tiny(2024));

    // §3.4: turn annotations into instruction data (5 task types, multiple
    // verbalisation templates).
    let instructions = build_instructions(&out.world, &out.filtered, &out.annotation, 7);
    println!("== instruction data ==");
    for (task, n) in task_histogram(&instructions) {
        println!("  {:<30} {n}", task.name());
    }

    // Instruction-tune the student: once single-threaded, once on the
    // requested worker count, with identical math (and bytes) both times.
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let cfg = StudentConfig {
        epochs: 10,
        microbatch: 16,
        ..StudentConfig::default()
    };
    let vocab = tail_vocab_from_pipeline(&out);

    let t0 = std::time::Instant::now();
    let mut baseline = CosmoLm::new(
        StudentConfig {
            threads: 1,
            ..cfg.clone()
        },
        vocab.clone(),
    );
    let base_report = baseline.train(&instructions);
    let secs_1 = t0.elapsed().as_secs_f64();

    let t0 = std::time::Instant::now();
    let mut student = CosmoLm::new(StudentConfig { threads, ..cfg }, vocab);
    let report = student.train(&instructions);
    let secs_n = t0.elapsed().as_secs_f64();

    assert_eq!(
        base_report, report,
        "thread count changed the training result"
    );
    println!("\n== training ==");
    println!(
        "per-epoch wall clock: {:.0} ms at 1 thread, {:.0} ms at {threads} \
         ({:.2}x speedup, byte-identical reports)",
        secs_1 * 1000.0 / 10.0,
        secs_n * 1000.0 / 10.0,
        secs_1 / secs_n
    );
    println!("generation instances: {}", report.n_generate);
    println!("prediction instances: {}", report.n_predict);
    println!(
        "held-out generation top-1 (exact tail): {:.1}%",
        report.gen_top1 * 100.0
    );
    for (task, acc) in &report.predict_accuracy {
        println!("held-out {task}: {:.1}%", acc * 100.0);
    }

    // The headline comparison: student vs raw teacher on held-out
    // behaviours, judged by the world's ground-truth oracle.
    let mut teacher = Teacher::new(&out.world, TeacherConfig::default());
    let eval = eval_generation(&out.world, &out.log, &student, &mut teacher, 1_000, 300);
    println!("\n== generation quality (n={}) ==", eval.n);
    println!(
        "COSMO-LM:    typical {:.1}%  plausible {:.1}%",
        eval.student_typical * 100.0,
        eval.student_plausible * 100.0
    );
    println!(
        "raw teacher: typical {:.1}%  plausible {:.1}%",
        eval.teacher_typical * 100.0,
        eval.teacher_plausible * 100.0
    );

    // One model, five tasks: use the prediction heads too.
    let sb = &out.log.search_buys[0];
    let input = format!(
        "is the product relevant to the query: search query: {} | purchased product: {}",
        out.world.query(sb.query).text,
        out.world.product(sb.product).title
    );
    println!(
        "\nrelevance head on a real behaviour: P(relevant) = {:.2}",
        student.predict(TaskType::RelevancePrediction, &input)
    );
}
