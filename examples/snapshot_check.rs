//! Snapshot-format compatibility gate (run by `scripts/tier1.sh`).
//!
//! Builds a deterministic synthetic graph, freezes it into the versioned
//! binary snapshot, saves and reloads it, and verifies the reload answers
//! read queries identically to the builder store. The header constants are
//! asserted against hard-coded expected bytes so that any accidental
//! format change (magic, version, layout) fails the gate instead of
//! silently invalidating snapshots written by earlier builds.
//!
//! ```text
//! cargo run --release --example snapshot_check
//! ```

use cosmo::kg::{
    BehaviorKind, Edge, GraphView, KgSnapshot, KgSnapshotView, KnowledgeGraph, MappedSnapshot,
    NodeKind, Relation, Verify,
};

fn main() {
    // 1. A deterministic synthetic graph: 2000 query heads, 12 intent
    //    edges each, relations cycling through all 15 types.
    let n_heads = 2000usize;
    let deg = 12usize;
    let mut kg = KnowledgeGraph::new();
    for i in 0..n_heads {
        let q = kg.intern_node(NodeKind::Query, &format!("query {i}"));
        for j in 0..deg {
            let t = kg.intern_node(
                NodeKind::Intention,
                &format!("intent {}", (i * 17 + j * 29) % 800),
            );
            kg.add_edge(Edge {
                head: q,
                relation: Relation::ALL[(i + j) % Relation::ALL.len()],
                tail: t,
                behavior: BehaviorKind::SearchBuy,
                category: (i % 18) as u8,
                plausibility: 0.5 + (j % 10) as f32 / 20.0,
                typicality: (i % 10) as f32 / 10.0,
                support: 1 + (j as u32 % 5),
            });
        }
    }
    println!(
        "graph: {} nodes, {} edges, {} relations",
        kg.num_nodes(),
        kg.num_edges(),
        kg.num_relations()
    );

    // 2. Freeze and check the on-disk header: magic + format version 1.
    let snap = kg.freeze();
    let bytes = snap.to_bytes();
    assert_eq!(&bytes[0..8], b"COSMOKG\0", "header magic changed");
    assert_eq!(
        u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        1,
        "format version changed — bump deliberately and keep a loader for v1"
    );

    // 3. Save → load round-trip.
    let path =
        std::env::temp_dir().join(format!("cosmo_snapshot_check_{}.snap", std::process::id()));
    snap.save(&path).expect("save snapshot");
    let loaded = KgSnapshot::load(&path).expect("load snapshot");
    let on_disk = std::fs::metadata(&path).unwrap().len();
    let _ = std::fs::remove_file(&path);

    // 4. Summary stats must survive the round-trip …
    assert_eq!(loaded.num_nodes(), kg.num_nodes());
    assert_eq!(loaded.num_edges(), kg.num_edges());
    assert_eq!(loaded.num_relations(), kg.num_relations());
    // … and re-serialising must reproduce the original bytes exactly.
    assert_eq!(loaded.to_bytes(), bytes, "snapshot not byte-stable");

    // 5. Spot-check read answers against the builder store: node lookup
    //    and per-relation adjacency on a spread of heads.
    for i in (0..n_heads).step_by(97) {
        let text = format!("query {i}");
        let id = kg.find_node(NodeKind::Query, &text).expect("store head");
        assert_eq!(loaded.find_node(NodeKind::Query, &text), Some(id));
        assert_eq!(loaded.node_text(id), text);
        for &rel in &Relation::ALL {
            let store: Vec<u32> = kg.tails_of_rel(id, rel).map(|e| e.tail.0).collect();
            let snap: Vec<u32> = loaded
                .tails_of_rel_slice(id, rel)
                .iter()
                .map(|e| e.tail.0)
                .collect();
            assert_eq!(store, snap, "adjacency diverged at head {i} {rel:?}");
        }
        assert_eq!(
            kg.top_intents(id, 5)
                .iter()
                .map(|e| e.tail.0)
                .collect::<Vec<_>>(),
            GraphView::top_intents(&loaded, id, 5)
                .iter()
                .map(|e| e.tail.0)
                .collect::<Vec<_>>(),
            "intent ranking diverged at head {i}"
        );
    }
    println!(
        "snapshot check ok: {} bytes on disk, header v1, reload identical",
        on_disk
    );

    // 6. The v2 zero-copy format: header pinned the same way, then a
    //    save → mmap-open round trip at full verification rigor, and the
    //    version-sniffing view must pick the right decoder for each file.
    let bytes_v2 = snap.to_bytes_v2();
    assert_eq!(&bytes_v2[0..8], b"COSMOKG\0", "v2 header magic changed");
    assert_eq!(
        u32::from_le_bytes(bytes_v2[8..12].try_into().unwrap()),
        2,
        "v2 format version changed — bump deliberately and keep a loader for v2"
    );
    let path_v2 =
        std::env::temp_dir().join(format!("cosmo_snapshot_check_{}.kg2", std::process::id()));
    snap.save_v2(&path_v2).expect("save v2 snapshot");
    let mapped = MappedSnapshot::open_verified(&path_v2).expect("open v2 snapshot");
    let on_disk_v2 = std::fs::metadata(&path_v2).unwrap().len();
    assert_eq!(mapped.num_nodes(), kg.num_nodes());
    assert_eq!(mapped.num_edges(), kg.num_edges());
    assert_eq!(
        mapped.to_owned_snapshot(),
        snap,
        "v2 mapped answers diverge from the v1 snapshot"
    );
    let view = KgSnapshotView::open(&path_v2).expect("view opens v2");
    assert_eq!(view.format_version(), 2, "view missed the v2 header");
    let _ = std::fs::remove_file(&path_v2);
    // a corrupted v2 file must be refused, not mis-served
    let mut corrupt = bytes_v2.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xFF;
    assert!(
        MappedSnapshot::from_bytes(corrupt, Verify::Full).is_err(),
        "corrupt v2 snapshot was accepted"
    );
    println!(
        "snapshot check ok: {} bytes on disk, header v2, mmap reload identical, corruption refused",
        on_disk_v2
    );
}
