//! Quickstart: run the full COSMO pipeline end-to-end at test scale and
//! inspect what it produced.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cosmo::core::{run, PipelineConfig};
use cosmo::kg::NodeKind;
use cosmo::lm::{tail_vocab_from_pipeline, CosmoLm, StudentConfig};
use cosmo::serving::{ServeRequest, ServingSystem};
use std::sync::Arc;

fn main() {
    // The whole offline system — synthetic world, behaviour logs, teacher
    // LLM generation, coarse filtering, simulated human annotation, critic
    // training, knowledge-graph construction — in one call.
    let out = run(PipelineConfig::tiny(42));

    println!("== pipeline funnel ==");
    println!(
        "sampled behaviour pairs: {} co-buy + {} search-buy",
        out.report.sampling.cobuy_selected, out.report.sampling.searchbuy_selected
    );
    println!("teacher candidates:      {}", out.report.candidates);
    println!("after coarse filtering:  {}", out.report.kept_after_filter);
    println!("annotated:               {}", out.report.annotations);
    println!(
        "critic: plausibility acc {:.1}%, AUC {:.3}",
        out.report.critic.plausible_accuracy * 100.0,
        out.report.critic.plausible_auc
    );
    println!("edges admitted to KG:    {}", out.report.edges_admitted);

    println!("\n== knowledge graph ==");
    println!(
        "{} nodes, {} edges, {} relation types",
        out.kg.num_nodes(),
        out.kg.num_edges(),
        out.kg.num_relations()
    );

    // Look up the intentions COSMO mined for one query.
    let query = out
        .kg
        .nodes()
        .find(|(_, n)| n.kind == NodeKind::Query)
        .map(|(id, n)| (id, n.text.clone()))
        .expect("the KG contains query nodes");
    println!("\n== intentions for query \"{}\" ==", query.1);
    for edge in out.kg.top_intents(query.0, 5) {
        println!(
            "  [{}] {} (typicality {:.2}, support {})",
            edge.relation.name(),
            out.kg.node(edge.tail).text,
            edge.typicality,
            edge.support
        );
    }

    // Serve the same query through the typed request API, over the frozen
    // CSR snapshot production uses (the HTTP front end serialises exactly
    // this response body — see `examples/serve_http.rs`).
    println!("\n== typed serving ==");
    let lm = Arc::new(CosmoLm::new(
        StudentConfig::default(),
        tail_vocab_from_pipeline(&out),
    ));
    let system = ServingSystem::builder()
        .snapshot(Arc::new(out.kg.freeze()))
        .lm(lm)
        .preload([query.1.clone()])
        .build()
        .expect("default serving config is valid");
    let response = system.handle(&ServeRequest::new(&query.1));
    println!("wire body: {}", response.to_json());
}
