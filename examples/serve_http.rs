//! The full network stack end-to-end: build a KG, freeze it, stand up
//! the HTTP/1.1 front end on an ephemeral port, and curl ourselves over
//! a keep-alive connection — every route, typed bodies both ways.
//!
//! ```text
//! cargo run --release --example serve_http
//! ```
//!
//! While it runs you can also poke the server from a real shell:
//! the bound address is printed first, e.g.
//! `curl -s -X POST http://127.0.0.1:PORT/v1/serve-intents -d '{"query":"dog leash"}'`.

use cosmo::core::{run, PipelineConfig};
use cosmo::http::{HttpClient, HttpServer, ServerConfig};
use cosmo::lm::{build_instructions, tail_vocab_from_pipeline, CosmoLm, StudentConfig};
use cosmo::serving::{
    NavigateResponse, OpsStats, ServeRequest, ServeResponse, ServingSystem, SnapshotVersion,
};
use std::sync::Arc;

fn main() {
    // Offline: pipeline + student, then freeze the KG for serving.
    let out = run(PipelineConfig::tiny(7));
    let instructions = build_instructions(&out.world, &out.filtered, &out.annotation, 8);
    let mut student = CosmoLm::new(StudentConfig::default(), tail_vocab_from_pipeline(&out));
    student.train(&instructions);
    let preload: Vec<String> = out
        .world
        .queries
        .iter()
        .take(25)
        .map(|q| q.text.clone())
        .collect();
    let system = Arc::new(
        ServingSystem::builder()
            .snapshot(Arc::new(out.kg.freeze()))
            .lm(Arc::new(student))
            .preload(preload.clone())
            .build()
            .expect("default serving config is valid"),
    );

    // Online: bind an ephemeral port and serve in the background.
    let handle = HttpServer::start(Arc::clone(&system), ServerConfig::default())
        .expect("bind an ephemeral localhost port");
    println!("serving on http://{}", handle.addr());

    // Curl ourselves: one keep-alive connection, all four routes.
    let mut client = HttpClient::connect(handle.addr()).expect("connect to ourselves");

    let resp = client
        .request("GET", "/v1/snapshot-version", "")
        .expect("GET /v1/snapshot-version");
    let version = SnapshotVersion::from_json(&resp.body).expect("typed body");
    println!(
        "\nGET /v1/snapshot-version → {} (format v{}, {} nodes / {} edges, model v{})",
        resp.status, version.format_version, version.nodes, version.edges, version.model_version
    );

    let req = ServeRequest {
        query: preload[0].clone(),
        top_k: 3,
    };
    let resp = client
        .request("POST", "/v1/serve-intents", &req.to_json())
        .expect("POST /v1/serve-intents");
    let served = ServeResponse::from_json(&resp.body).expect("typed body");
    println!(
        "POST /v1/serve-intents \"{}\" → {} ({}, {} intents)",
        req.query,
        resp.status,
        served.status.as_str(),
        served.intents.len()
    );
    for item in &served.intents {
        println!("  [{}] {} ({:.2})", item.relation, item.tail, item.score);
    }
    // the network answer IS the in-process answer, byte for byte
    assert_eq!(resp.body, system.handle(&req).to_json());

    let resp = client
        .request("POST", "/v1/navigate", "{\"query\":\"camping\",\"k\":4}")
        .expect("POST /v1/navigate");
    let nav = NavigateResponse::from_json(&resp.body).expect("typed body");
    println!(
        "POST /v1/navigate \"camping\" → {} suggestions:",
        nav.suggestions.len()
    );
    for s in &nav.suggestions {
        println!("  [{}] {}", s.kind, s.label);
    }

    let resp = client
        .request("GET", "/ops/stats", "")
        .expect("GET /ops/stats");
    let ops = OpsStats::from_json(&resp.body).expect("typed body");
    println!(
        "GET /ops/stats → hit rate {:.0}%, {} pending, p99 {}µs",
        ops.hit_rate * 100.0,
        ops.pending,
        ops.p99_us
    );

    let stats = handle.stats();
    println!(
        "\nhttp layer: {} connection(s), {} requests, {} rejected",
        stats.accepted, stats.requests, stats.rejected_conns
    );
    handle.shutdown();
    println!("server drained and shut down cleanly");
}
