//! The Figure 5 feedback loop end-to-end: serve traffic, record the
//! interactions the cache missed, and run an incremental offline refresh
//! that makes those queries servable — without rebuilding the pipeline.
//!
//! ```text
//! cargo run --release --example incremental_refresh
//! ```

use cosmo::core::{apply_feedback, run, PipelineConfig};
use cosmo::kg::NodeKind;
use cosmo::lm::{build_instructions, tail_vocab_from_pipeline, CosmoLm, StudentConfig};
use cosmo::serving::ServingSystem;
use std::sync::Arc;

fn main() {
    let cfg = PipelineConfig::tiny(0xDA11);
    let mut out = run(cfg.clone());
    println!(
        "day 0: KG has {} edges, {} nodes",
        out.kg.num_edges(),
        out.kg.num_nodes()
    );

    // Stand up serving over the day-0 KG.
    let instructions = build_instructions(&out.world, &out.filtered, &out.annotation, 1);
    let mut student = CosmoLm::new(
        StudentConfig {
            epochs: 4,
            ..StudentConfig::default()
        },
        tail_vocab_from_pipeline(&out),
    );
    student.train(&instructions);
    let system = ServingSystem::builder()
        .kg(Arc::new(out.kg.clone()))
        .lm(Arc::new(student))
        .build()
        .expect("default serving config is valid");

    // A day of traffic that includes queries the KG has never seen. Each
    // request that leads to a purchase is recorded through the feedback
    // loop (we simulate the purchase as the query's top target product).
    let mut served_cold = 0;
    for q in out.world.queries.iter().take(400) {
        let _ = system.handle_request(&q.text);
        if out.kg.find_node(NodeKind::Query, &q.text).is_none() && !q.target_types.is_empty() {
            served_cold += 1;
            let p = out.world.products_of_type(q.target_types[0])[0];
            system.record_feedback(&q.text, &out.world.product(p).title);
        }
    }
    system.run_batch_cycle().expect("batch workers healthy");
    let ops = system.ops();
    println!(
        "day 1 traffic: hit rate {:.0}%, {} cold queries fed back, L2 holds {} entries",
        ops.hit_rate * 100.0,
        served_cold,
        ops.l2_size
    );

    // Nightly refresh: consume the feedback into the offline pipeline.
    let feedback = system.drain_feedback();
    let update = apply_feedback(&mut out, &cfg, &feedback, /*day=*/ 1);
    println!(
        "refresh: {} pairs resolved → {} candidates → {} kept → {} new edges",
        update.resolved_pairs, update.candidates, update.kept, update.edges
    );
    println!(
        "day 1: KG has {} edges; {}/{} fed-back queries now servable",
        out.kg.num_edges(),
        feedback
            .iter()
            .filter(|(q, _)| out.kg.find_node(NodeKind::Query, q).is_some())
            .count(),
        feedback.len()
    );
}
