//! Online serving (Figure 5): stand up the feature store + two-layer
//! asynchronous cache over a frozen KG snapshot and drive it through the
//! typed request API — the same `ServeRequest → ServeResponse` pair the
//! HTTP front end speaks on the wire.
//!
//! ```text
//! cargo run --release --example serve_intents
//! ```

use cosmo::core::{run, PipelineConfig};
use cosmo::lm::{build_instructions, tail_vocab_from_pipeline, CosmoLm, StudentConfig};
use cosmo::serving::{ServeRequest, ServeStatus, ServingSystem};
use std::sync::Arc;

fn main() {
    // Offline: pipeline + student.
    let out = run(PipelineConfig::tiny(99));
    let instructions = build_instructions(&out.world, &out.filtered, &out.annotation, 100);
    let mut student = CosmoLm::new(StudentConfig::default(), tail_vocab_from_pipeline(&out));
    student.train(&instructions);

    // Online: pre-load the "yearly frequent" cache layer with the world's
    // most engaged queries, exactly like the deployment strategy of §3.5.
    let mut hot: Vec<_> = out.world.queries.iter().collect();
    hot.sort_by(|a, b| {
        b.engagement
            .total_cmp(&a.engagement)
            .then(a.text.cmp(&b.text))
    });
    let preload: Vec<String> = hot.iter().take(50).map(|q| q.text.clone()).collect();
    let system = ServingSystem::builder()
        .snapshot(Arc::new(out.kg.freeze()))
        .lm(Arc::new(student))
        .preload(preload.clone())
        .build()
        .expect("default serving config is valid");

    // Typed request path: hot query → L1 hit with rendered intents.
    let req = ServeRequest {
        query: preload[0].clone(),
        top_k: 3,
    };
    let served = system.serve(&req);
    let resp = &served.response;
    println!(
        "request \"{}\" → {} from {:?} in {}µs",
        req.query,
        resp.status.as_str(),
        resp.layer,
        served.latency_us
    );
    for item in &resp.intents {
        println!(
            "  intent [{}] {} ({:.2})",
            item.relation, item.tail, item.score
        );
    }
    if let Some(strong) = &resp.strong_intent {
        println!("  strong intent: {strong}");
    }
    println!("  wire body: {}", resp.to_json());

    // Cold query → asynchronous miss, then batch processing, then L2 hit.
    let cold = ServeRequest::new("glow in the dark dog harness");
    let miss = system.handle(&cold);
    assert_eq!(miss.status, ServeStatus::Enqueued);
    println!(
        "\nrequest \"{}\" → {} (forwarded to batch)",
        cold.query,
        miss.status.as_str()
    );
    let processed = system.run_batch_cycle().expect("batch workers healthy");
    println!("batch cycle processed {processed} pending queries");
    let hit = system.handle(&cold);
    println!(
        "request \"{}\" again → {} from {:?}",
        cold.query,
        hit.status.as_str(),
        hit.layer
    );

    // Daily refresh: hot L2 entries promote into L1, model version bumps.
    let promoted = system.daily_refresh();
    println!(
        "\ndaily refresh: promoted {promoted} entries to L1, model now v{}",
        system.model_version()
    );

    // Feedback loop: record an interaction for the next offline run.
    system.record_feedback(&cold.query, "acme glow dog harness");
    println!(
        "feedback recorded: {} events queued",
        system.drain_feedback().len()
    );

    // The versioned ops schema a dashboard would scrape (also served as
    // JSON at `GET /ops/stats` by the HTTP front end).
    let ops = system.ops();
    println!(
        "\nops: {}\ncache hit rate {:.0}%, p99 latency {}µs",
        ops.render(),
        ops.hit_rate * 100.0,
        ops.p99_us
    );
}
