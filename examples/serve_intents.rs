//! Online serving (Figure 5): stand up the feature store + two-layer
//! asynchronous cache over a freshly built KG and replay a day of traffic.
//!
//! ```text
//! cargo run --release --example serve_intents
//! ```

use cosmo::core::{run, PipelineConfig};
use cosmo::lm::{build_instructions, tail_vocab_from_pipeline, CosmoLm, StudentConfig};
use cosmo::serving::{ops_view, ServingSystem};
use std::sync::Arc;

fn main() {
    // Offline: pipeline + student.
    let out = run(PipelineConfig::tiny(99));
    let instructions = build_instructions(&out.world, &out.filtered, &out.annotation, 100);
    let mut student = CosmoLm::new(StudentConfig::default(), tail_vocab_from_pipeline(&out));
    student.train(&instructions);

    // Online: pre-load the "yearly frequent" cache layer with the world's
    // most engaged queries, exactly like the deployment strategy of §3.5.
    let mut hot: Vec<_> = out.world.queries.iter().collect();
    hot.sort_by(|a, b| {
        b.engagement
            .total_cmp(&a.engagement)
            .then(a.text.cmp(&b.text))
    });
    let preload: Vec<String> = hot.iter().take(50).map(|q| q.text.clone()).collect();
    let system = ServingSystem::builder()
        .kg(Arc::new(out.kg))
        .lm(Arc::new(student))
        .preload(preload.clone())
        .build()
        .expect("default serving config is valid");

    // Request path: hot query → L1 hit with features.
    let hot_query = &preload[0];
    let r = system.handle_request(hot_query);
    println!(
        "request \"{}\" → {:?} in {}µs",
        hot_query, r.layer, r.latency_us
    );
    if let Some(f) = &r.features {
        for (rel, tail, score) in f.intents.iter().take(3) {
            println!("  intent [{}] {} ({score:.2})", rel.name(), tail);
        }
        if let Some(strong) = &f.strong_intent {
            println!("  strong intent: {strong}");
        }
    }

    // Cold query → asynchronous miss, then batch processing, then L2 hit.
    let cold = "glow in the dark dog harness";
    let miss = system.handle_request(cold);
    println!(
        "\nrequest \"{cold}\" → {:?} (forwarded to batch)",
        miss.layer
    );
    let processed = system.run_batch_cycle().expect("batch workers healthy");
    println!("batch cycle processed {processed} pending queries");
    let hit = system.handle_request(cold);
    println!("request \"{cold}\" again → {:?}", hit.layer);

    // Daily refresh: hot L2 entries promote into L1, model version bumps.
    let promoted = system.daily_refresh();
    println!(
        "\ndaily refresh: promoted {promoted} entries to L1, model now v{}",
        system.model_version()
    );
    println!(
        "cache hit rate so far: {:.0}%  (p99 latency {}µs)",
        system.cache.metrics.hit_rate() * 100.0,
        system.latency.percentile(0.99)
    );

    // Feedback loop: record an interaction for the next offline run.
    system.record_feedback(cold, "acme glow dog harness");
    println!(
        "feedback recorded: {} events queued",
        system.drain_feedback().len()
    );

    // The one-line ops summary a dashboard would scrape.
    println!("\nops: {}", ops_view(&system.snapshot()));
}
